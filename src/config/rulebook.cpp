#include "config/rulebook.h"

namespace auric::config {

Rulebook::Rulebook(const GroundTruthModel& model, const ParamCatalog& catalog)
    : model_(&model), catalog_(&catalog) {}

ValueIndex Rulebook::default_value(ParamId param) const {
  return catalog_->at(param).default_index;
}

ValueIndex Rulebook::lookup(ParamId param, const netsim::Carrier& carrier) const {
  return model_->rulebook_value(param, carrier);
}

ValueIndex Rulebook::lookup(ParamId param, const netsim::Carrier& carrier,
                            const netsim::Carrier& neighbor) const {
  return model_->rulebook_value(param, carrier, neighbor);
}

}  // namespace auric::config
