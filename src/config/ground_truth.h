// The ground-truth configuration model: a generative stand-in for the
// operational process that produced the paper's proprietary dataset.
//
// §2.4 and §4.3.3 of the paper describe how LTE configuration actually comes
// to be: rule-book defaults, per-attribute engineering rules, market teams
// with their own tuning styles, geographically local optimization, ongoing
// trials, stale leftovers of abandoned trials, and plain unexplained
// variation. This module turns that narrative into a parameterized
// generative model (DESIGN.md §6) so that
//   (a) the learners face the same statistical challenges the paper reports
//       (high variability, high skewness, locality), and
//   (b) every mismatch between a recommendation and the current network
//       value has a knowable cause, letting the evaluation reproduce the
//       engineer-labeling experiment (Fig. 12) with an oracle.
//
// Every per-slot decision is a pure function of (seed, parameter, entity)
// via hash_combine, so the assignment is order-independent and two runs with
// the same seed agree exactly even across different traversal orders.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "config/assignment.h"
#include "config/catalog.h"
#include "netsim/attributes.h"
#include "netsim/topology.h"

namespace auric::config {

struct GroundTruthParams {
  std::uint64_t seed = 7;

  /// Per (parameter, dependent attribute, attribute value): probability that
  /// engineering practice attaches a non-zero offset to that value.
  double attr_value_rule_prob = 0.35;

  /// Probability of an interaction offset on a pair of dependent-attribute
  /// values (captures rules like "urban AND high-band").
  double interaction_prob = 0.05;

  /// Number of carrier attributes a parameter depends on: uniform in
  /// [attrs_per_param_min, attrs_per_param_max].
  int attrs_per_param_min = 1;
  int attrs_per_param_max = 3;

  /// Per (parameter, market): base probability the market's team applies its
  /// own offset; scaled by a per-market tuning intensity in [0.4, 1.6].
  double market_style_base = 0.30;

  /// Sub-market location styles: for heavily tuned parameters (richness >=
  /// tac_style_min_richness), each tracking area independently carries its
  /// own tuning level with this probability. This is the paper's "the same
  /// parameters can have varying values across different locations" —
  /// exactly matchable by CF once the chi-square scan flags the tracking
  /// area code, but diluted across the one-hot columns for the sampled-
  /// feature learners.
  double tac_style_prob = 0.25;
  int tac_style_min_richness = 5;

  /// Local tuning pockets: fraction of parameters that have pockets, the
  /// fraction of sites covered, and the pocket size in sites.
  double pocket_param_prob = 0.45;
  double pocket_site_frac = 0.03;
  int pocket_sites = 4;

  /// Ongoing-trial pockets (cause (ii) of §4.3.3's "update learner" label).
  double trial_param_prob = 0.30;
  double trial_site_frac = 0.007;
  int trial_sites = 2;

  /// Fraction of parameters whose value responds to terrain (the attribute
  /// hidden from learners; cause (i) of "update learner").
  double terrain_param_prob = 0.18;

  /// Per configured slot: probability the slot kept a stale value from an
  /// abandoned trial (Fig. 12's "good recommendation" mass)...
  double stale_rate = 0.014;
  /// ...or carries an unexplained perturbation ("inconclusive" mass).
  double noise_rate = 0.017;
};

class GroundTruthModel {
 public:
  /// Builds the per-parameter plans (dependent attributes, offsets, pockets,
  /// trials). `topology` and `catalog` must outlive the model.
  GroundTruthModel(const netsim::Topology& topology, const netsim::AttributeSchema& schema,
                   const ParamCatalog& catalog, GroundTruthParams params = {});

  /// Materializes the full network configuration.
  ConfigAssignment assign() const;

  /// The value (+ intended + cause) for one singular parameter on one
  /// carrier. `si` is a position in catalog.singular_ids().
  void assign_singular(std::size_t si, netsim::CarrierId carrier, ValueIndex& value,
                       ValueIndex& intended, Cause& cause) const;

  /// Same for one pair-wise parameter on one directed X2 edge. `pi` is a
  /// position in catalog.pairwise_ids().
  void assign_pairwise(std::size_t pi, const netsim::X2Edge& edge, ValueIndex& value,
                       ValueIndex& intended, Cause& cause) const;

  /// Dependent carrier-side attribute indices the model actually wired for
  /// parameter `p` (catalog id). Exposed so integration tests can check that
  /// Auric's chi-square scan discovers the true dependency structure.
  const std::vector<std::size_t>& true_dependent_attrs(ParamId p) const;

  /// Accessors used by the vendor-config generator and the rule-book
  /// exporter: intent value with ONLY rule-book-expressible components
  /// (default + attribute rules; no market styles, pockets, terrain).
  ValueIndex rulebook_value(ParamId p, const netsim::Carrier& carrier) const;
  ValueIndex rulebook_value(ParamId p, const netsim::Carrier& carrier,
                            const netsim::Carrier& neighbor) const;

  const GroundTruthParams& params() const { return params_; }

 private:
  struct ParamPlan {
    std::vector<std::size_t> dep_attrs;                 // carrier-side schema attrs
    std::vector<std::size_t> dep_neighbor_attrs;        // pairwise: neighbor-side attrs
    std::vector<std::vector<int>> attr_offsets;         // [dep attr][code] -> offset (steps)
    std::vector<std::vector<int>> neighbor_attr_offsets;
    std::vector<std::vector<int>> interaction_offsets;  // [code0][code1] for first two deps
    std::vector<int> market_offsets;                    // [market] (0 = untuned)
    std::vector<int> tac_offsets;                       // [tracking area] (0 = untuned)
    std::unordered_map<netsim::ENodeBId, int> pocket_offsets;  // site -> offset
    std::unordered_set<netsim::ENodeBId> trial_sites;
    int trial_offset = 0;
    int terrain_offsets[3] = {0, 0, 0};                 // per Terrain class
    int step_scale = 1;                                 // offset unit in domain indices
    int sign_mode = 0;  // tuning direction: +1 up-only, -1 down-only, 0 both
  };

  const netsim::Topology& topology_;
  const netsim::AttributeSchema& schema_;
  const ParamCatalog& catalog_;
  GroundTruthParams params_;
  std::vector<ParamPlan> plans_;  // one per catalog parameter
  std::vector<std::vector<netsim::AttrCode>> attr_codes_;  // [attr][carrier]

  ParamPlan build_plan(ParamId p);

  /// Deterministic uniform in [0,1) from structured key parts.
  double hash01(std::initializer_list<std::uint64_t> parts) const;

  /// True when parameter `p`'s feature is activated on `site`.
  bool feature_active(ParamId p, netsim::ENodeBId site) const;

  /// Intended value components shared by singular and pairwise assignment.
  int intent_offset(const ParamPlan& plan, ParamId p, const netsim::Carrier& carrier,
                    const netsim::Carrier* neighbor, Cause& cause) const;

  void assign_slot(ParamId p, const netsim::Carrier& carrier, const netsim::Carrier* neighbor,
                   std::uint64_t slot_key, ValueIndex& value, ValueIndex& intended,
                   Cause& cause) const;
};

}  // namespace auric::config
