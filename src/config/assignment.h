// Network-wide configuration state plus the ground-truth bookkeeping that
// makes the paper's engineer-validation experiment (Fig. 12) measurable.
//
// For every configured slot — a (parameter, carrier) pair for singular
// parameters, a (parameter, X2 edge) pair for pair-wise ones — we store:
//   value     the value currently configured in the network,
//   intended  the value engineering practice would converge to (differs from
//             `value` only for trial / stale-leftover / noise slots),
//   cause     why the slot has the value it has.
// The learners only ever see `value`; `intended` and `cause` exist so the
// mismatch-labeling oracle can stand in for the paper's network engineers.
#pragma once

#include <cstdint>
#include <vector>

#include "config/catalog.h"

namespace auric::config {

/// Why a slot carries its current value (ground-truth knowledge; §4.3.3 of
/// the paper maps these onto the engineer labels of Fig. 12).
enum class Cause : std::uint8_t {
  kDefault = 0,        ///< national rule-book default
  kAttributeRule,      ///< offset driven by carrier attributes
  kMarketStyle,        ///< market engineering team's own tuning style
  kLocalPocket,        ///< geographically local tuning pocket
  kHiddenTerrain,      ///< driven by terrain, an attribute hidden from learners
  kTrial,              ///< ongoing trial / certification for network-wide roll-out
  kStaleLeftover,      ///< sub-optimal leftover from an abandoned past trial
  kNoise,              ///< unexplained per-carrier perturbation
};

const char* cause_name(Cause cause);

/// Values for one parameter across its population (carriers or edges).
struct ParamColumn {
  std::vector<ValueIndex> value;     ///< current network value; kUnset = not configured
  std::vector<ValueIndex> intended;  ///< engineering-intent value; kUnset where value is
  std::vector<Cause> cause;

  std::size_t size() const { return value.size(); }

  /// Number of configured (non-kUnset) slots.
  std::size_t configured_count() const;
};

/// Full network configuration.
///
/// `singular[si]` is indexed by carrier id, where si is a position in
/// ParamCatalog::singular_ids(); `pairwise[pi]` is indexed by position in
/// Topology::edges, where pi is a position in ParamCatalog::pairwise_ids().
struct ConfigAssignment {
  std::vector<ParamColumn> singular;
  std::vector<ParamColumn> pairwise;

  /// Total configured parameter values network-wide (the paper's "15M+
  /// configuration parameter values" headline count).
  std::size_t total_configured() const;
};

}  // namespace auric::config
