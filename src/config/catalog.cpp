#include "config/catalog.h"

#include <cmath>
#include <stdexcept>

namespace auric::config {

const char* param_function_name(ParamFunction function) {
  switch (function) {
    case ParamFunction::kRadioConnection: return "radio-connection";
    case ParamFunction::kPowerControl: return "power-control";
    case ParamFunction::kLinkAdaptation: return "link-adaptation";
    case ParamFunction::kScheduling: return "scheduling";
    case ParamFunction::kCapacityManagement: return "capacity";
    case ParamFunction::kLayerManagement: return "layer-management";
    case ParamFunction::kMobility: return "mobility";
    case ParamFunction::kInterference: return "interference";
  }
  return "?";
}

ValueDomain::ValueDomain(double min, double step, std::int32_t count)
    : min_(min), step_(step), count_(count) {
  if (count < 2) throw std::invalid_argument("ValueDomain: count must be >= 2");
  if (!(step > 0.0)) throw std::invalid_argument("ValueDomain: step must be > 0");
}

double ValueDomain::value(ValueIndex index) const {
  if (!contains(index)) throw std::out_of_range("ValueDomain::value: index out of range");
  return min_ + step_ * static_cast<double>(index);
}

ValueIndex ValueDomain::nearest_index(double raw) const {
  const double k = std::round((raw - min_) / step_);
  return clamp(static_cast<std::int64_t>(k));
}

ValueIndex ValueDomain::clamp(std::int64_t index) const {
  if (index < 0) return 0;
  if (index >= count_) return count_ - 1;
  return static_cast<ValueIndex>(index);
}

ParamCatalog::ParamCatalog(std::vector<ParamDef> defs) : defs_(std::move(defs)) {
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    const auto id = static_cast<ParamId>(i);
    if (!defs_[i].domain.contains(defs_[i].default_index)) {
      throw std::invalid_argument("ParamCatalog: default outside domain for " + defs_[i].name);
    }
    (defs_[i].kind == ParamKind::kSingular ? singular_ : pairwise_).push_back(id);
  }
}

ParamId ParamCatalog::id_of(const std::string& name) const {
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) return static_cast<ParamId>(i);
  }
  throw std::out_of_range("ParamCatalog: unknown parameter " + name);
}

namespace {

ParamDef make(std::string name, ParamKind kind, RelationClass relation, ParamFunction function,
              double min, double step, std::int32_t count, double default_raw, double activation,
              std::int32_t richness) {
  ParamDef def;
  def.name = std::move(name);
  def.kind = kind;
  def.relation = relation;
  def.function = function;
  def.domain = ValueDomain(min, step, count);
  def.default_index = def.domain.nearest_index(default_raw);
  def.activation = activation;
  def.richness = richness;
  return def;
}

ParamDef singular(std::string name, ParamFunction function, double min, double step,
                  std::int32_t count, double default_raw, double activation,
                  std::int32_t richness) {
  return make(std::move(name), ParamKind::kSingular, RelationClass::kIntraFrequency, function,
              min, step, count, default_raw, activation, richness);
}

ParamDef pairwise(std::string name, RelationClass relation, ParamFunction function, double min,
                  double step, std::int32_t count, double default_raw, double activation,
                  std::int32_t richness) {
  return make(std::move(name), ParamKind::kPairwise, relation, function, min, step, count,
              default_raw, activation, richness);
}

ParamDef per_edge(ParamDef def) {
  def.scope = PairScope::kPerEdge;
  return def;
}

}  // namespace

ParamCatalog ParamCatalog::standard() {
  using F = ParamFunction;
  using R = RelationClass;
  std::vector<ParamDef> defs;
  defs.reserve(65);

  // ----- 39 singular parameters -----
  // Layer management & idle-mode camping.
  defs.push_back(singular("sFreqPrio", F::kLayerManagement, 1, 1, 10000, 1, 0.90, 12));
  defs.push_back(singular("cellReselectionPriority", F::kLayerManagement, 0, 1, 8, 4, 1.00, 5));
  defs.push_back(singular("qRxLevMin", F::kRadioConnection, -156, 2, 57, -124, 1.00, 6));
  defs.push_back(singular("qRxLevMinOffset", F::kRadioConnection, 1, 1, 8, 1, 0.50, 3));
  defs.push_back(singular("qQualMin", F::kRadioConnection, -34, 1, 32, -20, 0.80, 4));
  defs.push_back(singular("qHyst", F::kMobility, 0, 2, 13, 4, 1.00, 5));
  defs.push_back(singular("sIntraSearch", F::kMobility, 0, 2, 32, 30, 0.90, 6));
  defs.push_back(singular("sNonIntraSearch", F::kMobility, 0, 2, 32, 10, 0.90, 6));
  defs.push_back(singular("threshServingLow", F::kMobility, 0, 2, 32, 8, 0.90, 5));
  defs.push_back(singular("measReportInterval", F::kMobility, 1, 1, 16, 5, 0.90, 4));
  // Radio connection supervision. inactivityTimer is the catalog's
  // highest-variability parameter (the ~200-distinct-value outlier of
  // Fig. 2); its 1..65535 range is quoted in §2.2 of the paper.
  defs.push_back(singular("inactivityTimer", F::kRadioConnection, 1, 1, 65535, 61, 1.00, 200));
  defs.push_back(singular("inactivityTimerQci1", F::kRadioConnection, 1, 1, 300, 30, 0.40, 8));
  defs.push_back(singular("drxInactivityTimer", F::kRadioConnection, 1, 1, 32, 8, 0.90, 5));
  // Power control. pMax 0..60 dBm step 0.6 per §2.2.
  defs.push_back(singular("pMax", F::kPowerControl, 0, 0.6, 101, 30, 1.00, 10));
  defs.push_back(singular("pZeroNominalPusch", F::kPowerControl, -126, 1, 151, -103, 1.00, 12));
  defs.push_back(singular("pZeroNominalPucch", F::kPowerControl, -127, 1, 32, -117, 1.00, 6));
  defs.push_back(singular("alpha", F::kPowerControl, 0, 0.1, 11, 0.8, 1.00, 4));
  defs.push_back(singular("pucchPowerBoost", F::kPowerControl, 0, 1, 16, 3, 0.60, 3));
  defs.push_back(singular("crsGain", F::kPowerControl, -6, 0.6, 21, 0, 0.80, 5));
  defs.push_back(singular("paOffset", F::kPowerControl, -6, 1, 10, 0, 0.70, 4));
  defs.push_back(singular("pbOffset", F::kPowerControl, 0, 1, 4, 1, 0.70, 3));
  // Link adaptation.
  defs.push_back(singular("dlTargetBler", F::kLinkAdaptation, 1, 1, 30, 10, 1.00, 5));
  defs.push_back(singular("ulTargetBler", F::kLinkAdaptation, 1, 1, 30, 10, 1.00, 4));
  defs.push_back(singular("initialCqi", F::kLinkAdaptation, 1, 1, 15, 7, 0.80, 4));
  defs.push_back(singular("cqiPeriodicity", F::kLinkAdaptation, 2, 2, 64, 40, 0.90, 6));
  defs.push_back(singular("harqMaxTx", F::kLinkAdaptation, 1, 1, 8, 5, 0.90, 3));
  // Scheduling.
  defs.push_back(singular("schedulingWeightGbr", F::kScheduling, 0, 1, 101, 50, 0.60, 8));
  defs.push_back(singular("schedulingWeightNonGbr", F::kScheduling, 0, 1, 101, 30, 0.60, 8));
  defs.push_back(singular("minPrbNonGbr", F::kScheduling, 0, 1, 101, 10, 0.70, 6));
  defs.push_back(singular("pdcchCfiMax", F::kScheduling, 1, 1, 3, 3, 1.00, 2));
  defs.push_back(singular("pdcchPowerOffset", F::kScheduling, -10, 1, 21, 0, 0.50, 4));
  // Capacity / congestion management. capacityThreshold is the intro's
  // example "capacity threshold to control load balancing actions" (0..100).
  defs.push_back(singular("capacityThreshold", F::kCapacityManagement, 0, 1, 101, 70, 0.90, 15));
  defs.push_back(singular("admissionThreshold", F::kCapacityManagement, 0, 1, 101, 80, 0.90, 8));
  defs.push_back(singular("congActionThreshold", F::kCapacityManagement, 0, 1, 101, 90, 0.70, 6));
  defs.push_back(singular("maxConnectedUsers", F::kCapacityManagement, 50, 50, 40, 400, 1.00, 10));
  defs.push_back(singular("maxBearersPerUser", F::kCapacityManagement, 1, 1, 16, 8, 0.90, 3));
  // Interference management.
  defs.push_back(singular("ulInterferenceTargetPrb", F::kInterference, 0, 1, 51, 20, 0.60, 5));
  defs.push_back(singular("iciMitigationLevel", F::kInterference, 0, 1, 11, 3, 0.50, 4));
  defs.push_back(singular("ulNoiseRiseLimit", F::kInterference, 1, 0.5, 39, 10, 0.70, 5));

  // ----- 26 pair-wise parameters -----
  // Intra-frequency relations (A3 handover between same-frequency cells).
  // hysA3Offset 0..15 step 0.5 per §2.2.
  defs.push_back(pairwise("hysA3Offset", R::kIntraFrequency, F::kMobility, 0, 0.5, 31, 2, 1.00, 8));
  defs.push_back(pairwise("a3Offset", R::kIntraFrequency, F::kMobility, -15, 0.5, 61, 3, 1.00, 8));
  defs.push_back(pairwise("timeToTriggerA3", R::kIntraFrequency, F::kMobility, 0, 40, 129, 320, 1.00, 6));
  defs.push_back(per_edge(
      pairwise("cellIndividualOffset", R::kIntraFrequency, F::kMobility, -24, 0.5, 97, 0, 0.90, 12)));
  defs.push_back(per_edge(
      pairwise("qOffsetCell", R::kIntraFrequency, F::kMobility, -24, 1, 49, 0, 0.80, 8)));
  defs.push_back(pairwise("filterCoefficientRsrp", R::kIntraFrequency, F::kMobility, 0, 1, 20, 4, 0.90, 3));
  defs.push_back(pairwise("t304Expiry", R::kIntraFrequency, F::kMobility, 50, 50, 16, 500, 0.80, 3));
  defs.push_back(pairwise("hoPrepTimeout", R::kIntraFrequency, F::kMobility, 100, 100, 40, 1000, 0.80, 4));
  defs.push_back(pairwise("dataFwdTimer", R::kIntraFrequency, F::kMobility, 100, 100, 30, 500, 0.60, 3));
  defs.push_back(pairwise("hoOscillationTimer", R::kIntraFrequency, F::kMobility, 0, 1, 60, 10, 0.60, 5));
  defs.push_back(pairwise("badCoverageThreshold", R::kIntraFrequency, F::kMobility, -140, 1, 51, -115, 0.90, 6));
  defs.push_back(pairwise("goodCoverageOffset", R::kIntraFrequency, F::kMobility, 0, 1, 31, 5, 0.80, 4));
  defs.push_back(per_edge(
      pairwise("x2RelationWeight", R::kIntraFrequency, F::kMobility, 0, 1, 20, 10, 0.50, 4)));
  // Inter-frequency relations (IFLB, coverage-triggered inter-frequency
  // mobility and layer steering). lbThreshold is the IFLB load threshold.
  defs.push_back(pairwise("threshXHigh", R::kInterFrequency, F::kLayerManagement, 0, 2, 32, 20, 0.90, 6));
  defs.push_back(pairwise("threshXLow", R::kInterFrequency, F::kLayerManagement, 0, 2, 32, 10, 0.90, 6));
  defs.push_back(pairwise("interFreqPrio", R::kInterFrequency, F::kLayerManagement, 0, 1, 8, 3, 1.00, 4));
  defs.push_back(pairwise("a5Threshold1Rsrp", R::kInterFrequency, F::kMobility, -140, 1, 97, -110, 1.00, 10));
  defs.push_back(pairwise("a5Threshold2Rsrp", R::kInterFrequency, F::kMobility, -140, 1, 97, -100, 1.00, 10));
  defs.push_back(pairwise("hysteresisA5", R::kInterFrequency, F::kMobility, 0, 0.5, 31, 2, 1.00, 6));
  defs.push_back(pairwise("timeToTriggerA5", R::kInterFrequency, F::kMobility, 0, 40, 129, 640, 0.90, 5));
  defs.push_back(pairwise("lbThreshold", R::kInterFrequency, F::kCapacityManagement, 0, 1, 101, 60, 0.90, 15));
  defs.push_back(pairwise("lbCeiling", R::kInterFrequency, F::kCapacityManagement, 0, 1, 101, 90, 0.80, 8));
  defs.push_back(pairwise("lbOffset", R::kInterFrequency, F::kCapacityManagement, 0, 1, 21, 5, 0.80, 5));
  defs.push_back(pairwise("ifhoMargin", R::kInterFrequency, F::kMobility, -10, 0.5, 41, 0, 0.90, 6));
  defs.push_back(pairwise("a2CriticalThreshold", R::kInterFrequency, F::kMobility, -140, 1, 97, -120, 1.00, 8));
  defs.push_back(pairwise("serviceTriggeredHoThresh", R::kInterFrequency, F::kMobility, -140, 1, 50, -112, 0.50, 5));

  return ParamCatalog(std::move(defs));
}

}  // namespace auric::config
