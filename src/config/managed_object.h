// Vendor managed-object (MO) modeling.
//
// §5 of the paper: "cellular equipment vendors provide a configuration
// schema where the configuration parameters are organized in the form of a
// hierarchical structure called managed objects". The SmartLaunch controller
// fills a vendor template with instance ids and pushes the resulting
// configuration file through the EMS. This module provides that
// representation: MO paths, per-carrier configuration snapshots, and diffs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "config/catalog.h"
#include "netsim/topology.h"

namespace auric::config {

/// One parameter setting at a concrete MO instance, e.g.
///   path  = "ENodeBFunction=17/EUtranCellFDD=17-2-700/EUtranFreqRelation=1900"
///   param = id_of("threshXHigh"), value = domain index.
struct MoSetting {
  std::string mo_path;
  ParamId param = 0;
  ValueIndex value = kUnset;

  bool operator==(const MoSetting&) const = default;
};

/// A carrier's full configuration file: one MoSetting per configured slot,
/// ordered by (mo_path, param).
struct CarrierConfig {
  netsim::CarrierId carrier = netsim::kInvalidCarrier;
  std::vector<MoSetting> settings;

  std::size_t size() const { return settings.size(); }
};

/// MO path of a carrier's cell object:
/// "ENodeBFunction=<enodeb>/EUtranCellFDD=<enodeb>-<face>-<freq>".
std::string cell_mo_path(const netsim::Carrier& carrier);

/// MO path of the frequency relation from `carrier` toward `neighbor`'s
/// frequency (per-frequency-relation parameters live here).
std::string freq_relation_mo_path(const netsim::Carrier& carrier,
                                  const netsim::Carrier& neighbor);

/// MO path of the individual cell relation (per-edge parameters live here).
std::string cell_relation_mo_path(const netsim::Carrier& carrier,
                                  const netsim::Carrier& neighbor);

/// Renders `config` as vendor CLI-style lines:
///   set <mo_path> <paramName> <value>
/// with values printed in raw (not index) units.
std::vector<std::string> render_config_commands(const CarrierConfig& config,
                                                const ParamCatalog& catalog);

/// Settings present in `desired` whose value differs from (or is absent in)
/// `current`. Both inputs must be sorted by (mo_path, param); output
/// preserves that order. This is the controller's "push only the
/// mismatches" primitive (§5).
std::vector<MoSetting> diff_config(const CarrierConfig& current, const CarrierConfig& desired);

/// Sorts settings into the canonical (mo_path, param) order.
void canonicalize(CarrierConfig& config);

}  // namespace auric::config
