// In-process sampling profiler: where do the milliseconds go?
//
// Histograms say a /recommend request spent 40ms somewhere; traces say which
// span; the profiler says which *code*. A SIGPROF interval timer samples the
// process's CPU time at a fixed rate, the signal handler captures the call
// stack of whichever thread the kernel charged, and stop() folds the raw
// stacks into flamegraph-collapsed lines:
//
//   main;auric::serve::ServeDaemon::compute;auric::RecommendEngine::score 42
//
// one line per unique stack, outermost frame first, trailing sample count —
// the exact input `flamegraph.pl` and speedscope expect.
//
// Constraints that shaped this:
//   signal safety   the handler only does a backtrace() into a preallocated
//                   slot claimed with one atomic fetch_add — no locks, no
//                   allocation, no symbolization. backtrace()'s lazy libgcc
//                   initialization is primed on start(), outside signal
//                   context.
//   one at a time   SIGPROF and ITIMER_PROF are process-global, so only one
//                   profile can run; start() returns false when busy.
//   sanitizers      interrupting TSan/ASan runtimes mid-instrumentation is
//                   undefined; the profiler compiles to a stub (supported()
//                   == false) under AURIC_PROFILER_DISABLED or when a
//                   sanitizer is detected, and callers degrade gracefully.
//
// Exposed over HTTP as /profilez?seconds=N (see obs::MetricsServer and the
// serve daemon) and as the --profile-out live-plane flag.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace auric::obs {

struct ProfileOptions {
  /// Samples per second of process CPU time. 97 (prime) avoids lockstep
  /// with periodic work. Clamped to [1, 1000].
  int hz = 97;
  /// Preallocated sample slots; samples past this are counted as dropped.
  std::size_t max_samples = 65536;
};

struct ProfileReport {
  std::uint64_t samples = 0;  ///< raw stacks collected
  std::uint64_t dropped = 0;  ///< SIGPROF hits past max_samples
  /// Flamegraph-collapsed stacks: "frame;frame;frame count\n" per unique
  /// stack, sorted by stack string (deterministic for a given sample set).
  std::string folded;
};

/// The process-wide profiler. All methods are thread-safe; only one profile
/// runs at a time (the signal and timer are process-global).
class Profiler {
 public:
  /// False when compiled out (sanitizer builds, non-Linux hosts). All other
  /// methods are safe to call regardless — start() just returns false.
  static bool supported();

  static Profiler& global();

  /// Arms the SIGPROF timer. Returns false (and changes nothing) when
  /// unsupported or a profile is already running.
  bool start(const ProfileOptions& options = {});

  /// Disarms the timer, restores the previous SIGPROF disposition, and
  /// folds the collected stacks. Returns an empty report when not running.
  ProfileReport stop();

  bool running() const;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

 private:
  Profiler() = default;
};

/// Profiles the whole process for `duration_ms`, blocking the calling thread
/// (other threads keep running — they are what gets sampled). Returns an
/// empty report when the profiler is unsupported or already running; the
/// /profilez handler's implementation.
ProfileReport profile_process(int duration_ms, const ProfileOptions& options = {});

}  // namespace auric::obs
