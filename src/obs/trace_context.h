// Per-thread trace context and the W3C `traceparent` wire format.
//
// A trace is one logical operation — a served /recommend request, a replay
// day — whose spans may be recorded from many threads. The context that
// ties them together is deliberately tiny: a 128-bit trace id plus the id
// of the innermost open span. It lives in a thread-local, costs two loads
// to read, and crosses thread boundaries explicitly:
//
//   capture   TraceContext ctx = current_trace_context();      // submitter
//   adopt     TraceContextScope scope(ctx);                    // worker
//
// util::TaskPool does exactly that around every dispatched task, so a span
// opened inside a pool task parents under the submitter's span and shares
// its trace id — one request, one trace tree, across the fan-out.
//
// The wire format is W3C Trace Context (`traceparent` header):
//
//   00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01
//   ^v ^trace-id (32 hex, non-zero)     ^parent-id (16hex) ^flags
//
// parse_traceparent() accepts future (foreign) versions per the spec —
// anything but 0xff with the version-00 field layout — and rejects
// truncated, garbage, or all-zero headers. This header sits below trace.h
// (no recorder dependency) so obs::metrics can attach trace ids to
// histogram exemplars without a layering cycle.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace auric::obs {

/// 128-bit trace id (W3C trace-id). All-zero means "no trace".
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool valid() const { return (hi | lo) != 0; }
  friend bool operator==(const TraceId& a, const TraceId& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const TraceId& a, const TraceId& b) { return !(a == b); }
};

/// 32 lower-case hex characters (the wire rendering of the trace id).
std::string trace_id_hex(const TraceId& id);

/// Parses 32 hex characters; nullopt on bad length/characters or all-zero.
std::optional<TraceId> parse_trace_id_hex(std::string_view hex);

/// This thread's trace context: the trace every new span joins and the span
/// it parents under. span == 0 with a valid trace_id happens right after a
/// remote context was adopted (the remote parent id is not a local span).
struct TraceContext {
  TraceId trace_id;
  std::uint64_t span = 0;
  /// The remote parent span id when this context was adopted from a
  /// traceparent header and no local span has opened yet; 0 otherwise.
  std::uint64_t remote_parent = 0;
};

/// Snapshot of the calling thread's context (cheap: two thread-local loads).
TraceContext current_trace_context();

/// Overwrites the calling thread's context. Prefer TraceContextScope; this
/// exists for the RAII types and tests.
void set_current_trace_context(const TraceContext& ctx);

/// RAII adopt/restore: installs `ctx` for the scope's lifetime and restores
/// the previous context on destruction. This is the cross-thread handoff
/// primitive the TaskPool wraps around every task.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx)
      : saved_(current_trace_context()) {
    set_current_trace_context(ctx);
  }
  ~TraceContextScope() { set_current_trace_context(saved_); }
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// One parsed traceparent header.
struct Traceparent {
  TraceId trace_id;
  std::uint64_t parent_span = 0;
  std::uint8_t flags = 0;

  bool sampled() const { return (flags & 0x01) != 0; }
};

/// Strict W3C parse: version-00 layout, future versions tolerated (their
/// extra suffix past the flags field is ignored), 0xff and malformed /
/// truncated / all-zero-id headers rejected.
std::optional<Traceparent> parse_traceparent(std::string_view header);

/// Renders "00-<trace-id>-<span-id>-<flags>"; span_id 0 is rendered as-is
/// (callers should pass a real span id).
std::string format_traceparent(const TraceId& trace_id, std::uint64_t span_id,
                               std::uint8_t flags = 0x01);

}  // namespace auric::obs
