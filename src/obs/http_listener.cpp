#include "obs/http_listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "obs/trace.h"
#include "obs/trace_context.h"

namespace auric::obs {

namespace {

using Clock = std::chrono::steady_clock;

// Writes the whole buffer, riding out EINTR and short writes. MSG_NOSIGNAL
// keeps a dead peer from raising SIGPIPE at the process.
void write_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // peer went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses "METHOD SP TARGET SP HTTP/x.y" from the first line of `raw`.
/// Returns false when the line is complete but malformed.
bool parse_request_line(std::string_view line, HttpRequest* out) {
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.substr(sp2 + 1).substr(0, 5) != "HTTP/") {
    return false;
  }
  out->method = std::string(line.substr(0, sp1));
  out->target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  return true;
}

}  // namespace

std::string_view HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) {
      return value;
    }
  }
  return {};
}

std::string_view HttpRequest::path() const {
  const std::string_view t(target);
  const std::size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string_view HttpRequest::query() const {
  const std::string_view t(target);
  const std::size_t q = t.find('?');
  return q == std::string_view::npos ? std::string_view{} : t.substr(q + 1);
}

const char* HttpListener::status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Error";
  }
}

HttpListener::HttpListener(Handler handler, Options options)
    : handler_(std::move(handler)), options_(std::move(options)) {}

HttpListener::~HttpListener() { stop(); }

void HttpListener::start() {
  if (running_.load()) {
    return;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(options_.name + ": socket(): " + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error(options_.name + ": bad bind address: " + options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error(options_.name + ": bind(" + options_.bind_address + ":" +
                             std::to_string(options_.port) + "): " + std::strerror(err));
  }
  if (::listen(fd, options_.backlog) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error(options_.name + ": listen(): " + std::strerror(err));
  }
  // Recover the kernel's pick when an ephemeral port was requested.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error(options_.name + ": getsockname(): " + std::strerror(err));
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  stop_requested_.store(false);
  running_.store(true);
  const int workers = std::max(1, options_.threads);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpListener::stop() {
  stop_requested_.store(true);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) {
      t.join();
    }
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false);
}

void HttpListener::accept_loop() {
  while (!stop_requested_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) {
      continue;  // timeout (re-check stop flag) or EINTR
    }
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      continue;  // EINTR / transient accept failure
    }
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.size() >= options_.pending_connections) {
        shed = true;
      } else {
        pending_.push_back(client);
      }
    }
    if (shed) {
      // Don't read the request: the point of shedding is to spend nothing on
      // work we cannot do. The canned response fits in the socket buffer.
      sheds_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse busy{503, "text/plain; charset=utf-8", "listener overloaded\n", {{"Retry-After", "1"}}};
      write_response(client, busy);
      ::close(client);
    } else {
      cv_.notify_one();
    }
  }
}

void HttpListener::worker_loop() {
  for (;;) {
    int client = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_requested_.load() || !pending_.empty(); });
      if (pending_.empty()) {
        // stop requested and the accept thread has joined: queue is final.
        return;
      }
      client = pending_.front();
      pending_.pop_front();
    }
    handle_connection(client);
    ::close(client);
  }
}

void HttpListener::handle_connection(int client_fd) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options_.read_deadline_ms);

  std::string raw;
  HttpRequest request;
  std::size_t headers_end = std::string::npos;  // offset just past the blank line
  std::size_t body_needed = 0;
  bool peer_closed = false;
  int error_status = 0;
  const char* error_body = nullptr;

  char buf[2048];
  for (;;) {
    // Completeness checks on what we have so far.
    if (raw.size() > options_.max_request_bytes) {
      error_status = 413;
      error_body = "request too large\n";
      break;
    }
    if (headers_end == std::string::npos) {
      std::size_t end = raw.find("\r\n\r\n");
      std::size_t skip = 4;
      if (end == std::string::npos) {
        end = raw.find("\n\n");
        skip = 2;
      }
      if (end != std::string::npos) {
        headers_end = end + skip;
        // Parse request line + headers.
        std::string_view head(raw.data(), end);
        const std::size_t eol = head.find('\n');
        std::string_view first =
            eol == std::string_view::npos ? head : head.substr(0, eol);
        if (!parse_request_line(first, &request)) {
          error_status = 400;
          error_body = "malformed request line\n";
          break;
        }
        std::string_view rest =
            eol == std::string_view::npos ? std::string_view{} : head.substr(eol + 1);
        while (!rest.empty()) {
          const std::size_t line_end = rest.find('\n');
          std::string_view line =
              line_end == std::string_view::npos ? rest : rest.substr(0, line_end);
          rest = line_end == std::string_view::npos ? std::string_view{}
                                                    : rest.substr(line_end + 1);
          const std::size_t colon = line.find(':');
          if (colon == std::string_view::npos) {
            continue;
          }
          request.headers.emplace_back(lower(trim(line.substr(0, colon))),
                                       std::string(trim(line.substr(colon + 1))));
        }
        const std::string_view cl = request.header("content-length");
        if (!cl.empty()) {
          char* parse_end = nullptr;
          const std::string cl_str(cl);
          const long long v = std::strtoll(cl_str.c_str(), &parse_end, 10);
          if (parse_end == nullptr || *parse_end != '\0' || v < 0) {
            error_status = 400;
            error_body = "bad content-length\n";
            break;
          }
          body_needed = static_cast<std::size_t>(v);
          if (headers_end + body_needed > options_.max_request_bytes) {
            error_status = 413;
            error_body = "request too large\n";
            break;
          }
        }
      } else if (raw.find('\n') != std::string::npos) {
        // A complete first line with no header terminator yet: bail out early
        // when it is already malformed, instead of making a garbage-spewing
        // client wait out the deadline.
        HttpRequest probe;
        std::string_view first(raw.data(), raw.find('\n'));
        if (!parse_request_line(first, &probe)) {
          error_status = 400;
          error_body = "malformed request line\n";
          break;
        }
      }
    }
    if (headers_end != std::string::npos) {
      if (raw.size() >= headers_end + body_needed) {
        request.body = raw.substr(headers_end, body_needed);
        break;  // complete
      }
    }
    if (peer_closed) {
      error_status = 400;
      error_body = "malformed request\n";
      break;
    }

    // Wait for more bytes, bounded by the absolute deadline.
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
    if (remaining.count() <= 0) {
      error_status = 408;
      error_body = "read deadline exceeded\n";
      break;
    }
    pollfd pfd{client_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      error_status = 400;
      error_body = "read error\n";
      break;
    }
    if (ready == 0) {
      error_status = 408;
      error_body = "read deadline exceeded\n";
      break;
    }
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      error_status = 400;
      error_body = "read error\n";
      break;
    }
    if (n == 0) {
      peer_closed = true;  // let the completeness check above decide
      continue;
    }
    raw.append(buf, static_cast<std::size_t>(n));
  }

  HttpResponse response;
  if (error_status != 0) {
    response = {error_status, "text/plain; charset=utf-8", error_body, {}};
  } else {
    response = dispatch(request);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  write_response(client_fd, response);
}

HttpResponse HttpListener::dispatch(const HttpRequest& request) {
  TraceRecorder& recorder = TraceRecorder::global();
  if (!recorder.enabled()) {
    return handler_(request);
  }
  const std::optional<Traceparent> remote = parse_traceparent(request.header("traceparent"));
  HttpResponse response;
  TraceId trace;
  {
    // A valid traceparent is adopted: the root span (and everything the
    // handler opens under it) joins the caller's trace, parented under the
    // caller's span id. Otherwise the scope installs a clean context and
    // the root span starts (and later finalizes) a fresh trace.
    TraceContextScope adopt(remote.has_value()
                                ? TraceContext{remote->trace_id, 0, remote->parent_span}
                                : TraceContext{});
    ScopedSpan span(std::string("http.") += request.path(), recorder);
    trace = span.trace();
    response = handler_(request);
    if (response.status >= 500) {
      recorder.mark_trace_error();
    }
    if (trace.valid()) {
      response.extra_headers.emplace_back("Traceparent", format_traceparent(trace, span.id()));
    }
  }
  // Adopted traces have no local starting span to finalize them; the server
  // is the trace's edge, so it decides keep/drop here.
  if (remote.has_value()) {
    recorder.finalize_trace(remote->trace_id);
  }
  return response;
}

void HttpListener::write_response(int client_fd, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     status_text(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " + std::to_string(response.body.size());
  for (const auto& [key, value] : response.extra_headers) {
    head += "\r\n" + key + ": " + value;
  }
  head += "\r\nConnection: close\r\n\r\n";
  write_all(client_fd, head.data(), head.size());
  write_all(client_fd, response.body.data(), response.body.size());
}

}  // namespace auric::obs
