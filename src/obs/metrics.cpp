#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace auric::obs {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool valid_label_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

Labels canonical_labels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (!valid_label_name(sorted[i].first)) {
      throw std::invalid_argument("obs: invalid label name '" + sorted[i].first + "'");
    }
    if (i > 0 && sorted[i].first == sorted[i - 1].first) {
      throw std::invalid_argument("obs: duplicate label name '" + sorted[i].first + "'");
    }
  }
  return sorted;
}

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first + "=\"" + escape_label_value(labels[i].second) + "\"";
  }
  out += '}';
  return out;
}

/// Like render_labels but with an extra le pair appended (histogram buckets).
std::string render_labels_le(const Labels& labels, const std::string& le) {
  std::string out = "{";
  for (const auto& [k, v] : labels) out += k + "=\"" + escape_label_value(v) + "\",";
  out += "le=\"" + le + "\"}";
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void Gauge::add(double delta) noexcept {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: bounds must be non-empty");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    }
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v, std::memory_order_relaxed)) {
  }
  HistogramExemplar* exemplars = exemplars_.load(std::memory_order_acquire);
  if (exemplars != nullptr) {
    const TraceContext ctx = current_trace_context();
    if (ctx.trace_id.valid()) {
      while (ex_lock_.test_and_set(std::memory_order_acquire)) {
      }
      exemplars[idx] = HistogramExemplar{v, ctx.trace_id};
      ex_lock_.clear(std::memory_order_release);
    }
  }
}

void Histogram::enable_exemplars() {
  if (exemplars_.load(std::memory_order_acquire) != nullptr) return;
  while (ex_lock_.test_and_set(std::memory_order_acquire)) {
  }
  if (exemplars_.load(std::memory_order_relaxed) == nullptr) {
    // Leaked on purpose: instruments are never destroyed while the registry
    // lives, and a freed exemplar array would race lock-free readers.
    exemplars_.store(new HistogramExemplar[bounds_.size() + 1](), std::memory_order_release);
  }
  ex_lock_.clear(std::memory_order_release);
}

std::vector<HistogramExemplar> Histogram::exemplars() const {
  HistogramExemplar* exemplars = exemplars_.load(std::memory_order_acquire);
  if (exemplars == nullptr) return {};
  std::vector<HistogramExemplar> out(bounds_.size() + 1);
  while (ex_lock_.test_and_set(std::memory_order_acquire)) {
  }
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = exemplars[i];
  ex_lock_.clear(std::memory_order_release);
  return out;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  HistogramExemplar* exemplars = exemplars_.load(std::memory_order_acquire);
  if (exemplars != nullptr) {
    while (ex_lock_.test_and_set(std::memory_order_acquire)) {
    }
    for (std::size_t i = 0; i <= bounds_.size(); ++i) exemplars[i] = HistogramExemplar{};
    ex_lock_.clear(std::memory_order_release);
  }
}

const std::vector<double>& default_latency_bounds_ms() {
  static const std::vector<double> bounds{0.5,   1.0,   2.5,    5.0,    10.0,   25.0,  50.0,
                                          100.0, 250.0, 500.0,  1000.0, 2500.0, 5000.0, 10000.0};
  return bounds;
}

const std::vector<double>& default_seconds_bounds() {
  static const std::vector<double> bounds{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                                          0.25,  0.5,    1.0,   2.5,  5.0,   10.0, 30.0, 60.0};
  return bounds;
}

double histogram_quantile(const MetricSample& sample, double q) {
  if (sample.kind != MetricSample::Kind::kHistogram || sample.count == 0 ||
      sample.buckets.size() != sample.bounds.size() + 1) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based, Prometheus convention:
  // rank q*count, clamped into [1, count]).
  const double rank = std::max(1.0, q * static_cast<double>(sample.count));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < sample.bounds.size(); ++i) {
    const std::uint64_t before = cumulative;
    cumulative += sample.buckets[i];
    if (static_cast<double>(cumulative) + 1e-12 < rank) continue;
    // The target observation sits in bucket i: interpolate linearly
    // between the bucket's bounds. The first bucket's lower bound is 0
    // unless the boundary itself is negative (then there is no better
    // anchor than the boundary).
    const double upper = sample.bounds[i];
    const double lower = i > 0 ? sample.bounds[i - 1] : std::min(0.0, upper);
    const auto in_bucket = static_cast<double>(sample.buckets[i]);
    if (in_bucket <= 0.0) return upper;
    const double fraction = (rank - static_cast<double>(before)) / in_bucket;
    return lower + (upper - lower) * std::min(1.0, std::max(0.0, fraction));
  }
  // Overflow bucket: no finite upper bound, clamp to the largest boundary.
  return sample.bounds.back();
}

const char* metric_kind_name(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter: return "counter";
    case MetricSample::Kind::kGauge: return "gauge";
    case MetricSample::Kind::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

namespace {

/// The counter every over-cap registration bumps (see set_label_limit).
constexpr const char* kLabelsDroppedName = "obs_labels_dropped_total";

}  // namespace

std::unique_ptr<MetricsRegistry::Entry> MetricsRegistry::make_entry(
    MetricSample::Kind kind, std::string_view name, std::string_view help, Labels labels,
    const std::vector<double>* bounds) {
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->labels = std::move(labels);
  switch (kind) {
    case MetricSample::Kind::kCounter: entry->counter = std::make_unique<Counter>(); break;
    case MetricSample::Kind::kGauge: entry->gauge = std::make_unique<Gauge>(); break;
    case MetricSample::Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>(*bounds);
      break;
  }
  return entry;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(MetricSample::Kind kind,
                                                        std::string_view name,
                                                        std::string_view help,
                                                        const Labels& labels,
                                                        const std::vector<double>* bounds) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("obs: invalid metric name '" + std::string(name) + "'");
  }
  const Labels sorted = canonical_labels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t label_sets = 0;
  for (const auto& entry : entries_) {
    if (entry->name != name) continue;
    if (entry->kind != kind) {
      throw std::invalid_argument("obs: metric '" + std::string(name) + "' already registered as " +
                                  metric_kind_name(entry->kind));
    }
    ++label_sets;
    if (entry->labels != sorted) continue;
    if (kind == MetricSample::Kind::kHistogram && entry->histogram->bounds() != *bounds) {
      throw std::invalid_argument("obs: histogram '" + std::string(name) +
                                  "' re-registered with different bounds");
    }
    return *entry;
  }
  if (label_sets >= label_limit_ && name != kLabelsDroppedName) {
    // Past the cardinality cap: a runaway label (carrier id, file path)
    // must not grow the export without bound. Count the drop and hand out
    // a shared sink of the right kind; the caller's increments land in the
    // sink instead of a fresh exported series.
    Entry* dropped = nullptr;
    for (const auto& entry : entries_) {
      if (entry->name == kLabelsDroppedName) {
        dropped = entry.get();
        break;
      }
    }
    if (dropped == nullptr) {
      entries_.push_back(make_entry(MetricSample::Kind::kCounter, kLabelsDroppedName,
                                    "instrument registrations dropped by the label-cardinality cap",
                                    {}, nullptr));
      dropped = entries_.back().get();
    }
    dropped->counter->inc();
    auto& sink = sinks_[static_cast<std::size_t>(kind)];
    if (sink == nullptr) sink = make_entry(kind, "obs_label_overflow_sink", "", {}, bounds);
    return *sink;
  }
  entries_.push_back(make_entry(kind, name, help, sorted, bounds));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  const Labels& labels) {
  return *find_or_create(MetricSample::Kind::kCounter, name, help, labels, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              const Labels& labels) {
  return *find_or_create(MetricSample::Kind::kGauge, name, help, labels, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, const std::vector<double>& bounds,
                                      std::string_view help, const Labels& labels) {
  return *find_or_create(MetricSample::Kind::kHistogram, name, help, labels, &bounds).histogram;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples.reserve(entries_.size());
    for (const auto& entry : entries_) {
      MetricSample sample;
      sample.kind = entry->kind;
      sample.name = entry->name;
      sample.help = entry->help;
      sample.labels = entry->labels;
      switch (entry->kind) {
        case MetricSample::Kind::kCounter:
          sample.value = static_cast<double>(entry->counter->value());
          break;
        case MetricSample::Kind::kGauge:
          sample.value = entry->gauge->value();
          break;
        case MetricSample::Kind::kHistogram:
          sample.bounds = entry->histogram->bounds();
          sample.buckets = entry->histogram->bucket_counts();
          sample.count = entry->histogram->count();
          sample.sum = entry->histogram->sum();
          sample.exemplars = entry->histogram->exemplars();
          break;
      }
      samples.push_back(std::move(sample));
    }
  }
  std::sort(samples.begin(), samples.end(), [](const MetricSample& a, const MetricSample& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  });
  return samples;
}

std::string MetricsRegistry::prometheus_text() const {
  const std::vector<MetricSample> samples = snapshot();
  std::string out;
  std::string last_name;
  for (const MetricSample& s : samples) {
    if (s.name != last_name) {
      if (!s.help.empty()) out += "# HELP " + s.name + " " + s.help + "\n";
      out += "# TYPE " + s.name + " " + metric_kind_name(s.kind) + "\n";
      last_name = s.name;
    }
    if (s.kind == MetricSample::Kind::kHistogram) {
      // OpenMetrics exemplar suffix for bucket i, or "" when that bucket
      // never saw an observation under an active trace.
      const auto exemplar_suffix = [&](std::size_t i) -> std::string {
        if (i >= s.exemplars.size() || !s.exemplars[i].trace_id.valid()) return "";
        return " # {trace_id=\"" + trace_id_hex(s.exemplars[i].trace_id) + "\"} " +
               format_double(s.exemplars[i].value);
      };
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < s.bounds.size(); ++i) {
        cumulative += s.buckets[i];
        out += s.name + "_bucket" + render_labels_le(s.labels, format_double(s.bounds[i])) + " " +
               std::to_string(cumulative) + exemplar_suffix(i) + "\n";
      }
      cumulative += s.buckets.back();
      out += s.name + "_bucket" + render_labels_le(s.labels, "+Inf") + " " +
             std::to_string(cumulative) + exemplar_suffix(s.bounds.size()) + "\n";
      out += s.name + "_sum" + render_labels(s.labels) + " " + format_double(s.sum) + "\n";
      out += s.name + "_count" + render_labels(s.labels) + " " + std::to_string(s.count) + "\n";
    } else {
      out += s.name + render_labels(s.labels) + " " + format_double(s.value) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::csv_text() const {
  const std::vector<MetricSample> samples = snapshot();
  std::string out = "kind,name,labels,field,value\n";
  const auto row = [&](const MetricSample& s, const std::string& field,
                       const std::string& value) {
    std::string labels = render_labels(s.labels);
    // CSV-quote the label cell: it contains commas and double quotes.
    std::string quoted = "\"";
    for (char c : labels) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    out += std::string(metric_kind_name(s.kind)) + "," + s.name + "," + quoted + "," + field +
           "," + value + "\n";
  };
  for (const MetricSample& s : samples) {
    if (s.kind == MetricSample::Kind::kHistogram) {
      for (std::size_t i = 0; i < s.bounds.size(); ++i) {
        row(s, "bucket_le_" + format_double(s.bounds[i]), std::to_string(s.buckets[i]));
      }
      row(s, "bucket_le_inf", std::to_string(s.buckets.back()));
      row(s, "sum", format_double(s.sum));
      row(s, "count", std::to_string(s.count));
    } else {
      row(s, "value", format_double(s.value));
    }
  }
  return out;
}

std::string MetricsRegistry::json_text() const {
  const std::vector<MetricSample> samples = snapshot();
  std::string out = "[\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    out += "  {\"kind\":\"";
    out += metric_kind_name(s.kind);
    out += "\",\"name\":\"";
    out += json_escape(s.name);
    out += "\",\"labels\":{";
    for (std::size_t l = 0; l < s.labels.size(); ++l) {
      if (l > 0) out += ',';
      out += '"';
      out += json_escape(s.labels[l].first);
      out += "\":\"";
      out += json_escape(s.labels[l].second);
      out += '"';
    }
    out += "}";
    if (s.kind == MetricSample::Kind::kHistogram) {
      out += ",\"bounds\":[";
      for (std::size_t b = 0; b < s.bounds.size(); ++b) {
        if (b > 0) out += ',';
        out += format_double(s.bounds[b]);
      }
      out += "],\"buckets\":[";
      for (std::size_t b = 0; b < s.buckets.size(); ++b) {
        if (b > 0) out += ',';
        out += std::to_string(s.buckets[b]);
      }
      out += "],\"count\":" + std::to_string(s.count) + ",\"sum\":" + format_double(s.sum);
    } else {
      out += ",\"value\":" + format_double(s.value);
    }
    out += "}";
    if (i + 1 < samples.size()) out += ',';
    out += "\n";
  }
  out += "]\n";
  return out;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    switch (entry->kind) {
      case MetricSample::Kind::kCounter: entry->counter->reset(); break;
      case MetricSample::Kind::kGauge: entry->gauge->reset(); break;
      case MetricSample::Kind::kHistogram: entry->histogram->reset(); break;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void MetricsRegistry::set_label_limit(std::size_t limit) {
  std::lock_guard<std::mutex> lock(mu_);
  label_limit_ = std::max<std::size_t>(1, limit);
}

std::size_t MetricsRegistry::label_limit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return label_limit_;
}

std::size_t MetricsRegistry::label_sets(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  for (const auto& entry : entries_) {
    if (entry->name == name) ++count;
  }
  return count;
}

void write_metrics_file(const MetricsRegistry& registry, const std::string& path) {
  std::string text;
  const auto ends_with = [&](const char* suffix) {
    const std::string_view sv(suffix);
    return path.size() >= sv.size() && path.compare(path.size() - sv.size(), sv.size(), sv) == 0;
  };
  if (ends_with(".csv")) {
    text = registry.csv_text();
  } else if (ends_with(".json")) {
    text = registry.json_text();
  } else {
    text = registry.prometheus_text();
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("obs: cannot open '" + path + "' for writing");
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (written != text.size() || rc != 0) {
    throw std::runtime_error("obs: short write to '" + path + "'");
  }
}

}  // namespace auric::obs
