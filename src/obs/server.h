// Embedded HTTP/1.1 endpoint for the live observability plane.
//
// A replay or launch run that only writes metrics files at exit cannot be
// watched; the MetricsServer makes the process scrapeable WHILE it runs, the
// way Prometheus expects exporters to behave. The socket machinery lives in
// obs::HttpListener (shared with the serve plane); this class is the
// routing layer, bound to loopback:
//
//   GET /metrics   Prometheus text exposition of the registry
//   GET /healthz   RuleEngine verdict JSON; 200 when healthy, 503 firing
//   GET /varz      full JSON snapshot of every instrument
//   GET /tracez    recent spans, JSONL; ?trace_id= fetches one stitched
//                  trace, ?min_ms= lists tail-retained slow/error traces
//   GET /logz      the last lines util::log emitted (plain text)
//   GET /profilez  block ?seconds=N (default 1, max 30) sampling the
//                  process, then return flamegraph-collapsed stacks
//
// Port 0 requests an ephemeral port; port() reports what the kernel chose,
// so tests and parallel CI jobs never collide. Requests are handled by a
// single worker — scrape traffic is a few requests per second, not a web
// tier.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/http_listener.h"
#include "obs/metrics.h"

namespace auric::obs {

class RuleEngine;
class TraceRecorder;
class LogBuffer;

struct MetricsServerOptions {
  /// Loopback only by default; this is an operator peephole, not a
  /// service.
  std::string bind_address = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Requests larger than this are answered 413 and dropped.
  std::size_t max_request_bytes = 8192;
};

class MetricsServer {
 public:
  using Options = MetricsServerOptions;

  explicit MetricsServer(const MetricsRegistry& registry = MetricsRegistry::global(),
                         Options options = {});
  ~MetricsServer();
  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// Optional data sources; null disables the corresponding endpoint (404).
  /// Set before start() — the pointers are read from the server thread.
  void set_rule_engine(const RuleEngine* engine) { rules_ = engine; }
  void set_trace_recorder(const TraceRecorder* recorder) { traces_ = recorder; }
  void set_log_buffer(const LogBuffer* buffer) { logs_ = buffer; }

  /// Registers (or replaces) an auxiliary GET endpoint at `path` (leading
  /// slash required, e.g. "/modelz") whose application/json body is rendered
  /// by `source` at request time; an empty function unregisters. Unlike the
  /// built-in sources this is mutex-guarded, so callers that only learn
  /// their data source after the plane is up (replay wiring /modelz to its
  /// ModelWatch) may register mid-run. The source must stay valid until
  /// stop() or unregistration.
  void set_json_source(std::string path, std::function<std::string()> source);

  /// Binds, listens and launches the server thread. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();
  /// Stops the thread and closes the socket; idempotent.
  void stop();
  bool running() const { return listener_ != nullptr && listener_->running(); }

  /// The bound port (the kernel's pick when Options::port was 0); 0 before
  /// start().
  std::uint16_t port() const { return listener_ == nullptr ? 0 : listener_->port(); }
  const Options& options() const { return options_; }

  std::uint64_t requests_served() const {
    return listener_ == nullptr ? 0 : listener_->requests_served();
  }

  /// One parsed response; exposed so tests can exercise routing without a
  /// socket.
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// Routes one request line (method + target; /tracez and /profilez read
  /// the query string) to an endpoint. The socket path and tests share
  /// this.
  Response handle(std::string_view method, std::string_view target) const;

 private:
  const MetricsRegistry* registry_;
  Options options_;
  const RuleEngine* rules_ = nullptr;
  const TraceRecorder* traces_ = nullptr;
  const LogBuffer* logs_ = nullptr;

  /// Auxiliary JSON endpoints; guarded (registration can race the server
  /// thread).
  mutable std::mutex extra_mu_;
  std::map<std::string, std::function<std::string()>, std::less<>> extra_;

  std::unique_ptr<HttpListener> listener_;
};

/// The /profilez handler body, shared with the serve daemon's routing:
/// parses `seconds` out of `query`, runs profile_process, renders a
/// "# samples=N dropped=M" header plus folded stacks. Sets `*status` to 501
/// when the profiler is compiled out, 409 when one is already running, 400
/// on a bad parameter.
std::string profilez_text(std::string_view query, int* status);

}  // namespace auric::obs
