// Process-wide metrics: counters, gauges and fixed-boundary histograms.
//
// The SmartLaunch deployment story (§6 of the paper) depends on operators
// seeing what the recommender and launch pipeline are doing — breaker trips,
// retry storms, rollback causes, relearn latency. This registry is the one
// place those measurements accumulate:
//
//   hot path     increment/observe is a handful of relaxed atomic ops; no
//                locks, no allocation. Call sites resolve their instrument
//                once (registry lookup takes a mutex) and keep the reference
//                — instruments are never destroyed while the registry lives,
//                so cached references stay valid forever.
//   labels       optional key/value pairs; each distinct label set is its
//                own instrument (auric_push_outcomes_total{outcome="..."}).
//   export       snapshot() returns a deterministic, sorted view; the
//                prometheus_text() / csv_text() / json_text() renderings and
//                write_metrics_file() feed scrapers and bench ingestion.
//
// This library sits BELOW util (util::log routes error counts here), so it
// depends on nothing but the standard library.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace_context.h"

namespace auric::obs {

/// Label key/value pairs. Stored sorted by key; at most a handful per
/// instrument (metric cardinality is a budget, not a dumping ground).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value (breaker state, queue depth).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
};

/// The last observation that landed in one histogram bucket, tagged with
/// the trace it belonged to — the OpenMetrics exemplar. An invalid trace_id
/// means "no exemplar yet" (the bucket never saw an observation under an
/// active trace).
struct HistogramExemplar {
  double value = 0.0;
  TraceId trace_id;
};

/// Fixed-boundary histogram with Prometheus `le` semantics: bucket i counts
/// observations <= bounds[i], plus one overflow bucket. Boundaries are fixed
/// at registration so observe() is a binary search plus two relaxed
/// fetch_adds — no locks.
///
/// Exemplars are opt-in (enable_exemplars()): when on, observe() also
/// stores the (value, current trace id) pair into the bucket it hit, so a
/// scraped p99 bucket links directly to a kept trace. The exemplar write
/// takes a tiny spinlock; the disabled path costs one relaxed load.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  /// Starts recording per-bucket (value, trace_id) exemplars. Idempotent;
  /// call once at instrument-resolution time, before hot-path traffic.
  void enable_exemplars();
  bool exemplars_enabled() const noexcept {
    return exemplars_.load(std::memory_order_acquire) != nullptr;
  }
  /// Per-bucket exemplars, size bounds().size() + 1; empty when disabled.
  std::vector<HistogramExemplar> exemplars() const;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size bounds().size() + 1.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void reset() noexcept;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// Lazily allocated at enable_exemplars(), never freed while the
  /// histogram lives (cached references stay valid); guarded by ex_lock_.
  std::atomic<HistogramExemplar*> exemplars_{nullptr};
  mutable std::atomic_flag ex_lock_ = ATOMIC_FLAG_INIT;
};

/// Latency buckets in milliseconds (sub-ms to 10s), shared by the push /
/// backoff / checkpoint histograms so dashboards line up.
const std::vector<double>& default_latency_bounds_ms();

/// Duration buckets in seconds (1ms to 60s) for coarse phases (engine
/// relearn, bench phases).
const std::vector<double>& default_seconds_bounds();

/// One instrument in a snapshot. Counters/gauges fill `value`; histograms
/// fill bounds/buckets/count/sum.
struct MetricSample {
  enum class Kind { kCounter = 0, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  std::string help;
  Labels labels;
  double value = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< non-cumulative, bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
  /// Per-bucket exemplars (bounds.size() + 1); empty unless the histogram
  /// has exemplars enabled.
  std::vector<HistogramExemplar> exemplars;
};

const char* metric_kind_name(MetricSample::Kind kind);

/// The q-quantile (0 <= q <= 1) of a histogram sample, estimated with
/// linear interpolation inside the fixed bucket boundaries (the Prometheus
/// histogram_quantile estimate): the first bucket interpolates from 0 (or
/// from its lower bound when that bound is negative), a quantile landing in
/// the overflow bucket clamps to the largest finite bound. Returns NaN for
/// a non-histogram sample or one with no observations.
double histogram_quantile(const MetricSample& sample, double q);

/// Thread-safe registry of named instruments. Registration (counter() /
/// gauge() / histogram()) takes a mutex and validates the name; re-asking
/// for the same (name, labels) returns the same instrument, so call sites
/// can idempotently resolve at startup. A name registered as one kind (or a
/// histogram re-registered with different bounds) throws
/// std::invalid_argument — metric names are a schema, not a suggestion.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrument lives in.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name, std::string_view help = "", const Labels& labels = {});
  Gauge& gauge(std::string_view name, std::string_view help = "", const Labels& labels = {});
  Histogram& histogram(std::string_view name, const std::vector<double>& bounds,
                       std::string_view help = "", const Labels& labels = {});

  /// Deterministic view, sorted by (name, labels).
  std::vector<MetricSample> snapshot() const;

  /// Prometheus text exposition format (HELP/TYPE lines, cumulative
  /// histogram buckets with le labels, +Inf bucket, _sum/_count).
  std::string prometheus_text() const;
  /// One row per scalar: kind,name,labels,field,value. Histograms emit one
  /// row per bucket plus sum and count.
  std::string csv_text() const;
  /// JSON array of sample objects (for bench ingestion).
  std::string json_text() const;

  /// Zeroes every instrument's value; registrations (and outstanding
  /// references) stay valid. For tests and bench arms that need a clean
  /// slate without invalidating cached references.
  void reset_values();

  std::size_t size() const;

  /// Cardinality guard: at most this many distinct label sets may register
  /// under one metric name (default 256). A registration past the cap
  /// returns a shared unexported sink instrument of the right kind — call
  /// sites keep working, the export stays bounded — and increments
  /// obs_labels_dropped_total. The limit is a floor of 1 and applies to
  /// future registrations only.
  void set_label_limit(std::size_t limit);
  std::size_t label_limit() const;

  /// Distinct label sets currently registered under `name`.
  std::size_t label_sets(std::string_view name) const;

 private:
  struct Entry {
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  static std::unique_ptr<Entry> make_entry(MetricSample::Kind kind, std::string_view name,
                                           std::string_view help, Labels labels,
                                           const std::vector<double>* bounds);

  Entry& find_or_create(MetricSample::Kind kind, std::string_view name, std::string_view help,
                        const Labels& labels, const std::vector<double>* bounds);

  mutable std::mutex mu_;
  /// Keyed by name + canonical label serialization; std::map node stability
  /// plus unique_ptr keeps instrument references valid for the registry's
  /// lifetime.
  std::vector<std::unique_ptr<Entry>> entries_;
  std::size_t label_limit_ = 256;
  /// Shared overflow sinks handed out past the label cap, one per kind;
  /// live outside entries_ so they are never exported. The histogram sink
  /// keeps the bounds of the first overflowing registration.
  std::unique_ptr<Entry> sinks_[3];
};

/// Writes `registry.snapshot()` to `path`; the format follows the
/// extension: ".csv" -> CSV, ".json" -> JSON, anything else (".prom",
/// ".txt") -> Prometheus text. Throws std::runtime_error on I/O failure.
void write_metrics_file(const MetricsRegistry& registry, const std::string& path);

/// Observes wall-clock seconds into a histogram exactly once, at stop() or
/// destruction. The single timing code path for bench phase numbers: the
/// value printed is the value recorded.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds elapsed; observes on first call, returns the same value after.
  double stop() {
    if (histogram_ != nullptr) {
      elapsed_ = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
      histogram_->observe(elapsed_);
      histogram_ = nullptr;
    }
    return elapsed_;
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
  double elapsed_ = 0.0;
};

}  // namespace auric::obs
