// Reusable loopback HTTP/1.1 listener: the socket machinery behind
// obs::MetricsServer, generalized so the serve plane can stand on it too.
//
// One accept thread polls the listening socket with a short timeout and a
// stop flag (prompt shutdown without pthread_cancel games) and pushes
// accepted fds onto a bounded queue; `threads` connection workers pop fds,
// read the request under a per-connection deadline, and run the handler.
// When the queue is full the accept thread writes a canned 503 and closes —
// a stalled or bursty client population can delay service but never wedge
// the accept loop or grow memory without bound.
//
// Socket-path hardening lives here once, shared by every consumer:
//   - EINTR retried on poll/recv/send
//   - partial writes looped to completion
//   - SIGPIPE suppressed via MSG_NOSIGNAL (no process-global sigaction)
//   - per-connection absolute read deadline (408 on expiry)
//   - request size bound (413 past Options::max_request_bytes)
//
// Port 0 requests an ephemeral port; port() reports the kernel's pick so
// tests and parallel CI jobs never collide.
//
// Trace propagation: every handled request runs under a root span
// ("http.<path>"). A valid W3C `traceparent` request header is adopted —
// the handler's spans join the caller's trace — and every response carries
// a `Traceparent` header naming the trace, so clients (loadgen) can link a
// slow response to its recorded trace.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace auric::obs {

/// One parsed request. Header names are lower-cased at parse time so
/// lookups are case-insensitive, as HTTP requires.
struct HttpRequest {
  std::string method;
  std::string target;  // as sent, query string included
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Value of `name` (must be given lower-case); empty when absent.
  std::string_view header(std::string_view name) const;
  /// Target up to the first '?'.
  std::string_view path() const;
  /// Target past the first '?'; empty when there is none.
  std::string_view query() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers (e.g. Retry-After), emitted verbatim.
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

struct HttpListenerOptions {
  /// Loopback only by default; this is an operator/service peephole, not an
  /// internet-facing tier.
  std::string bind_address = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Requests larger than this are answered 413 and dropped.
  std::size_t max_request_bytes = 8192;
  /// A connection that has not delivered a complete request within this
  /// budget is answered 408 and closed; a stalled client cannot wedge a
  /// worker forever.
  int read_deadline_ms = 2000;
  /// Connection-handling worker threads.
  int threads = 1;
  /// Accepted-fd queue bound; past it the accept thread sheds with a canned
  /// 503 instead of queueing.
  std::size_t pending_connections = 64;
  /// listen(2) backlog.
  int backlog = 16;
  /// Prefix for error messages, so throws identify their owner.
  std::string name = "http listener";
};

class HttpListener {
 public:
  using Options = HttpListenerOptions;
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpListener(Handler handler, Options options);
  ~HttpListener();
  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  /// Binds, listens and launches the accept + worker threads. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();
  /// Stops accepting, drains already-accepted connections through the
  /// handler, joins all threads and closes the socket; idempotent.
  void stop();
  bool running() const { return running_.load(); }

  /// The bound port (the kernel's pick when Options::port was 0); 0 before
  /// start().
  std::uint16_t port() const { return port_; }
  const Options& options() const { return options_; }

  /// Responses written, including 4xx/5xx synthesized by the read path.
  std::uint64_t requests_served() const { return requests_.load(); }
  /// Connections shed with a canned 503 because the fd queue was full.
  std::uint64_t connections_shed() const { return sheds_.load(); }

  static const char* status_text(int status);

 private:
  void accept_loop();
  void worker_loop();
  void handle_connection(int client_fd);
  /// Runs the handler under a root span, adopting the request's W3C
  /// `traceparent` header when present (the response carries one back).
  HttpResponse dispatch(const HttpRequest& request);
  void write_response(int client_fd, const HttpResponse& response);

  Handler handler_;
  Options options_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> sheds_{0};
};

}  // namespace auric::obs
