// Structured span tracing: RAII spans with parent/child ids recorded into a
// bounded ring buffer, dumpable as a JSONL trace journal.
//
// A span is one timed region (a launch, a push, an engine relearn, a replay
// day). Spans opened while another span is open on the same thread become
// its children, so a dumped trace reconstructs the call tree:
//
//   {"id":3,"parent":2,"name":"replay.launch","start_ns":...,"end_ns":...}
//
// Ids are assigned at span start from a per-recorder counter that clear()
// resets, so a single-threaded run produces a deterministic id sequence —
// tests assert on exact span trees. Timestamps are monotonic
// (steady_clock), measured from the recorder's epoch.
//
// The ring buffer is bounded: once full, the oldest completed span is
// overwritten and dropped() counts the loss — tracing must never grow
// memory without bound in a long operational run.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace auric::obs {

/// One completed span. parent == 0 means a root span.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  /// Small dense per-thread index (first thread to record is 1), stable for
  /// the recorder's lifetime; NOT the OS thread id.
  std::uint32_t thread = 0;
};

class ScopedSpan;

class TraceRecorder {
 public:
  /// The process-wide recorder ScopedSpan uses by default.
  static TraceRecorder& global();

  explicit TraceRecorder(std::size_t capacity = 65536);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Disabled recorders make ScopedSpan a no-op (a couple of branches).
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  std::size_t capacity() const { return capacity_; }

  /// Completed spans, oldest first (completion order).
  std::vector<SpanRecord> records() const;

  /// Spans overwritten after the ring filled.
  std::uint64_t dropped() const;

  /// One JSON object per line, oldest first:
  /// {"id":N,"parent":N,"name":"...","start_ns":N,"end_ns":N,"dur_ns":N,"thread":N}
  std::string jsonl() const;

  /// Drops all records and resets the id counter and epoch, so the next
  /// span is id 1 at t≈0 — deterministic traces for tests.
  void clear();

 private:
  friend class ScopedSpan;

  std::uint64_t next_id() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t now_ns() const;
  void record(SpanRecord&& span);

  const std::size_t capacity_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;   ///< insertion ring; size() < capacity_ until full
  std::size_t ring_head_ = 0;      ///< next overwrite position once full
  std::uint64_t dropped_ = 0;
  std::uint64_t epoch_ns_ = 0;     ///< steady-clock origin for start/end_ns
  std::uint32_t next_thread_ = 1;  ///< dense thread index allocator
};

/// Writes recorder.jsonl() to `path`; throws std::runtime_error on failure.
void write_trace_file(const TraceRecorder& recorder, const std::string& path);

/// RAII span: records [construction, destruction) into the recorder. The
/// innermost live ScopedSpan on this thread becomes the parent of any span
/// opened inside it (across recorders too — one trace context per thread).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name,
                      TraceRecorder& recorder = TraceRecorder::global());
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// 0 when the recorder was disabled at construction.
  std::uint64_t id() const { return id_; }

 private:
  TraceRecorder* recorder_ = nullptr;  ///< null when disabled
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t start_ns_ = 0;
  std::string name_;
};

}  // namespace auric::obs
