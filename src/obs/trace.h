// Structured span tracing: RAII spans with parent/child ids recorded into a
// bounded ring buffer, dumpable as a JSONL trace journal.
//
// A span is one timed region (a launch, a push, an engine relearn, a replay
// day). Spans opened while another span is open on the same thread become
// its children, so a dumped trace reconstructs the call tree:
//
//   {"id":3,"parent":2,"trace":"00..01","name":"replay.launch",...}
//
// Every span belongs to a trace (trace_context.h): the first span opened
// with no active context starts a new trace; spans opened under an adopted
// context (a pool task, a request with a traceparent header) join the
// submitter's trace. Ids are assigned at span start from per-recorder
// counters that clear() resets, so a single-threaded run produces a
// deterministic id sequence — tests assert on exact span trees. Timestamps
// are monotonic (steady_clock), measured from the recorder's epoch.
//
// The ring buffer is bounded: once full, the oldest completed span is
// overwritten and dropped() counts the loss — tracing must never grow
// memory without bound in a long operational run.
//
// Tail-based retention rides on top of the ring: while a trace is open its
// spans are buffered per trace id, and when the trace finalizes (its
// starting span closes, or a server finalizes an adopted trace) the whole
// trace is either kept — slow beyond TailOptions::min_ms, or marked as an
// error — in a second bounded ring, or discarded. Fast, healthy traces
// cost a buffered copy and nothing more; the interesting ones stay
// queryable via /tracez?trace_id= / ?min_ms= long after the live ring has
// wrapped.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/trace_context.h"

namespace auric::obs {

/// One completed span. parent == 0 means a root span (an adopted remote
/// parent id is recorded verbatim, so it may not name a local span).
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  TraceId trace;
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  /// Small dense per-thread index (first thread to record is 1), stable for
  /// the recorder's lifetime; NOT the OS thread id.
  std::uint32_t thread = 0;
};

/// One JSONL rendering shared by the live ring and the kept-trace ring.
std::string spans_jsonl(const std::vector<SpanRecord>& spans);

class ScopedSpan;

/// Tail-retention policy: which finalized traces survive into the kept
/// ring. Error-marked traces are always kept.
struct TailOptions {
  /// Keep traces at least this slow (wall-clock of the whole span tree).
  double min_ms = 100.0;
  /// Kept traces retained (oldest evicted first).
  std::size_t capacity = 64;
  /// Open traces buffered at once; beyond this the oldest pending trace is
  /// discarded unfinalized (an abandoned job's stragglers must not leak).
  std::size_t max_pending = 256;
};

/// One finalized, retained trace.
struct KeptTrace {
  TraceId trace;
  double duration_ms = 0.0;
  bool error = false;
  std::vector<SpanRecord> spans;  ///< completion order
};

class TraceRecorder {
 public:
  /// The process-wide recorder ScopedSpan uses by default.
  static TraceRecorder& global();

  explicit TraceRecorder(std::size_t capacity = 65536);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Disabled recorders make ScopedSpan a no-op (a couple of branches).
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  std::size_t capacity() const { return capacity_; }

  /// Completed spans, oldest first (completion order).
  std::vector<SpanRecord> records() const;

  /// Spans overwritten after the ring filled.
  std::uint64_t dropped() const;

  /// One JSON object per line, oldest first:
  /// {"id":N,"parent":N,"trace":"<32hex>","name":"...","start_ns":N,
  ///  "end_ns":N,"dur_ns":N,"thread":N}
  std::string jsonl() const;

  /// Drops all records (live and kept) and resets the id counters and
  /// epoch, so the next span is id 1 of trace ..01 at t≈0 — deterministic
  /// traces for tests.
  void clear();

  // --- tail-based retention ---

  void set_tail_options(const TailOptions& options);
  TailOptions tail_options() const;

  /// Flags the calling thread's current trace as an error: it will be kept
  /// at finalize regardless of duration. No-op without an active trace.
  void mark_trace_error();

  /// Decides keep/drop for a buffered trace and clears its pending state.
  /// ScopedSpan calls this automatically for traces it started; servers
  /// call it for traces adopted from a traceparent header. Unknown ids are
  /// ignored.
  void finalize_trace(const TraceId& id);

  /// Kept traces, oldest first.
  std::vector<KeptTrace> kept_traces() const;
  /// Kept traces evicted after the kept ring filled.
  std::uint64_t kept_dropped() const;

 private:
  friend class ScopedSpan;

  std::uint64_t next_id() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  TraceId new_trace_id() { return TraceId{0, next_trace_.fetch_add(1, std::memory_order_relaxed)}; }
  std::uint64_t now_ns() const;
  void record(SpanRecord&& span);

  struct PendingTrace {
    std::vector<SpanRecord> spans;
    bool error = false;
    std::uint64_t seq = 0;  ///< creation order, for bounded eviction
  };
  struct TraceIdHash {
    std::size_t operator()(const TraceId& id) const {
      return static_cast<std::size_t>(id.lo ^ (id.hi * 0x9E3779B97F4A7C15ULL));
    }
  };

  /// Appends to the pending buffer of span.trace (caller holds mu_).
  void buffer_pending(const SpanRecord& span);

  const std::size_t capacity_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> next_trace_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;   ///< insertion ring; size() < capacity_ until full
  std::size_t ring_head_ = 0;      ///< next overwrite position once full
  std::uint64_t dropped_ = 0;
  std::uint64_t epoch_ns_ = 0;     ///< steady-clock origin for start/end_ns
  std::uint32_t next_thread_ = 1;  ///< dense thread index allocator

  TailOptions tail_;
  std::unordered_map<TraceId, PendingTrace, TraceIdHash> pending_;
  std::uint64_t pending_seq_ = 0;
  std::deque<KeptTrace> kept_;
  std::uint64_t kept_dropped_ = 0;
};

/// Writes recorder.jsonl() to `path`; throws std::runtime_error on failure.
void write_trace_file(const TraceRecorder& recorder, const std::string& path);

/// Body for GET /tracez. No query: the live ring as JSONL (back-compat).
/// "trace_id=<32 hex>": every span with that trace id, from the live ring
/// and the kept ring (kept copy wins on duplicates). "min_ms=N": spans of
/// every kept trace at least that slow. Unknown ids / no matches yield an
/// empty body.
std::string tracez_text(const TraceRecorder& recorder, std::string_view query);

/// RAII span: records [construction, destruction) into the recorder. The
/// innermost live ScopedSpan on this thread becomes the parent of any span
/// opened inside it (across recorders too — one trace context per thread).
/// A span opened with no active trace starts one and finalizes it (for
/// tail retention) when it closes.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name,
                      TraceRecorder& recorder = TraceRecorder::global());
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// 0 when the recorder was disabled at construction.
  std::uint64_t id() const { return id_; }
  /// The trace this span joined (invalid when disabled).
  TraceId trace() const { return trace_; }

 private:
  TraceRecorder* recorder_ = nullptr;  ///< null when disabled
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t start_ns_ = 0;
  TraceId trace_;
  bool started_trace_ = false;  ///< this span allocated the trace id
  TraceContext prev_;           ///< context to restore at destruction
  std::string name_;
};

}  // namespace auric::obs
