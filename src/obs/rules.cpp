#include "obs/rules.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/log_buffer.h"

namespace auric::obs {

namespace {

// Splits one rule row on commas that sit outside {...} and "...".
std::vector<std::string> split_row(std::string_view line) {
  std::vector<std::string> cells;
  std::string cell;
  int brace_depth = 0;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      cell += c;
      if (c == '\\' && i + 1 < line.size()) {
        cell += line[++i];
      } else if (c == '"') {
        quoted = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        quoted = true;
        cell += c;
        break;
      case '{':
        ++brace_depth;
        cell += c;
        break;
      case '}':
        if (brace_depth > 0) {
          --brace_depth;
        }
        cell += c;
        break;
      case ',':
        if (brace_depth == 0) {
          cells.push_back(std::move(cell));
          cell.clear();
        } else {
          cell += c;
        }
        break;
      default:
        cell += c;
    }
  }
  cells.push_back(std::move(cell));
  for (std::string& c : cells) {
    while (!c.empty() && (c.front() == ' ' || c.front() == '\t')) {
      c.erase(c.begin());
    }
    while (!c.empty() && (c.back() == ' ' || c.back() == '\t' || c.back() == '\r')) {
      c.pop_back();
    }
  }
  return cells;
}

AlertRule::Kind parse_kind(const std::string& text) {
  if (text == "threshold") return AlertRule::Kind::kThreshold;
  if (text == "rate_over_window") return AlertRule::Kind::kRateOverWindow;
  if (text == "absence") return AlertRule::Kind::kAbsence;
  if (text == "burn_rate") return AlertRule::Kind::kBurnRate;
  throw std::invalid_argument("unknown rule kind '" + text + "'");
}

AlertRule::Op parse_op(const std::string& text) {
  if (text == ">" || text == "gt") return AlertRule::Op::kGt;
  if (text == ">=" || text == "ge") return AlertRule::Op::kGe;
  if (text == "<" || text == "lt") return AlertRule::Op::kLt;
  if (text == "<=" || text == "le") return AlertRule::Op::kLe;
  throw std::invalid_argument("unknown rule op '" + text + "'");
}

double parse_number(const std::string& text, const char* what) {
  try {
    std::size_t used = 0;
    double v = std::stod(text, &used);
    if (used != text.size()) {
      throw std::invalid_argument(text);
    }
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("bad ") + what + " '" + text + "'");
  }
}

// Splits a trailing `:pNN` quantile suffix (outside braces) off a threshold
// selector, returning the quantile in [0, 1] or -1 when there is none.
double strip_quantile_suffix(std::string& selector) {
  std::size_t colon = selector.rfind(':');
  if (colon == std::string::npos || colon + 2 > selector.size() || selector[colon + 1] != 'p') {
    return -1.0;
  }
  if (selector.find('}', colon) != std::string::npos) {
    return -1.0;  // the ':' sits inside a label value, not after the braces
  }
  const std::string digits = selector.substr(colon + 2);
  if (digits.empty() || digits.find_first_not_of("0123456789.") != std::string::npos) {
    throw std::invalid_argument("bad quantile suffix ':" + selector.substr(colon + 1) + "'");
  }
  double pct = parse_number(digits, "quantile");
  if (pct <= 0.0 || pct >= 100.0) {
    throw std::invalid_argument("quantile suffix must be in (p0, p100), got 'p" + digits + "'");
  }
  selector.erase(colon);
  return pct / 100.0;
}

bool compare(AlertRule::Op op, double lhs, double rhs) {
  switch (op) {
    case AlertRule::Op::kGt:
      return lhs > rhs;
    case AlertRule::Op::kGe:
      return lhs >= rhs;
    case AlertRule::Op::kLt:
      return lhs < rhs;
    case AlertRule::Op::kLe:
      return lhs <= rhs;
  }
  return false;
}

void json_escape_into(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

const char* alert_kind_name(AlertRule::Kind kind) {
  switch (kind) {
    case AlertRule::Kind::kThreshold:
      return "threshold";
    case AlertRule::Kind::kRateOverWindow:
      return "rate_over_window";
    case AlertRule::Kind::kAbsence:
      return "absence";
    case AlertRule::Kind::kBurnRate:
      return "burn_rate";
  }
  return "unknown";
}

const char* alert_op_name(AlertRule::Op op) {
  switch (op) {
    case AlertRule::Op::kGt:
      return ">";
    case AlertRule::Op::kGe:
      return ">=";
    case AlertRule::Op::kLt:
      return "<";
    case AlertRule::Op::kLe:
      return "<=";
  }
  return "?";
}

RuleEngine::RuleEngine(MetricsRegistry& registry) : registry_(&registry) {
  log_ = [](const std::string& line) {
    LogBuffer::global().append(line);
    std::fprintf(stderr, "%s\n", line.c_str());
  };
}

void RuleEngine::add_rule(const AlertRule& rule) {
  if (rule.name.empty()) {
    throw std::invalid_argument("alert rule needs a name");
  }
  if (rule.fire_for < 1 || rule.resolve_for < 1) {
    throw std::invalid_argument("alert rule '" + rule.name + "': fire_for/resolve_for must be >= 1");
  }
  if (rule.kind == AlertRule::Kind::kBurnRate) {
    if (rule.numerator.name.empty() || rule.denominator.name.empty()) {
      throw std::invalid_argument("alert rule '" + rule.name + "': burn_rate needs num/den metrics");
    }
    if (rule.long_window_s <= rule.window_s) {
      throw std::invalid_argument("alert rule '" + rule.name +
                                  "': burn_rate long window must exceed the short window");
    }
  } else if (rule.metric.name.empty()) {
    throw std::invalid_argument("alert rule '" + rule.name + "': needs a metric selector");
  }
  if (rule.quantile >= 0 && rule.kind != AlertRule::Kind::kThreshold) {
    throw std::invalid_argument("alert rule '" + rule.name +
                                "': a quantile suffix is only valid on threshold rules");
  }
  if (rule.quantile >= 1.0) {
    throw std::invalid_argument("alert rule '" + rule.name + "': quantile must be < 1");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const RuleState& state : states_) {
    if (state.rule.name == rule.name) {
      throw std::invalid_argument("duplicate alert rule name '" + rule.name + "'");
    }
  }
  RuleState state;
  state.rule = rule;
  states_.push_back(std::move(state));
  // Pre-register the firing gauge so a healthy run still exports the rule.
  registry_->gauge("obs_alerts_firing", "1 while the named alert rule is firing",
                   {{"rule", rule.name}});
}

std::size_t RuleEngine::load_text(std::string_view text, std::string_view origin) {
  std::size_t added = 0;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    std::string_view trimmed = line;
    while (!trimmed.empty() && (trimmed.front() == ' ' || trimmed.front() == '\t')) {
      trimmed.remove_prefix(1);
    }
    while (!trimmed.empty() &&
           (trimmed.back() == ' ' || trimmed.back() == '\t' || trimmed.back() == '\r')) {
      trimmed.remove_suffix(1);
    }
    if (trimmed.empty() || trimmed.front() == '#') {
      continue;
    }
    std::vector<std::string> cells = split_row(trimmed);
    if (cells[0] == "name") {  // header row
      continue;
    }
    try {
      if (cells.size() < 5) {
        throw std::invalid_argument("need at least name,kind,metric,op,value");
      }
      AlertRule rule;
      rule.name = cells[0];
      rule.kind = parse_kind(cells[1]);
      if (rule.kind == AlertRule::Kind::kBurnRate) {
        // Split "num/den" on the first '/' outside braces.
        const std::string& m = cells[2];
        int depth = 0;
        std::size_t slash = std::string::npos;
        for (std::size_t i = 0; i < m.size(); ++i) {
          if (m[i] == '{') ++depth;
          else if (m[i] == '}') --depth;
          else if (m[i] == '/' && depth == 0) {
            slash = i;
            break;
          }
        }
        if (slash == std::string::npos) {
          throw std::invalid_argument("burn_rate metric must be 'num/den'");
        }
        rule.numerator = SeriesSelector::parse(std::string_view(m).substr(0, slash));
        rule.denominator = SeriesSelector::parse(std::string_view(m).substr(slash + 1));
      } else {
        std::string selector = cells[2];
        rule.quantile = strip_quantile_suffix(selector);
        rule.metric = SeriesSelector::parse(selector);
      }
      rule.op = parse_op(cells[3]);
      rule.value = parse_number(cells[4], "value");
      if (cells.size() > 5 && !cells[5].empty()) {
        rule.window_s = parse_number(cells[5], "window_s");
      }
      if (cells.size() > 6 && !cells[6].empty()) {
        rule.long_window_s = parse_number(cells[6], "long_window_s");
      }
      if (cells.size() > 7 && !cells[7].empty()) {
        rule.fire_for = static_cast<int>(parse_number(cells[7], "fire_for"));
      }
      if (cells.size() > 8 && !cells[8].empty()) {
        rule.resolve_for = static_cast<int>(parse_number(cells[8], "resolve_for"));
      }
      add_rule(rule);
      ++added;
    } catch (const std::invalid_argument& e) {
      std::ostringstream msg;
      msg << origin << ":" << line_no << ": " << e.what();
      throw std::invalid_argument(msg.str());
    }
  }
  return added;
}

std::size_t RuleEngine::load_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("cannot open rules file: " + path);
  }
  std::ostringstream buf;
  buf << file.rdbuf();
  return load_text(buf.str(), path);
}

void RuleEngine::set_log(std::function<void(const std::string&)> log) {
  std::lock_guard<std::mutex> lock(mu_);
  log_ = std::move(log);
}

bool RuleEngine::breached(const RuleState& state, const Sampler& sampler,
                          std::optional<double>* out) const {
  const AlertRule& rule = state.rule;
  switch (rule.kind) {
    case AlertRule::Kind::kThreshold: {
      std::optional<double> v = rule.quantile >= 0 ? sampler.quantile(rule.metric, rule.quantile)
                                                   : sampler.value(rule.metric);
      *out = v;
      return v && compare(rule.op, *v, rule.value);
    }
    case AlertRule::Kind::kRateOverWindow: {
      std::optional<double> r = sampler.rate(rule.metric, rule.window_s);
      *out = r;
      return r && compare(rule.op, *r, rule.value);
    }
    case AlertRule::Kind::kAbsence: {
      std::optional<double> v = sampler.value(rule.metric);
      *out = v;
      return !v.has_value();
    }
    case AlertRule::Kind::kBurnRate: {
      // Two-window burn rate: the error ratio must breach over BOTH the
      // short and the long window. The short window makes firing fast, the
      // long window keeps a brief spike from firing at all.
      std::optional<double> num_s = sampler.rate(rule.numerator, rule.window_s);
      std::optional<double> den_s = sampler.rate(rule.denominator, rule.window_s);
      std::optional<double> num_l = sampler.rate(rule.numerator, rule.long_window_s);
      std::optional<double> den_l = sampler.rate(rule.denominator, rule.long_window_s);
      if (!num_s || !den_s || !num_l || !den_l || *den_s <= 0 || *den_l <= 0) {
        out->reset();
        return false;
      }
      double ratio_s = *num_s / *den_s;
      double ratio_l = *num_l / *den_l;
      *out = ratio_s;
      return compare(rule.op, ratio_s, rule.value) && compare(rule.op, ratio_l, rule.value);
    }
  }
  out->reset();
  return false;
}

void RuleEngine::evaluate(const Sampler& sampler, double t) {
  std::vector<std::string> transitions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++evaluations_;
    last_t_ = t;
    for (RuleState& state : states_) {
      std::optional<double> scalar;
      bool breach = breached(state, sampler, &scalar);
      state.last_value = scalar;
      if (breach) {
        ++state.breach_streak;
        state.ok_streak = 0;
      } else {
        ++state.ok_streak;
        state.breach_streak = 0;
      }
      if (!state.firing && state.breach_streak >= state.rule.fire_for) {
        state.firing = true;
        state.firing_since = t;
        ++state.times_fired;
        registry_->gauge("obs_alerts_firing", "", {{"rule", state.rule.name}}).set(1.0);
        registry_->counter("obs_alert_transitions_total", "alert firing/resolve transitions",
                           {{"rule", state.rule.name}, {"to", "firing"}})
            .inc();
        std::ostringstream msg;
        msg << "ALERT firing: " << state.rule.name << " (" << alert_kind_name(state.rule.kind)
            << " " << alert_op_name(state.rule.op) << " " << format_double(state.rule.value)
            << ", value=" << (scalar ? format_double(*scalar) : std::string("absent"))
            << ", t=" << format_double(t) << ")";
        transitions.push_back(msg.str());
      } else if (state.firing && state.ok_streak >= state.rule.resolve_for) {
        state.firing = false;
        registry_->gauge("obs_alerts_firing", "", {{"rule", state.rule.name}}).set(0.0);
        registry_->counter("obs_alert_transitions_total", "alert firing/resolve transitions",
                           {{"rule", state.rule.name}, {"to", "resolved"}})
            .inc();
        std::ostringstream msg;
        msg << "ALERT resolved: " << state.rule.name << " (t=" << format_double(t) << ")";
        transitions.push_back(msg.str());
      }
    }
  }
  // Log outside the lock; the logger may itself take locks (LogBuffer).
  if (log_) {
    for (const std::string& line : transitions) {
      log_(line);
    }
  }
}

bool RuleEngine::healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const RuleState& state : states_) {
    if (state.firing) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> RuleEngine::firing() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const RuleState& state : states_) {
    if (state.firing) {
      out.push_back(state.rule.name);
    }
  }
  return out;
}

std::vector<RuleState> RuleEngine::states() const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_;
}

std::size_t RuleEngine::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_.size();
}

std::uint64_t RuleEngine::evaluations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluations_;
}

std::string RuleEngine::healthz_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"status\":\"";
  bool any_firing = false;
  for (const RuleState& state : states_) {
    any_firing = any_firing || state.firing;
  }
  out += any_firing ? "alerting" : "ok";
  out += "\",\"rules\":" + std::to_string(states_.size());
  out += ",\"evaluations\":" + std::to_string(evaluations_);
  out += ",\"firing\":[";
  bool first = true;
  for (const RuleState& state : states_) {
    if (!state.firing) {
      continue;
    }
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"rule\":\"";
    json_escape_into(out, state.rule.name);
    out += "\",\"kind\":\"";
    out += alert_kind_name(state.rule.kind);
    out += "\",\"since\":" + format_double(state.firing_since);
    out += ",\"value\":";
    out += state.last_value ? format_double(*state.last_value) : "null";
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace auric::obs
