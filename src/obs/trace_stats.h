// Offline latency attribution over recorded traces.
//
// The trace ring answers "what happened"; this module answers "where did
// the time go". It folds span JSONL (the --trace-out / /tracez format) into
// the two views an engineer triaging a slow replay day or a slow /recommend
// actually wants:
//
//   per-name totals   for every span name: how often it ran, total wall
//                     time, and SELF time (total minus time covered by its
//                     children) — self time is what points at real code,
//                     total time points at the widest box.
//   critical paths    for every root span: the chain root -> last-finishing
//                     child -> ... that bounds the end-to-end latency. Work
//                     off the critical path can be slow for free; work on
//                     it is the latency.
//
// Backs the `auric tracestats` CLI subcommand. Parsing targets the span
// format spans_jsonl() emits; unknown lines (e.g. the {"trace":...}
// headers of /tracez?min_ms=) are skipped, so tracestats consumes either
// endpoint's output unfiltered.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace auric::obs {

struct TraceStatsOptions {
  /// When non-empty, critical paths are rooted at every span with exactly
  /// this name (e.g. "replay.day" for per-day paths even though days nest
  /// under "replay.run"). Empty roots paths at the trace roots.
  std::string root;
  /// Rows kept per section (by self time / by path duration). 0 = all.
  std::size_t top = 20;
};

/// Aggregate for one span name across every trace in the input.
struct SpanNameStat {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  /// Total minus the duration covered by direct children, clamped at zero
  /// per span (parallel children can legitimately out-sum their parent).
  double self_ms = 0.0;
};

/// The critical path under one root span: the chain built by repeatedly
/// descending into the last-finishing child.
struct CriticalPath {
  std::string trace;  ///< 32-hex trace id
  std::string path;   ///< span names joined with '>'
  double dur_ms = 0.0;
};

struct TraceStatsReport {
  std::vector<SpanNameStat> by_name;     ///< sorted by self_ms descending
  std::vector<CriticalPath> paths;       ///< sorted by dur_ms descending
  std::uint64_t spans = 0;               ///< span lines parsed
  std::uint64_t skipped_lines = 0;       ///< non-span lines ignored
};

/// Parses span JSONL and computes both views. Tolerant of junk: lines that
/// do not parse as spans are counted in skipped_lines, never fatal.
TraceStatsReport compute_trace_stats(std::string_view jsonl,
                                     const TraceStatsOptions& options = {});

/// CSV rendering: header `kind,trace,name,count,total_ms,self_ms`, then one
/// `name` row per span name and one `critical` row per root path.
std::string trace_stats_csv(const TraceStatsReport& report);

}  // namespace auric::obs
