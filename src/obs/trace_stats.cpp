#include "obs/trace_stats.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <unordered_map>

namespace auric::obs {

namespace {

/// One parsed span line.
struct ParsedSpan {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string trace;
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

/// Extracts the unsigned integer following `"key":` in `line`.
std::optional<std::uint64_t> field_u64(std::string_view line, std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle += '"';
  needle += key;
  needle += "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::size_t i = pos + needle.size();
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return std::nullopt;
  std::uint64_t value = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(line[i] - '0');
    ++i;
  }
  return value;
}

/// Extracts (and unescapes) the string following `"key":"` in `line`.
std::optional<std::string> field_string(std::string_view line, std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 4);
  needle += '"';
  needle += key;
  needle += "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = pos + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return out;
    if (c == '\\' && i + 1 < line.size()) {
      const char next = line[++i];
      switch (next) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default: out += next;
      }
      continue;
    }
    out += c;
  }
  return std::nullopt;  // unterminated string
}

std::optional<ParsedSpan> parse_span_line(std::string_view line) {
  ParsedSpan span;
  const auto id = field_u64(line, "id");
  const auto start = field_u64(line, "start_ns");
  const auto end = field_u64(line, "end_ns");
  const auto name = field_string(line, "name");
  if (!id.has_value() || !start.has_value() || !end.has_value() || !name.has_value()) {
    return std::nullopt;
  }
  span.id = *id;
  span.parent = field_u64(line, "parent").value_or(0);
  span.trace = field_string(line, "trace").value_or("");
  span.name = *name;
  span.start_ns = *start;
  span.end_ns = *end < *start ? *start : *end;
  return span;
}

double to_ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

std::string format_ms(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

/// Quotes a CSV cell (span names may contain commas or quotes).
std::string csv_quote(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TraceStatsReport compute_trace_stats(std::string_view jsonl, const TraceStatsOptions& options) {
  TraceStatsReport report;

  // Group spans by trace id; spans with no trace field land in one bucket
  // keyed "" (old recordings) and still get name stats.
  std::map<std::string, std::vector<ParsedSpan>> traces;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    std::size_t eol = jsonl.find('\n', pos);
    if (eol == std::string_view::npos) eol = jsonl.size();
    const std::string_view line = jsonl.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::optional<ParsedSpan> span = parse_span_line(line);
    if (!span.has_value()) {
      ++report.skipped_lines;
      continue;
    }
    ++report.spans;
    traces[span->trace].push_back(*span);
  }

  std::map<std::string, SpanNameStat> by_name;
  for (auto& [trace_id, spans] : traces) {
    // Children indexed by parent id, within one trace only — span ids are
    // recorder-global, but parent links never cross a trace.
    std::unordered_map<std::uint64_t, std::vector<const ParsedSpan*>> children;
    std::unordered_map<std::uint64_t, const ParsedSpan*> by_id;
    for (const ParsedSpan& s : spans) by_id[s.id] = &s;
    for (const ParsedSpan& s : spans) {
      if (s.parent != 0 && by_id.count(s.parent) != 0) children[s.parent].push_back(&s);
    }

    for (const ParsedSpan& s : spans) {
      SpanNameStat& stat = by_name[s.name];
      stat.name = s.name;
      ++stat.count;
      const double total = to_ms(s.end_ns - s.start_ns);
      stat.total_ms += total;
      double child_ms = 0.0;
      const auto kids = children.find(s.id);
      if (kids != children.end()) {
        for (const ParsedSpan* c : kids->second) child_ms += to_ms(c->end_ns - c->start_ns);
      }
      stat.self_ms += std::max(0.0, total - child_ms);
    }

    // Roots: parentless spans, or spans whose parent is outside this
    // recording (a server span adopted from a remote traceparent). With
    // options.root set, any span of that name roots a path instead — so
    // "replay.day" works even though days sit under a "replay.run" span.
    for (const ParsedSpan& s : spans) {
      const bool root = options.root.empty()
                            ? s.parent == 0 || by_id.count(s.parent) == 0
                            : s.name == options.root;
      if (!root) continue;
      CriticalPath path;
      path.trace = trace_id;
      path.dur_ms = to_ms(s.end_ns - s.start_ns);
      // Descend into the last-finishing child at every level: that child
      // bounds when the parent could finish, so the chain is the critical
      // path under the "parent waits for children" execution model.
      const ParsedSpan* cur = &s;
      path.path = cur->name;
      while (true) {
        const auto kids = children.find(cur->id);
        if (kids == children.end() || kids->second.empty()) break;
        const ParsedSpan* last = kids->second.front();
        for (const ParsedSpan* c : kids->second) {
          if (c->end_ns > last->end_ns) last = c;
        }
        cur = last;
        path.path += '>';
        path.path += cur->name;
      }
      report.paths.push_back(std::move(path));
    }
  }

  report.by_name.reserve(by_name.size());
  for (auto& [name, stat] : by_name) report.by_name.push_back(std::move(stat));
  std::sort(report.by_name.begin(), report.by_name.end(),
            [](const SpanNameStat& a, const SpanNameStat& b) {
              if (a.self_ms != b.self_ms) return a.self_ms > b.self_ms;
              return a.name < b.name;
            });
  std::sort(report.paths.begin(), report.paths.end(),
            [](const CriticalPath& a, const CriticalPath& b) {
              if (a.dur_ms != b.dur_ms) return a.dur_ms > b.dur_ms;
              if (a.trace != b.trace) return a.trace < b.trace;
              return a.path < b.path;
            });
  if (options.top != 0) {
    if (report.by_name.size() > options.top) report.by_name.resize(options.top);
    if (report.paths.size() > options.top) report.paths.resize(options.top);
  }
  return report;
}

std::string trace_stats_csv(const TraceStatsReport& report) {
  std::string out = "kind,trace,name,count,total_ms,self_ms\n";
  for (const SpanNameStat& stat : report.by_name) {
    out += "name,," + csv_quote(stat.name) + "," + std::to_string(stat.count) + "," +
           format_ms(stat.total_ms) + "," + format_ms(stat.self_ms) + "\n";
  }
  for (const CriticalPath& path : report.paths) {
    out += "critical," + path.trace + "," + csv_quote(path.path) + ",1," +
           format_ms(path.dur_ms) + ",0.000\n";
  }
  return out;
}

}  // namespace auric::obs
