#include "obs/log_buffer.h"

namespace auric::obs {

LogBuffer::LogBuffer(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

LogBuffer& LogBuffer::global() {
  static LogBuffer* buffer = new LogBuffer();  // never destroyed
  return *buffer;
}

void LogBuffer::append(std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(line));
    return;
  }
  ring_[head_] = std::move(line);
  head_ = (head_ + 1) % capacity_;
}

std::vector<std::string> LogBuffer::tail() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string LogBuffer::text() const {
  std::string out;
  for (const std::string& line : tail()) {
    out += line;
    out += '\n';
  }
  return out;
}

std::uint64_t LogBuffer::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void LogBuffer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

}  // namespace auric::obs
