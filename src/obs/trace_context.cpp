#include "obs/trace_context.h"

#include <cstdio>

namespace auric::obs {

namespace {

/// One context per thread, shared by every recorder (a thread is in at most
/// one trace at a time).
thread_local TraceContext t_context;

/// -1 on a non-hex character.
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Parses exactly `hex.size()` hex chars into v; false on garbage.
bool parse_hex_u64(std::string_view hex, std::uint64_t& v) {
  v = 0;
  for (char c : hex) {
    const int d = hex_value(c);
    if (d < 0) return false;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return true;
}

}  // namespace

std::string trace_id_hex(const TraceId& id) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx", static_cast<unsigned long long>(id.hi),
                static_cast<unsigned long long>(id.lo));
  return buf;
}

std::optional<TraceId> parse_trace_id_hex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  TraceId id;
  if (!parse_hex_u64(hex.substr(0, 16), id.hi) || !parse_hex_u64(hex.substr(16, 16), id.lo)) {
    return std::nullopt;
  }
  if (!id.valid()) return std::nullopt;
  return id;
}

TraceContext current_trace_context() { return t_context; }

void set_current_trace_context(const TraceContext& ctx) { t_context = ctx; }

std::optional<Traceparent> parse_traceparent(std::string_view header) {
  // version-00 layout: 2 + 1 + 32 + 1 + 16 + 1 + 2 = 55 chars. Future
  // versions may append "-extra"; anything shorter is truncated.
  if (header.size() < 55) return std::nullopt;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') return std::nullopt;
  std::uint64_t version = 0;
  if (!parse_hex_u64(header.substr(0, 2), version)) return std::nullopt;
  if (version == 0xff) return std::nullopt;  // reserved, invalid per spec
  if (version == 0 && header.size() != 55) return std::nullopt;
  if (version != 0 && header.size() > 55 && header[55] != '-') return std::nullopt;

  Traceparent out;
  const std::optional<TraceId> tid = parse_trace_id_hex(header.substr(3, 32));
  if (!tid.has_value()) return std::nullopt;
  out.trace_id = *tid;
  if (!parse_hex_u64(header.substr(36, 16), out.parent_span)) return std::nullopt;
  if (out.parent_span == 0) return std::nullopt;  // all-zero parent-id invalid
  std::uint64_t flags = 0;
  if (!parse_hex_u64(header.substr(53, 2), flags)) return std::nullopt;
  out.flags = static_cast<std::uint8_t>(flags);
  return out;
}

std::string format_traceparent(const TraceId& trace_id, std::uint64_t span_id,
                               std::uint8_t flags) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "00-%016llx%016llx-%016llx-%02x",
                static_cast<unsigned long long>(trace_id.hi),
                static_cast<unsigned long long>(trace_id.lo),
                static_cast<unsigned long long>(span_id), flags);
  return buf;
}

}  // namespace auric::obs
