// Declarative SLO alert rules evaluated against the Sampler ring.
//
// §6 of the paper gates launches on KPI degradation after the fact; the live
// plane needs the complementary signal — "is the pipeline healthy RIGHT NOW"
// — cheap enough to evaluate every sample tick. A RuleEngine holds a small
// set of declarative rules, each reducing one Sampler-derived scalar to a
// breach bit per tick, with firing/resolve hysteresis so a single noisy tick
// neither pages nor un-pages:
//
//   threshold         value(metric)  OP  bound          (gauges, counters)
//   rate_over_window  rate(metric, window_s)  OP  bound
//   absence           metric missing from the newest snapshot
//   burn_rate         rate(num)/rate(den) OP bound over BOTH a short and a
//                     long window (multi-window burn rate: fast to fire on
//                     real regressions, refuses to fire on blips)
//
// Rules load from a small CSV dialect (see load_text). Transitions are
// logged and mirrored into the registry (obs_alerts_firing{rule=...}), and
// the aggregate verdict backs GET /healthz: 200 iff nothing is firing.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/sampler.h"

namespace auric::obs {

struct AlertRule {
  enum class Kind { kThreshold, kRateOverWindow, kAbsence, kBurnRate };
  enum class Op { kGt, kGe, kLt, kLe };

  std::string name;
  Kind kind = Kind::kThreshold;
  /// threshold / rate_over_window / absence operand.
  SeriesSelector metric;
  /// burn_rate operands (the rule CSV writes them as "num/den").
  SeriesSelector numerator;
  SeriesSelector denominator;
  Op op = Op::kGt;
  double value = 0.0;
  /// Threshold rules may target a histogram quantile instead of a plain
  /// value: a `:pNN` suffix on the metric selector (the sampler's
  /// series_csv column naming, e.g. `auric_serve_latency_ms{...}:p99`)
  /// sets this to NN/100 and the rule evaluates Sampler::quantile().
  /// < 0 (the default) keeps the plain Sampler::value() scalar. An empty
  /// histogram yields no scalar, so the rule cannot fire before traffic.
  double quantile = -1.0;
  /// Trailing window for rate_over_window and the burn-rate short window.
  double window_s = 60.0;
  /// Burn-rate long window; must exceed window_s.
  double long_window_s = 0.0;
  /// Consecutive breaching ticks before the alert fires (>= 1).
  int fire_for = 1;
  /// Consecutive clean ticks before a firing alert resolves (>= 1).
  int resolve_for = 1;
};

const char* alert_kind_name(AlertRule::Kind kind);
const char* alert_op_name(AlertRule::Op op);

/// Per-rule evaluation state, exported for /healthz and tests.
struct RuleState {
  AlertRule rule;
  bool firing = false;
  int breach_streak = 0;   ///< consecutive breaching ticks so far
  int ok_streak = 0;       ///< consecutive clean ticks so far
  std::optional<double> last_value;  ///< scalar from the latest evaluation
  double firing_since = 0.0;         ///< tick time of the current firing episode
  std::uint64_t times_fired = 0;     ///< resolved→firing transitions, ever
};

class RuleEngine {
 public:
  explicit RuleEngine(MetricsRegistry& registry = MetricsRegistry::global());
  RuleEngine(const RuleEngine&) = delete;
  RuleEngine& operator=(const RuleEngine&) = delete;

  void add_rule(const AlertRule& rule);

  /// Loads rules from the CSV dialect:
  ///
  ///   # comment lines and blank lines are skipped; an optional header row
  ///   # (first cell "name") is skipped too.
  ///   name,kind,metric,op,value,window_s,long_window_s,fire_for,resolve_for
  ///
  /// `kind` is threshold | rate_over_window | absence | burn_rate; `metric`
  /// is a series selector (burn_rate writes "num/den" — the '/' is split
  /// outside braces; threshold selectors accept a `:p50`/`:p90`/`:p99`
  /// histogram-quantile suffix); `op` is > >= < <= (or gt ge lt le); trailing empty
  /// cells fall back to defaults (window 60 s, fire_for/resolve_for 1).
  /// Commas inside {...} or "..." do not split cells. Returns the number of
  /// rules added; throws std::invalid_argument with line context on a
  /// malformed row.
  std::size_t load_text(std::string_view text, std::string_view origin = "<inline>");

  /// load_text() over a file; throws std::runtime_error when unreadable.
  std::size_t load_file(const std::string& path);

  /// Replaces the transition logger (default: the obs log ring + stderr).
  void set_log(std::function<void(const std::string&)> log);

  /// Evaluates every rule against the sampler at tick time `t` — wire as
  /// `sampler.set_on_tick([&](double t){ engine.evaluate(sampler, t); })`.
  void evaluate(const Sampler& sampler, double t);

  /// True when no rule is firing.
  bool healthy() const;
  /// Names of currently firing rules.
  std::vector<std::string> firing() const;
  std::vector<RuleState> states() const;
  std::size_t size() const;
  std::uint64_t evaluations() const;

  /// GET /healthz body: {"status":"ok"|"alerting","firing":[...],...}.
  std::string healthz_json() const;

 private:
  bool breached(const RuleState& state, const Sampler& sampler, std::optional<double>* out) const;

  MetricsRegistry* registry_;
  mutable std::mutex mu_;
  std::vector<RuleState> states_;
  std::uint64_t evaluations_ = 0;
  double last_t_ = 0.0;
  std::function<void(const std::string&)> log_;
};

}  // namespace auric::obs
