// Bounded in-memory tail of emitted log lines.
//
// Long operational runs (a two-month replay, a sharded launch stream) emit
// their WARN/ERROR context to stderr, which is useless once the terminal
// scrolls away or the process runs under a supervisor. This ring keeps the
// last N formatted lines so the live plane can expose them at GET /logz —
// the same "recent context without shelling into files" role kubelet's
// /logs and Envoy's admin tail play.
//
// Sits in obs (std-library only) so util::log can append into it without a
// layering inversion: obs is BELOW util, and the MetricsServer — also obs —
// reads the ring directly.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace auric::obs {

class LogBuffer {
 public:
  /// Keeps the most recent `capacity` lines (default matches the /logz
  /// contract: the last 256).
  explicit LogBuffer(std::size_t capacity = 256);
  LogBuffer(const LogBuffer&) = delete;
  LogBuffer& operator=(const LogBuffer&) = delete;

  /// The process-wide ring util::log feeds.
  static LogBuffer& global();

  /// Appends one line (no trailing newline expected); the oldest line is
  /// evicted once the ring is full.
  void append(std::string line);

  std::size_t capacity() const { return capacity_; }

  /// Lines currently retained, oldest first.
  std::vector<std::string> tail() const;

  /// tail() joined with '\n' (trailing newline included when non-empty) —
  /// the GET /logz response body.
  std::string text() const;

  /// Lines ever appended (>= tail().size(); the difference is what the ring
  /// evicted).
  std::uint64_t total_appended() const;

  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::string> ring_;  ///< size() < capacity_ until full
  std::size_t head_ = 0;           ///< next overwrite position once full
  std::uint64_t total_ = 0;
};

}  // namespace auric::obs
