// One-stop live plane: sampler + rule engine + HTTP endpoint, wired.
//
// Every long-running entry point (replay, benches, the CLI subcommands)
// wants the same bundle: a Sampler ticking in the background, a RuleEngine
// evaluated on every tick, a MetricsServer exposing /metrics /healthz /varz
// /tracez /logz, and — at shutdown — the sampled series dumped as CSV.
// LivePlane owns that composition so call sites hold one object and one
// options struct instead of re-plumbing four.
//
// start() order matters and is encapsulated here: the rule engine loads
// before the sampler starts (rules see every tick), the pre-tick hook
// refreshes derived gauges (trace-ring drops) so they appear IN each
// snapshot, and the server starts last so a scrape never observes a
// half-wired plane.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "obs/rules.h"
#include "obs/sampler.h"
#include "obs/server.h"

namespace auric::obs {

struct LivePlaneOptions {
  /// Master switch; when false start() is a no-op and active() stays false.
  bool serve = false;
  /// HTTP port (0 = ephemeral; see LivePlane::port()).
  std::uint16_t port = 0;
  /// Sampler cadence; <= 0 disables the background tick thread (manual
  /// tick() only — deterministic tests).
  double sample_interval_ms = 100.0;
  /// Snapshots retained in the ring.
  std::size_t sample_capacity = 600;
  /// Alert rules file (the CSV dialect in rules.h); empty = no rules, and
  /// /healthz reports ok while the process is alive.
  std::string rules_file;
  /// Where stop() writes the sampled series CSV; empty = no dump.
  std::string series_out;
  /// Where the whole-run CPU profile (flamegraph-collapsed stacks) is
  /// written at exit; empty = no profiling. Managed by util::LivePlaneScope
  /// (works with or without `serve`); silently inactive when the profiler
  /// is compiled out (sanitizer builds).
  std::string profile_out;
  /// Where the span JSONL (the `auric tracestats` input) is written at
  /// exit; empty = no dump. Managed by util::LivePlaneScope, like
  /// profile_out.
  std::string trace_out;
};

class LivePlane {
 public:
  explicit LivePlane(LivePlaneOptions options = {},
                     MetricsRegistry& registry = MetricsRegistry::global());
  ~LivePlane();
  LivePlane(const LivePlane&) = delete;
  LivePlane& operator=(const LivePlane&) = delete;

  /// Loads rules, starts the sampler thread and the HTTP server. Throws on
  /// unreadable rules or an unbindable port. No-op when !options.serve or
  /// already active.
  void start();

  /// Stops the server and sampler and writes series_out (when set); the
  /// destructor calls this. Safe to call twice.
  void stop();

  bool active() const { return active_; }
  /// The bound HTTP port; 0 when inactive.
  std::uint16_t port() const;

  /// Components, for tests and manual driving (tick(), extra rules).
  /// Null when inactive.
  Sampler* sampler() { return sampler_.get(); }
  RuleEngine* rules() { return rules_.get(); }
  MetricsServer* server() { return server_.get(); }

  const LivePlaneOptions& options() const { return options_; }

 private:
  LivePlaneOptions options_;
  MetricsRegistry* registry_;
  std::unique_ptr<Sampler> sampler_;
  std::unique_ptr<RuleEngine> rules_;
  std::unique_ptr<MetricsServer> server_;
  bool active_ = false;
};

}  // namespace auric::obs
