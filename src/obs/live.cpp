#include "obs/live.h"

#include "obs/log_buffer.h"
#include "obs/trace.h"

namespace auric::obs {

LivePlane::LivePlane(LivePlaneOptions options, MetricsRegistry& registry)
    : options_(std::move(options)), registry_(&registry) {}

LivePlane::~LivePlane() { stop(); }

void LivePlane::start() {
  if (!options_.serve || active_) {
    return;
  }
  Sampler::Options sampler_options;
  sampler_options.capacity = options_.sample_capacity;
  sampler_options.interval_ms = options_.sample_interval_ms;
  sampler_ = std::make_unique<Sampler>(*registry_, sampler_options);

  rules_ = std::make_unique<RuleEngine>(*registry_);
  if (!options_.rules_file.empty()) {
    rules_->load_file(options_.rules_file);
  }

  // Derived gauges refresh just before each snapshot so every sample (and
  // every rule evaluation) sees current values.
  Gauge& trace_drops = registry_->gauge(
      "obs_trace_ring_dropped", "spans overwritten after the trace ring filled");
  sampler_->set_pre_tick([&trace_drops] {
    trace_drops.set(static_cast<double>(TraceRecorder::global().dropped()));
  });
  RuleEngine* rules = rules_.get();
  Sampler* sampler = sampler_.get();
  sampler_->set_on_tick([rules, sampler](double t) { rules->evaluate(*sampler, t); });

  MetricsServer::Options server_options;
  server_options.port = options_.port;
  server_ = std::make_unique<MetricsServer>(*registry_, server_options);
  server_->set_rule_engine(rules_.get());
  server_->set_trace_recorder(&TraceRecorder::global());
  server_->set_log_buffer(&LogBuffer::global());

  sampler_->start();
  server_->start();
  active_ = true;
}

void LivePlane::stop() {
  if (!active_) {
    return;
  }
  server_->stop();
  sampler_->stop();
  // A final tick captures the end state in the series (the background
  // cadence may not have sampled since the last increment). Guarded: with a
  // manual-only sampler the caller may have driven non-wall-clock times.
  if (options_.series_out.empty() == false) {
    double next_t = sampler_->last_time().value_or(0.0) + 1e-3;
    sampler_->tick(next_t);
    sampler_->write_series_csv(options_.series_out);
  }
  active_ = false;
}

std::uint16_t LivePlane::port() const { return active_ ? server_->port() : 0; }

}  // namespace auric::obs
