// Periodic registry sampler: a bounded ring of timestamped snapshots with
// rate / last-value / quantile derivations over a trailing window.
//
// The metrics registry answers "how many, ever"; operations needs "how fast,
// right now". The Sampler scrapes MetricsRegistry::snapshot() on a cadence
// (a background thread, or manual tick(t) calls for deterministic tests) and
// keeps the last N snapshots, from which it derives
//
//   rate()      counter increase per second over a trailing window,
//   value()     last value of a counter/gauge (summed across label matches),
//   quantile()  p50/p90/p99 of a histogram via histogram_quantile(),
//
// all addressed by a SeriesSelector ("name{label=\"v\"}") — the same scalar
// the RuleEngine's alert rules reference. series_csv() dumps the whole ring
// as one wide CSV (a column per derived scalar) for EXPERIMENTS plots.
//
// Thread-safety: tick()/derivations take one mutex; the optional on-tick
// hook runs after the lock is released so it can call back into the
// derivations (the RuleEngine does exactly that).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace auric::obs {

/// One timestamped snapshot in the ring. `t` is seconds on the sampler's
/// own axis: wall-cadence ticks use seconds since start(); manual ticks use
/// whatever the caller injects (strictly increasing).
struct SamplePoint {
  double t = 0.0;
  std::vector<MetricSample> samples;  ///< sorted by (name, labels)
};

/// Addresses one scalar series: a metric name plus labels that must all
/// match (a subset match — samples may carry extra labels). Parsed from
/// `name` or `name{key="value",...}`.
struct SeriesSelector {
  std::string name;
  Labels labels;

  /// Throws std::invalid_argument on malformed syntax.
  static SeriesSelector parse(std::string_view text);

  /// True when `sample` is named `name` and carries every selector label.
  bool matches(const MetricSample& sample) const;

  std::string str() const;
};

struct SamplerOptions {
  /// Snapshots retained (default one minute of ring at the default
  /// 100 ms cadence).
  std::size_t capacity = 600;
  /// Background cadence for start(); <= 0 disables the thread.
  double interval_ms = 100.0;
};

class Sampler {
 public:
  using Options = SamplerOptions;

  explicit Sampler(const MetricsRegistry& registry = MetricsRegistry::global(),
                   Options options = {});
  ~Sampler();
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  const Options& options() const { return options_; }

  /// Takes one snapshot at time `t` (seconds, strictly increasing; a
  /// non-increasing t throws std::invalid_argument). Deterministic driver
  /// for tests and single-threaded callers.
  void tick(double t);

  /// Injects a prebuilt snapshot instead of scraping the registry — unit
  /// tests drive the rate/quantile math with hand-computed fixtures.
  void tick_with(double t, std::vector<MetricSample> samples);

  /// Hooks run around every tick (manual or background): pre fires before
  /// the snapshot is taken (refresh derived gauges so they are IN the
  /// snapshot), post fires after the ring is updated, outside the lock.
  void set_pre_tick(std::function<void()> hook);
  void set_on_tick(std::function<void(double t)> hook);

  /// Starts the background thread (no-op when interval_ms <= 0 or already
  /// running); stop() joins it. The destructor stops implicitly.
  void start();
  void stop();
  bool running() const;

  std::size_t size() const;
  std::uint64_t ticks() const;
  /// Time of the newest snapshot; nullopt when the ring is empty.
  std::optional<double> last_time() const;

  /// Last value of the selected series, summed over matching samples
  /// (counters report their cumulative count, gauges their level).
  std::optional<double> value(const SeriesSelector& selector) const;

  /// Counter increase per second over the trailing `window_s`, measured
  /// between the newest snapshot and the oldest snapshot inside the window
  /// (falling back to the immediately preceding snapshot when the window
  /// holds only the newest one). Needs >= 2 snapshots; counter resets clamp
  /// to 0 rather than reporting a negative rate.
  std::optional<double> rate(const SeriesSelector& selector, double window_s) const;

  /// histogram_quantile() of the first matching histogram in the newest
  /// snapshot.
  std::optional<double> quantile(const SeriesSelector& selector, double q) const;

  /// The ring, oldest first.
  std::vector<SamplePoint> points() const;

  /// Wide CSV: one row per snapshot, a `t_s` column plus, per series seen
  /// anywhere in the ring, `name{labels}` (counter/gauge value) and — for
  /// histograms — `:count`, `:p50`, `:p90`, `:p99` columns. Counters also
  /// get a `:rate` column (per-second increase vs. the previous snapshot).
  /// Header cells are CSV-quoted (label sets contain commas).
  std::string series_csv() const;

  /// Writes series_csv() to `path`; throws std::runtime_error on failure.
  void write_series_csv(const std::string& path) const;

  void clear();

 private:
  void append(double t, std::vector<MetricSample> samples);
  void run_loop();

  const MetricsRegistry* registry_;
  Options options_;

  mutable std::mutex mu_;
  std::vector<SamplePoint> ring_;  ///< size() < capacity until full
  std::size_t head_ = 0;           ///< next overwrite position once full
  std::uint64_t ticks_ = 0;
  std::function<void()> pre_tick_;
  std::function<void(double)> on_tick_;

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
};

}  // namespace auric::obs
