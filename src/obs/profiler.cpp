#include "obs/profiler.h"

// Decide at compile time whether the real profiler can exist. Sanitizer
// runtimes intercept signals and instrument stack walks; interrupting them
// with backtrace() from a handler is undefined, so those builds get the
// stub. CMake also sets AURIC_PROFILER_DISABLED for AURIC_SANITIZE builds
// (belt and suspenders — compiler feature macros differ across toolchains).
#if !defined(AURIC_PROFILER_DISABLED)
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define AURIC_PROFILER_DISABLED 1
#endif
#endif
#endif
#if !defined(AURIC_PROFILER_DISABLED)
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define AURIC_PROFILER_DISABLED 1
#endif
#endif

#if !defined(AURIC_PROFILER_DISABLED) && defined(__linux__)
#define AURIC_PROFILER_ACTIVE 1
#endif

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#ifdef AURIC_PROFILER_ACTIVE
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <sys/time.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#endif

#include "obs/metrics.h"

namespace auric::obs {

namespace {

#ifdef AURIC_PROFILER_ACTIVE

constexpr int kMaxFrames = 64;

/// One raw stack captured in the signal handler. Slots are preallocated by
/// start() and claimed with a single fetch_add — the handler never
/// allocates.
struct RawSample {
  int depth = 0;
  void* frames[kMaxFrames];
};

/// Handler-visible state. g_samples doubles as the "armed" flag: the
/// handler bails when it is null, so stop() disarms by nulling it before
/// tearing anything else down.
std::atomic<RawSample*> g_samples{nullptr};
std::atomic<std::size_t> g_next{0};
std::size_t g_capacity = 0;

void on_sigprof(int, siginfo_t*, void*) {
  RawSample* samples = g_samples.load(std::memory_order_acquire);
  if (samples == nullptr) return;
  const std::size_t i = g_next.fetch_add(1, std::memory_order_relaxed);
  if (i >= g_capacity) return;  // counted as dropped at stop()
  samples[i].depth = backtrace(samples[i].frames, kMaxFrames);
}

/// Best-effort frame symbolization (dladdr + demangle); addresses without a
/// dynamic symbol render as hex. Executables must link with
/// CMAKE_ENABLE_EXPORTS (-rdynamic) for their own functions to resolve.
std::string frame_name(void* addr, std::map<void*, std::string>& memo) {
  const auto it = memo.find(addr);
  if (it != memo.end()) return it->second;
  std::string name;
  Dl_info info;
  if (dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    // The folded format reserves ';' as the frame separator and the final
    // ' ' before the count; scrub both out of demangled names.
    for (char& c : name) {
      if (c == ';') c = ':';
      if (c == ' ') c = '_';
    }
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%zx", reinterpret_cast<std::size_t>(addr));
    name = buf;
  }
  memo.emplace(addr, name);
  return name;
}

struct ProfilerState {
  std::mutex mu;
  bool running = false;
  std::vector<RawSample> slots;
  struct sigaction old_action {};
  struct itimerval old_timer {};
};

ProfilerState& state() {
  static ProfilerState* s = new ProfilerState();  // never destroyed
  return *s;
}

#endif  // AURIC_PROFILER_ACTIVE

/// Samples-collected counter, resolved once. Bumped at stop() — the
/// handler cannot touch the registry.
Counter& samples_counter() {
  static Counter& counter = MetricsRegistry::global().counter(
      "auric_profiler_samples_total", "stack samples collected by the in-process profiler");
  return counter;
}

}  // namespace

bool Profiler::supported() {
#ifdef AURIC_PROFILER_ACTIVE
  return true;
#else
  return false;
#endif
}

Profiler& Profiler::global() {
  static Profiler* profiler = new Profiler();  // never destroyed
  return *profiler;
}

bool Profiler::running() const {
#ifdef AURIC_PROFILER_ACTIVE
  ProfilerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.running;
#else
  return false;
#endif
}

bool Profiler::start(const ProfileOptions& options) {
#ifndef AURIC_PROFILER_ACTIVE
  (void)options;
  return false;
#else
  ProfilerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.running) return false;

  const int hz = std::min(1000, std::max(1, options.hz));
  const std::size_t capacity = std::max<std::size_t>(64, options.max_samples);
  s.slots.assign(capacity, RawSample{});
  g_capacity = capacity;
  g_next.store(0, std::memory_order_relaxed);

  // Prime backtrace()'s lazy libgcc initialization outside signal context;
  // the first call may allocate and dlopen, which a handler must not do.
  void* prime[4];
  backtrace(prime, 4);

  g_samples.store(s.slots.data(), std::memory_order_release);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = on_sigprof;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, &s.old_action) != 0) {
    g_samples.store(nullptr, std::memory_order_release);
    return false;
  }

  struct itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  timer.it_interval.tv_usec = static_cast<suseconds_t>(1000000 / hz);
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, &s.old_timer) != 0) {
    sigaction(SIGPROF, &s.old_action, nullptr);
    g_samples.store(nullptr, std::memory_order_release);
    return false;
  }
  s.running = true;
  return true;
#endif
}

ProfileReport Profiler::stop() {
  ProfileReport report;
#ifdef AURIC_PROFILER_ACTIVE
  ProfilerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.running) return report;

  struct itimerval off;
  std::memset(&off, 0, sizeof(off));
  setitimer(ITIMER_PROF, &off, nullptr);
  sigaction(SIGPROF, &s.old_action, nullptr);
  setitimer(ITIMER_PROF, &s.old_timer, nullptr);
  g_samples.store(nullptr, std::memory_order_release);
  s.running = false;
  // A handler that loaded the slot pointer just before the disarm may still
  // be writing; give it a moment before reading the slots.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));

  const std::size_t hits = g_next.load(std::memory_order_relaxed);
  const std::size_t n = std::min(hits, g_capacity);
  report.samples = n;
  report.dropped = hits > g_capacity ? hits - g_capacity : 0;
  samples_counter().inc(n);

  // Fold: aggregate identical stacks, outermost frame first. The innermost
  // two frames are the handler itself and the kernel's signal trampoline;
  // skip them when the stack is deep enough to contain real work below.
  std::map<void*, std::string> memo;
  std::map<std::string, std::uint64_t> folded;
  for (std::size_t i = 0; i < n; ++i) {
    const RawSample& sample = s.slots[i];
    if (sample.depth <= 0) continue;
    const int skip = sample.depth > 2 ? 2 : 0;
    std::string key;
    for (int f = sample.depth - 1; f >= skip; --f) {
      if (!key.empty()) key += ';';
      key += frame_name(sample.frames[f], memo);
    }
    if (!key.empty()) ++folded[key];
  }
  for (const auto& [stack, count] : folded) {
    report.folded += stack;
    report.folded += ' ';
    report.folded += std::to_string(count);
    report.folded += '\n';
  }
#else
  (void)samples_counter();
#endif
  return report;
}

ProfileReport profile_process(int duration_ms, const ProfileOptions& options) {
  Profiler& profiler = Profiler::global();
  if (!profiler.start(options)) return {};
  std::this_thread::sleep_for(std::chrono::milliseconds(std::max(0, duration_ms)));
  return profiler.stop();
}

}  // namespace auric::obs
