#include "obs/sampler.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>

namespace auric::obs {

namespace {

// Renders a label set the way selectors are written: {k="v",k2="v2"}.
std::string labels_text(const Labels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += key;
    out += "=\"";
    out += value;
    out += '"';
  }
  out += '}';
  return out;
}

// CSV-quotes a cell when it contains a comma, quote, or newline.
std::string csv_cell(const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) {
    return text;
  }
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

SeriesSelector SeriesSelector::parse(std::string_view text) {
  SeriesSelector out;
  std::size_t brace = text.find('{');
  std::string_view name_part = brace == std::string_view::npos ? text : text.substr(0, brace);
  // Trim surrounding whitespace from the metric name.
  while (!name_part.empty() && std::isspace(static_cast<unsigned char>(name_part.front()))) {
    name_part.remove_prefix(1);
  }
  while (!name_part.empty() && std::isspace(static_cast<unsigned char>(name_part.back()))) {
    name_part.remove_suffix(1);
  }
  if (name_part.empty()) {
    throw std::invalid_argument("series selector has no metric name: '" + std::string(text) + "'");
  }
  out.name = std::string(name_part);
  if (brace == std::string_view::npos) {
    return out;
  }
  if (text.back() != '}') {
    throw std::invalid_argument("series selector missing closing '}': '" + std::string(text) + "'");
  }
  std::string_view body = text.substr(brace + 1, text.size() - brace - 2);
  std::size_t pos = 0;
  while (pos < body.size()) {
    while (pos < body.size() && (std::isspace(static_cast<unsigned char>(body[pos])) || body[pos] == ',')) {
      ++pos;
    }
    if (pos >= body.size()) {
      break;
    }
    std::size_t eq = body.find('=', pos);
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("series selector label missing '=': '" + std::string(text) + "'");
    }
    std::string key(body.substr(pos, eq - pos));
    while (!key.empty() && std::isspace(static_cast<unsigned char>(key.back()))) {
      key.pop_back();
    }
    if (key.empty()) {
      throw std::invalid_argument("series selector has empty label key: '" + std::string(text) + "'");
    }
    pos = eq + 1;
    while (pos < body.size() && std::isspace(static_cast<unsigned char>(body[pos]))) {
      ++pos;
    }
    if (pos >= body.size() || body[pos] != '"') {
      throw std::invalid_argument("series selector label value must be quoted: '" + std::string(text) +
                                  "'");
    }
    ++pos;
    std::string value;
    bool closed = false;
    while (pos < body.size()) {
      char c = body[pos++];
      if (c == '\\' && pos < body.size()) {
        value += body[pos++];
        continue;
      }
      if (c == '"') {
        closed = true;
        break;
      }
      value += c;
    }
    if (!closed) {
      throw std::invalid_argument("series selector label value unterminated: '" + std::string(text) +
                                  "'");
    }
    out.labels.emplace_back(std::move(key), std::move(value));
  }
  std::sort(out.labels.begin(), out.labels.end());
  return out;
}

bool SeriesSelector::matches(const MetricSample& sample) const {
  if (sample.name != name) {
    return false;
  }
  for (const auto& want : labels) {
    bool found = false;
    for (const auto& have : sample.labels) {
      if (have.first == want.first) {
        if (have.second != want.second) {
          return false;
        }
        found = true;
        break;
      }
    }
    if (!found) {
      return false;
    }
  }
  return true;
}

std::string SeriesSelector::str() const { return name + labels_text(labels); }

Sampler::Sampler(const MetricsRegistry& registry, Options options)
    : registry_(&registry), options_(options) {
  if (options_.capacity == 0) {
    options_.capacity = 1;
  }
}

Sampler::~Sampler() { stop(); }

void Sampler::tick(double t) {
  if (pre_tick_) {
    pre_tick_();
  }
  append(t, registry_->snapshot());
  if (on_tick_) {
    on_tick_(t);
  }
}

void Sampler::tick_with(double t, std::vector<MetricSample> samples) {
  if (pre_tick_) {
    pre_tick_();
  }
  append(t, std::move(samples));
  if (on_tick_) {
    on_tick_(t);
  }
}

void Sampler::set_pre_tick(std::function<void()> hook) { pre_tick_ = std::move(hook); }

void Sampler::set_on_tick(std::function<void(double)> hook) { on_tick_ = std::move(hook); }

void Sampler::start() {
  if (options_.interval_ms <= 0 || running_.load()) {
    return;
  }
  stop_requested_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { run_loop(); });
}

void Sampler::stop() {
  stop_requested_.store(true);
  if (thread_.joinable()) {
    thread_.join();
  }
  running_.store(false);
}

bool Sampler::running() const { return running_.load(); }

void Sampler::run_loop() {
  const auto start = std::chrono::steady_clock::now();
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(options_.interval_ms));
  auto next = start + interval;
  while (!stop_requested_.load()) {
    std::this_thread::sleep_until(next);
    if (stop_requested_.load()) {
      break;
    }
    double t = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    tick(t);
    next += interval;
    // A stall longer than one interval resynchronizes instead of burst-firing
    // catch-up ticks.
    auto now = std::chrono::steady_clock::now();
    if (next < now) {
      next = now + interval;
    }
  }
  running_.store(false);
}

void Sampler::append(double t, std::vector<MetricSample> samples) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ring_.empty()) {
    const SamplePoint& newest =
        ring_.size() < options_.capacity ? ring_.back() : ring_[(head_ + ring_.size() - 1) % ring_.size()];
    if (t <= newest.t) {
      throw std::invalid_argument("sampler tick time must be strictly increasing");
    }
  }
  ++ticks_;
  SamplePoint point{t, std::move(samples)};
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(point));
    return;
  }
  ring_[head_] = std::move(point);
  head_ = (head_ + 1) % ring_.size();
}

std::size_t Sampler::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t Sampler::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

std::optional<double> Sampler::last_time() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) {
    return std::nullopt;
  }
  const SamplePoint& newest =
      ring_.size() < options_.capacity ? ring_.back() : ring_[(head_ + ring_.size() - 1) % ring_.size()];
  return newest.t;
}

namespace {

// Sums the selected scalar (counter count / gauge level) in one snapshot;
// nullopt when nothing matches.
std::optional<double> scalar_in(const SamplePoint& point, const SeriesSelector& selector) {
  bool any = false;
  double total = 0.0;
  for (const MetricSample& sample : point.samples) {
    if (sample.kind == MetricSample::Kind::kHistogram || !selector.matches(sample)) {
      continue;
    }
    any = true;
    total += sample.value;
  }
  if (any) {
    return total;
  }
  return std::nullopt;
}

}  // namespace

std::vector<SamplePoint> Sampler::points() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SamplePoint> out;
  out.reserve(ring_.size());
  if (ring_.size() < options_.capacity) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
  }
  return out;
}

std::optional<double> Sampler::value(const SeriesSelector& selector) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) {
    return std::nullopt;
  }
  const SamplePoint& newest =
      ring_.size() < options_.capacity ? ring_.back() : ring_[(head_ + ring_.size() - 1) % ring_.size()];
  return scalar_in(newest, selector);
}

std::optional<double> Sampler::rate(const SeriesSelector& selector, double window_s) const {
  // Walks the ring in place: rate() runs on every rule-engine tick, and
  // copying 600 snapshots per call is the difference between a negligible
  // and a noticeable sampling plane.
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = ring_.size();
  if (n < 2 || window_s <= 0) {
    return std::nullopt;
  }
  const bool full = n >= options_.capacity;
  const auto at = [&](std::size_t i) -> const SamplePoint& {
    return full ? ring_[(head_ + i) % n] : ring_[i];
  };
  const SamplePoint& newest = at(n - 1);
  // Oldest snapshot still inside [newest.t - window_s, newest.t); fall back
  // to the immediately preceding snapshot when the window is narrower than
  // one sampling interval. The ring is time-ordered oldest first, so the
  // first point inside the window is the oldest one.
  const SamplePoint* oldest = &at(n - 2);
  for (std::size_t i = 0; i < n; ++i) {
    const SamplePoint& p = at(i);
    if (p.t >= newest.t - window_s && p.t < newest.t) {
      oldest = &p;
      break;
    }
  }
  std::optional<double> v_new = scalar_in(newest, selector);
  std::optional<double> v_old = scalar_in(*oldest, selector);
  if (!v_new || !v_old) {
    return std::nullopt;
  }
  double dt = newest.t - oldest->t;
  if (dt <= 0) {
    return std::nullopt;
  }
  return std::max(0.0, (*v_new - *v_old) / dt);
}

std::optional<double> Sampler::quantile(const SeriesSelector& selector, double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) {
    return std::nullopt;
  }
  const SamplePoint& newest =
      ring_.size() < options_.capacity ? ring_.back() : ring_[(head_ + ring_.size() - 1) % ring_.size()];
  for (const MetricSample& sample : newest.samples) {
    if (sample.kind != MetricSample::Kind::kHistogram || !selector.matches(sample)) {
      continue;
    }
    double v = histogram_quantile(sample, q);
    if (v != v) {  // NaN: histogram exists but has no observations yet
      return std::nullopt;
    }
    return v;
  }
  return std::nullopt;
}

std::string Sampler::series_csv() const {
  std::vector<SamplePoint> pts = points();

  // Column plan: every (name, labels) series seen anywhere in the ring, in
  // sorted order. Counters get value + :rate, gauges value, histograms
  // :count/:p50/:p90/:p99.
  struct SeriesInfo {
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
  };
  std::map<std::string, SeriesInfo> series;
  for (const SamplePoint& p : pts) {
    for (const MetricSample& s : p.samples) {
      series.emplace(s.name + labels_text(s.labels), SeriesInfo{s.kind});
    }
  }

  std::string out = "t_s";
  for (const auto& [key, info] : series) {
    switch (info.kind) {
      case MetricSample::Kind::kCounter:
        out += ',' + csv_cell(key);
        out += ',' + csv_cell(key + ":rate");
        break;
      case MetricSample::Kind::kGauge:
        out += ',' + csv_cell(key);
        break;
      case MetricSample::Kind::kHistogram:
        out += ',' + csv_cell(key + ":count");
        out += ',' + csv_cell(key + ":p50");
        out += ',' + csv_cell(key + ":p90");
        out += ',' + csv_cell(key + ":p99");
        break;
    }
  }
  out += '\n';

  // Previous-row values for the counter :rate columns.
  std::map<std::string, double> prev;
  double prev_t = 0.0;
  bool have_prev = false;
  for (const SamplePoint& p : pts) {
    std::map<std::string, const MetricSample*> row;
    for (const MetricSample& s : p.samples) {
      row[s.name + labels_text(s.labels)] = &s;
    }
    out += format_double(p.t);
    for (const auto& [key, info] : series) {
      auto it = row.find(key);
      const MetricSample* s = it == row.end() ? nullptr : it->second;
      switch (info.kind) {
        case MetricSample::Kind::kCounter: {
          out += ',';
          if (s != nullptr) {
            out += format_double(s->value);
          }
          out += ',';
          if (s != nullptr && have_prev && p.t > prev_t) {
            auto pit = prev.find(key);
            if (pit != prev.end()) {
              out += format_double(std::max(0.0, (s->value - pit->second) / (p.t - prev_t)));
            }
          }
          break;
        }
        case MetricSample::Kind::kGauge:
          out += ',';
          if (s != nullptr) {
            out += format_double(s->value);
          }
          break;
        case MetricSample::Kind::kHistogram: {
          out += ',';
          if (s != nullptr) {
            out += format_double(static_cast<double>(s->count));
          }
          for (double q : {0.5, 0.9, 0.99}) {
            out += ',';
            if (s != nullptr && s->count > 0) {
              out += format_double(histogram_quantile(*s, q));
            }
          }
          break;
        }
      }
    }
    out += '\n';
    prev.clear();
    for (const auto& [key, sample] : row) {
      if (sample->kind != MetricSample::Kind::kHistogram) {
        prev[key] = sample->value;
      }
    }
    prev_t = p.t;
    have_prev = true;
  }
  return out;
}

void Sampler::write_series_csv(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw std::runtime_error("cannot open series csv for writing: " + path);
  }
  file << series_csv();
  if (!file.good()) {
    throw std::runtime_error("failed writing series csv: " + path);
  }
}

void Sampler::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  ticks_ = 0;
}

}  // namespace auric::obs
