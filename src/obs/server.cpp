#include "obs/server.h"

#include "obs/log_buffer.h"
#include "obs/profiler.h"
#include "obs/rules.h"
#include "obs/trace.h"

namespace auric::obs {

namespace {

/// Value of `key` in an HTTP query string ("a=1&b=2"), or empty.
std::string_view query_param(std::string_view query, std::string_view key) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    std::string_view pair = amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{} : query.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
  }
  return {};
}

}  // namespace

std::string profilez_text(std::string_view query, int* status) {
  *status = 200;
  if (!Profiler::supported()) {
    *status = 501;
    return "profiler unavailable in this build (sanitizer or unsupported platform)\n";
  }
  int seconds = 1;
  const std::string_view raw = query_param(query, "seconds");
  if (!raw.empty()) {
    try {
      seconds = std::stoi(std::string(raw));
    } catch (const std::exception&) {
      *status = 400;
      return "bad seconds parameter\n";
    }
  }
  seconds = seconds < 1 ? 1 : (seconds > 30 ? 30 : seconds);
  const ProfileReport report = profile_process(seconds * 1000);
  if (report.samples == 0 && report.folded.empty() && Profiler::global().running()) {
    *status = 409;
    return "a profile is already running\n";
  }
  std::string out = "# samples=" + std::to_string(report.samples) +
                    " dropped=" + std::to_string(report.dropped) + "\n";
  out += report.folded;
  return out;
}

MetricsServer::MetricsServer(const MetricsRegistry& registry, Options options)
    : registry_(&registry), options_(std::move(options)) {}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::start() {
  if (running()) {
    return;
  }
  HttpListenerOptions lopts;
  lopts.bind_address = options_.bind_address;
  lopts.port = options_.port;
  lopts.max_request_bytes = options_.max_request_bytes;
  lopts.name = "metrics server";
  listener_ = std::make_unique<HttpListener>(
      [this](const HttpRequest& request) {
        Response r = handle(request.method, request.target);
        return HttpResponse{r.status, std::move(r.content_type), std::move(r.body), {}};
      },
      std::move(lopts));
  try {
    listener_->start();
  } catch (...) {
    listener_.reset();
    throw;
  }
}

void MetricsServer::stop() {
  if (listener_ != nullptr) {
    listener_->stop();
  }
}

void MetricsServer::set_json_source(std::string path, std::function<std::string()> source) {
  std::lock_guard<std::mutex> lock(extra_mu_);
  if (source) {
    extra_[std::move(path)] = std::move(source);
  } else {
    extra_.erase(path);
  }
}

MetricsServer::Response MetricsServer::handle(std::string_view method,
                                              std::string_view target) const {
  if (method != "GET") {
    return {405, "text/plain; charset=utf-8", "only GET is supported\n"};
  }
  // Split the query string off; /tracez and /profilez take parameters, the
  // rest ignore them.
  std::string_view query;
  const std::size_t qpos = target.find('?');
  if (qpos != std::string_view::npos) {
    query = target.substr(qpos + 1);
    target = target.substr(0, qpos);
  }
  if (target == "/metrics") {
    return {200, "text/plain; version=0.0.4; charset=utf-8", registry_->prometheus_text()};
  }
  if (target == "/varz") {
    return {200, "application/json", registry_->json_text()};
  }
  if (target == "/healthz") {
    if (rules_ == nullptr) {
      // No rule engine wired: alive == healthy.
      return {200, "application/json", "{\"status\":\"ok\",\"rules\":0,\"firing\":[]}"};
    }
    return {rules_->healthy() ? 200 : 503, "application/json", rules_->healthz_json()};
  }
  if (target == "/tracez") {
    if (traces_ == nullptr) {
      return {404, "text/plain; charset=utf-8", "tracing not wired\n"};
    }
    return {200, "application/x-ndjson", tracez_text(*traces_, query)};
  }
  if (target == "/profilez") {
    int status = 200;
    std::string body = profilez_text(query, &status);
    return {status, "text/plain; charset=utf-8", std::move(body)};
  }
  if (target == "/logz") {
    if (logs_ == nullptr) {
      return {404, "text/plain; charset=utf-8", "log buffer not wired\n"};
    }
    return {200, "text/plain; charset=utf-8", logs_->text()};
  }
  if (target == "/" || target.empty()) {
    std::string index = "auric live plane\n/metrics /healthz /varz /tracez /logz /profilez";
    {
      std::lock_guard<std::mutex> lock(extra_mu_);
      for (const auto& [path, source] : extra_) index += " " + path;
    }
    index += "\n";
    return {200, "text/plain; charset=utf-8", std::move(index)};
  }
  {
    // Auxiliary endpoints (e.g. /modelz): copy the source out under the
    // lock, render outside it so a slow source never blocks registration.
    std::function<std::string()> source;
    {
      std::lock_guard<std::mutex> lock(extra_mu_);
      const auto it = extra_.find(target);
      if (it != extra_.end()) source = it->second;
    }
    if (source) {
      return {200, "application/json", source()};
    }
  }
  return {404, "text/plain; charset=utf-8", "unknown endpoint\n"};
}

}  // namespace auric::obs
