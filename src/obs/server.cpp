#include "obs/server.h"

#include "obs/log_buffer.h"
#include "obs/rules.h"
#include "obs/trace.h"

namespace auric::obs {

MetricsServer::MetricsServer(const MetricsRegistry& registry, Options options)
    : registry_(&registry), options_(std::move(options)) {}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::start() {
  if (running()) {
    return;
  }
  HttpListenerOptions lopts;
  lopts.bind_address = options_.bind_address;
  lopts.port = options_.port;
  lopts.max_request_bytes = options_.max_request_bytes;
  lopts.name = "metrics server";
  listener_ = std::make_unique<HttpListener>(
      [this](const HttpRequest& request) {
        Response r = handle(request.method, request.target);
        return HttpResponse{r.status, std::move(r.content_type), std::move(r.body), {}};
      },
      std::move(lopts));
  try {
    listener_->start();
  } catch (...) {
    listener_.reset();
    throw;
  }
}

void MetricsServer::stop() {
  if (listener_ != nullptr) {
    listener_->stop();
  }
}

MetricsServer::Response MetricsServer::handle(std::string_view method,
                                              std::string_view target) const {
  if (method != "GET") {
    return {405, "text/plain; charset=utf-8", "only GET is supported\n"};
  }
  // Strip any query string; endpoints take no parameters.
  std::size_t query = target.find('?');
  if (query != std::string_view::npos) {
    target = target.substr(0, query);
  }
  if (target == "/metrics") {
    return {200, "text/plain; version=0.0.4; charset=utf-8", registry_->prometheus_text()};
  }
  if (target == "/varz") {
    return {200, "application/json", registry_->json_text()};
  }
  if (target == "/healthz") {
    if (rules_ == nullptr) {
      // No rule engine wired: alive == healthy.
      return {200, "application/json", "{\"status\":\"ok\",\"rules\":0,\"firing\":[]}"};
    }
    return {rules_->healthy() ? 200 : 503, "application/json", rules_->healthz_json()};
  }
  if (target == "/tracez") {
    if (traces_ == nullptr) {
      return {404, "text/plain; charset=utf-8", "tracing not wired\n"};
    }
    return {200, "application/x-ndjson", traces_->jsonl()};
  }
  if (target == "/logz") {
    if (logs_ == nullptr) {
      return {404, "text/plain; charset=utf-8", "log buffer not wired\n"};
    }
    return {200, "text/plain; charset=utf-8", logs_->text()};
  }
  if (target == "/" || target.empty()) {
    return {200, "text/plain; charset=utf-8",
            "auric live plane\n/metrics /healthz /varz /tracez /logz\n"};
  }
  return {404, "text/plain; charset=utf-8", "unknown endpoint\n"};
}

}  // namespace auric::obs
