#include "obs/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/log_buffer.h"
#include "obs/rules.h"
#include "obs/trace.h"

namespace auric::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

// Writes the whole buffer, riding out EINTR and short writes.
void write_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // peer went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

MetricsServer::MetricsServer(const MetricsRegistry& registry, Options options)
    : registry_(&registry), options_(std::move(options)) {}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::start() {
  if (running_.load()) {
    return;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("metrics server: socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("metrics server: bad bind address: " + options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("metrics server: bind(") + options_.bind_address + ":" +
                             std::to_string(options_.port) + "): " + std::strerror(err));
  }
  if (::listen(fd, 16) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("metrics server: listen(): ") + std::strerror(err));
  }
  // Recover the kernel's pick when an ephemeral port was requested.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("metrics server: getsockname(): ") + std::strerror(err));
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  stop_requested_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { serve_loop(); });
}

void MetricsServer::stop() {
  stop_requested_.store(true);
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false);
}

void MetricsServer::serve_loop() {
  while (!stop_requested_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) {
      continue;  // timeout (re-check stop flag) or EINTR
    }
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      continue;
    }
    handle_connection(client);
    ::close(client);
  }
  running_.store(false);
}

void MetricsServer::handle_connection(int client_fd) {
  // A stalled client must not wedge the serve loop.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buf[1024];
  bool complete = false;
  bool oversize = false;
  while (!complete) {
    ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      break;  // timeout, error, or close before the header ended
    }
    request.append(buf, static_cast<std::size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find('\n') != std::string::npos) {
      // The request line is all the routing needs; headers may still be in
      // flight but GET carries no body worth waiting for.
      complete = true;
    }
    if (request.size() > options_.max_request_bytes) {
      oversize = true;
      break;
    }
  }

  Response response;
  if (oversize) {
    response = {413, "text/plain; charset=utf-8", "request too large\n"};
  } else if (!complete || request.empty()) {
    response = {400, "text/plain; charset=utf-8", "malformed request\n"};
  } else {
    // Parse "METHOD SP TARGET SP HTTP/x.y" from the first line.
    std::size_t eol = request.find('\n');
    std::string_view line(request.data(), eol == std::string::npos ? request.size() : eol);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    std::size_t sp1 = line.find(' ');
    std::size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        line.substr(sp2 + 1).substr(0, 5) != "HTTP/") {
      response = {400, "text/plain; charset=utf-8", "malformed request line\n"};
    } else {
      response = handle(line.substr(0, sp1), line.substr(sp1 + 1, sp2 - sp1 - 1));
    }
  }

  requests_.fetch_add(1, std::memory_order_relaxed);

  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     status_text(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " + std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  write_all(client_fd, head.data(), head.size());
  write_all(client_fd, response.body.data(), response.body.size());
}

MetricsServer::Response MetricsServer::handle(std::string_view method,
                                              std::string_view target) const {
  if (method != "GET") {
    return {405, "text/plain; charset=utf-8", "only GET is supported\n"};
  }
  // Strip any query string; endpoints take no parameters.
  std::size_t query = target.find('?');
  if (query != std::string_view::npos) {
    target = target.substr(0, query);
  }
  if (target == "/metrics") {
    return {200, "text/plain; version=0.0.4; charset=utf-8", registry_->prometheus_text()};
  }
  if (target == "/varz") {
    return {200, "application/json", registry_->json_text()};
  }
  if (target == "/healthz") {
    if (rules_ == nullptr) {
      // No rule engine wired: alive == healthy.
      return {200, "application/json", "{\"status\":\"ok\",\"rules\":0,\"firing\":[]}"};
    }
    return {rules_->healthy() ? 200 : 503, "application/json", rules_->healthz_json()};
  }
  if (target == "/tracez") {
    if (traces_ == nullptr) {
      return {404, "text/plain; charset=utf-8", "tracing not wired\n"};
    }
    return {200, "application/x-ndjson", traces_->jsonl()};
  }
  if (target == "/logz") {
    if (logs_ == nullptr) {
      return {404, "text/plain; charset=utf-8", "log buffer not wired\n"};
    }
    return {200, "text/plain; charset=utf-8", logs_->text()};
  }
  if (target == "/" || target.empty()) {
    return {200, "text/plain; charset=utf-8",
            "auric live plane\n/metrics /healthz /varz /tracez /logz\n"};
  }
  return {404, "text/plain; charset=utf-8", "unknown endpoint\n"};
}

}  // namespace auric::obs
