#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

namespace auric::obs {

namespace {

/// Dense per-(recorder-agnostic) thread index; assigned on first span.
thread_local std::uint32_t t_thread_index = 0;

/// Escapes a span name for embedding in a JSON string literal.
std::string json_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// Value of `key` in an HTTP query string ("a=1&b=2"), or empty.
std::string_view query_param(std::string_view query, std::string_view key) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    std::string_view pair = amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{} : query.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
  }
  return {};
}

}  // namespace

std::string spans_jsonl(const std::vector<SpanRecord>& spans) {
  std::string out;
  for (const SpanRecord& s : spans) {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":%llu,\"parent\":%llu,\"trace\":\"%s\",\"name\":\"%s\","
                  "\"start_ns\":%llu,\"end_ns\":%llu,\"dur_ns\":%llu,\"thread\":%u}\n",
                  static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent), trace_id_hex(s.trace).c_str(),
                  json_escape(s.name).c_str(), static_cast<unsigned long long>(s.start_ns),
                  static_cast<unsigned long long>(s.end_ns),
                  static_cast<unsigned long long>(s.end_ns - s.start_ns), s.thread);
    out += buf;
  }
  return out;
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_ns_(steady_now_ns()) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

std::uint64_t TraceRecorder::now_ns() const { return steady_now_ns() - epoch_ns_; }

void TraceRecorder::buffer_pending(const SpanRecord& span) {
  if (!span.trace.valid()) return;
  auto it = pending_.find(span.trace);
  if (it == pending_.end()) {
    if (pending_.size() >= tail_.max_pending) {
      // Bound the open-trace buffer: evict the oldest pending trace
      // unfinalized. Stragglers of an abandoned job land here and must not
      // grow memory without bound.
      auto oldest = pending_.begin();
      for (auto p = pending_.begin(); p != pending_.end(); ++p) {
        if (p->second.seq < oldest->second.seq) oldest = p;
      }
      pending_.erase(oldest);
    }
    it = pending_.emplace(span.trace, PendingTrace{}).first;
    it->second.seq = ++pending_seq_;
  }
  it->second.spans.push_back(span);
}

void TraceRecorder::record(SpanRecord&& span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (span.thread == 0) {
    if (t_thread_index == 0) t_thread_index = next_thread_++;
    span.thread = t_thread_index;
  }
  buffer_pending(span);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[ring_head_] = std::move(span);
  ring_head_ = (ring_head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<SpanRecord> TraceRecorder::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string TraceRecorder::jsonl() const { return spans_jsonl(records()); }

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ring_head_ = 0;
  dropped_ = 0;
  next_id_.store(1, std::memory_order_relaxed);
  next_trace_.store(1, std::memory_order_relaxed);
  epoch_ns_ = steady_now_ns();
  pending_.clear();
  pending_seq_ = 0;
  kept_.clear();
  kept_dropped_ = 0;
}

void TraceRecorder::set_tail_options(const TailOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  tail_ = options;
  if (tail_.capacity == 0) tail_.capacity = 1;
  if (tail_.max_pending == 0) tail_.max_pending = 1;
}

TailOptions TraceRecorder::tail_options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tail_;
}

void TraceRecorder::mark_trace_error() {
  const TraceContext ctx = current_trace_context();
  if (!ctx.trace_id.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(ctx.trace_id);
  if (it == pending_.end()) {
    it = pending_.emplace(ctx.trace_id, PendingTrace{}).first;
    it->second.seq = ++pending_seq_;
  }
  it->second.error = true;
}

void TraceRecorder::finalize_trace(const TraceId& id) {
  if (!id.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  PendingTrace trace = std::move(it->second);
  pending_.erase(it);
  if (trace.spans.empty()) return;
  std::uint64_t start = trace.spans.front().start_ns;
  std::uint64_t end = trace.spans.front().end_ns;
  for (const SpanRecord& s : trace.spans) {
    start = std::min(start, s.start_ns);
    end = std::max(end, s.end_ns);
  }
  const double duration_ms = static_cast<double>(end - start) / 1e6;
  if (!trace.error && duration_ms < tail_.min_ms) return;
  KeptTrace kept;
  kept.trace = id;
  kept.duration_ms = duration_ms;
  kept.error = trace.error;
  kept.spans = std::move(trace.spans);
  kept_.push_back(std::move(kept));
  while (kept_.size() > tail_.capacity) {
    kept_.pop_front();
    ++kept_dropped_;
  }
}

std::vector<KeptTrace> TraceRecorder::kept_traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {kept_.begin(), kept_.end()};
}

std::uint64_t TraceRecorder::kept_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kept_dropped_;
}

void write_trace_file(const TraceRecorder& recorder, const std::string& path) {
  const std::string text = recorder.jsonl();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("obs: cannot open '" + path + "' for writing");
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (written != text.size() || rc != 0) {
    throw std::runtime_error("obs: short write to '" + path + "'");
  }
}

std::string tracez_text(const TraceRecorder& recorder, std::string_view query) {
  const std::string_view wanted_id = query_param(query, "trace_id");
  const std::string_view min_ms_raw = query_param(query, "min_ms");
  if (!wanted_id.empty()) {
    const std::optional<TraceId> id = parse_trace_id_hex(wanted_id);
    if (!id.has_value()) return {};
    // Kept copy first (it has the complete trace); fill holes from the live
    // ring for traces still open or never finalized.
    std::vector<SpanRecord> spans;
    for (const KeptTrace& kt : recorder.kept_traces()) {
      if (kt.trace == *id) spans = kt.spans;
    }
    for (const SpanRecord& s : recorder.records()) {
      if (!(s.trace == *id)) continue;
      const bool seen = std::any_of(spans.begin(), spans.end(),
                                    [&](const SpanRecord& k) { return k.id == s.id; });
      if (!seen) spans.push_back(s);
    }
    return spans_jsonl(spans);
  }
  if (!min_ms_raw.empty()) {
    double min_ms = 0.0;
    try {
      min_ms = std::stod(std::string(min_ms_raw));
    } catch (const std::exception&) {
      return {};
    }
    std::string out;
    for (const KeptTrace& kt : recorder.kept_traces()) {
      if (kt.duration_ms < min_ms) continue;
      char head[128];
      std::snprintf(head, sizeof(head), "{\"trace\":\"%s\",\"dur_ms\":%.3f,\"error\":%s}\n",
                    trace_id_hex(kt.trace).c_str(), kt.duration_ms,
                    kt.error ? "true" : "false");
      out += head;
      out += spans_jsonl(kt.spans);
    }
    return out;
  }
  return recorder.jsonl();
}

ScopedSpan::ScopedSpan(std::string_view name, TraceRecorder& recorder) {
  if (!recorder.enabled()) return;
  recorder_ = &recorder;
  id_ = recorder.next_id();
  prev_ = current_trace_context();
  if (prev_.trace_id.valid()) {
    trace_ = prev_.trace_id;
    parent_ = prev_.span != 0 ? prev_.span : prev_.remote_parent;
  } else {
    trace_ = recorder.new_trace_id();
    started_trace_ = true;
  }
  set_current_trace_context(TraceContext{trace_, id_, 0});
  name_ = std::string(name);
  start_ns_ = recorder.now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (recorder_ == nullptr) return;
  SpanRecord span;
  span.id = id_;
  span.parent = parent_;
  span.trace = trace_;
  span.name = std::move(name_);
  span.start_ns = start_ns_;
  span.end_ns = recorder_->now_ns();
  set_current_trace_context(prev_);
  recorder_->record(std::move(span));
  if (started_trace_) recorder_->finalize_trace(trace_);
}

}  // namespace auric::obs
