#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

namespace auric::obs {

namespace {

/// Innermost open span id on this thread (0 = none). Shared across
/// recorders: a thread has one trace context.
thread_local std::uint64_t t_current_span = 0;

/// Dense per-(recorder-agnostic) thread index; assigned on first span.
thread_local std::uint32_t t_thread_index = 0;

/// Escapes a span name for embedding in a JSON string literal.
std::string json_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_ns_(steady_now_ns()) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

std::uint64_t TraceRecorder::now_ns() const { return steady_now_ns() - epoch_ns_; }

void TraceRecorder::record(SpanRecord&& span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (span.thread == 0) {
    if (t_thread_index == 0) t_thread_index = next_thread_++;
    span.thread = t_thread_index;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[ring_head_] = std::move(span);
  ring_head_ = (ring_head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<SpanRecord> TraceRecorder::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string TraceRecorder::jsonl() const {
  std::string out;
  for (const SpanRecord& s : records()) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":%llu,\"parent\":%llu,\"name\":\"%s\",\"start_ns\":%llu,"
                  "\"end_ns\":%llu,\"dur_ns\":%llu,\"thread\":%u}\n",
                  static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent), json_escape(s.name).c_str(),
                  static_cast<unsigned long long>(s.start_ns),
                  static_cast<unsigned long long>(s.end_ns),
                  static_cast<unsigned long long>(s.end_ns - s.start_ns), s.thread);
    out += buf;
  }
  return out;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ring_head_ = 0;
  dropped_ = 0;
  next_id_.store(1, std::memory_order_relaxed);
  epoch_ns_ = steady_now_ns();
}

void write_trace_file(const TraceRecorder& recorder, const std::string& path) {
  const std::string text = recorder.jsonl();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("obs: cannot open '" + path + "' for writing");
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (written != text.size() || rc != 0) {
    throw std::runtime_error("obs: short write to '" + path + "'");
  }
}

ScopedSpan::ScopedSpan(std::string_view name, TraceRecorder& recorder) {
  if (!recorder.enabled()) return;
  recorder_ = &recorder;
  id_ = recorder.next_id();
  parent_ = t_current_span;
  t_current_span = id_;
  name_ = std::string(name);
  start_ns_ = recorder.now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (recorder_ == nullptr) return;
  SpanRecord span;
  span.id = id_;
  span.parent = parent_;
  span.name = std::move(name_);
  span.start_ns = start_ns_;
  span.end_ns = recorder_->now_ns();
  t_current_span = parent_;
  recorder_->record(std::move(span));
}

}  // namespace auric::obs
