file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_local_per_market.dir/bench_fig11_local_per_market.cpp.o"
  "CMakeFiles/bench_fig11_local_per_market.dir/bench_fig11_local_per_market.cpp.o.d"
  "bench_fig11_local_per_market"
  "bench_fig11_local_per_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_local_per_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
