# Empty dependencies file for bench_fig11_local_per_market.
# This may be replaced when dependencies are built.
