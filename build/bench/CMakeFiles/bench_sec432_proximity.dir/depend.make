# Empty dependencies file for bench_sec432_proximity.
# This may be replaced when dependencies are built.
