file(REMOVE_RECURSE
  "CMakeFiles/bench_sec432_proximity.dir/bench_sec432_proximity.cpp.o"
  "CMakeFiles/bench_sec432_proximity.dir/bench_sec432_proximity.cpp.o.d"
  "bench_sec432_proximity"
  "bench_sec432_proximity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec432_proximity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
