file(REMOVE_RECURSE
  "CMakeFiles/learner_comparison.dir/learner_comparison.cpp.o"
  "CMakeFiles/learner_comparison.dir/learner_comparison.cpp.o.d"
  "liblearner_comparison.a"
  "liblearner_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learner_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
