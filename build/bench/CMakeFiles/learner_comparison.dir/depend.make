# Empty dependencies file for learner_comparison.
# This may be replaced when dependencies are built.
