file(REMOVE_RECURSE
  "liblearner_comparison.a"
)
