# Empty dependencies file for bench_table4_global_accuracy.
# This may be replaced when dependencies are built.
