# Empty compiler generated dependencies file for bench_fig12_mismatch_labels.
# This may be replaced when dependencies are built.
