file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_mismatch_labels.dir/bench_fig12_mismatch_labels.cpp.o"
  "CMakeFiles/bench_fig12_mismatch_labels.dir/bench_fig12_mismatch_labels.cpp.o.d"
  "bench_fig12_mismatch_labels"
  "bench_fig12_mismatch_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_mismatch_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
