# Empty dependencies file for bench_fig02_variability.
# This may be replaced when dependencies are built.
