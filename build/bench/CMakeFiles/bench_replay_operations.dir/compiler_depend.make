# Empty compiler generated dependencies file for bench_replay_operations.
# This may be replaced when dependencies are built.
