file(REMOVE_RECURSE
  "CMakeFiles/bench_replay_operations.dir/bench_replay_operations.cpp.o"
  "CMakeFiles/bench_replay_operations.dir/bench_replay_operations.cpp.o.d"
  "bench_replay_operations"
  "bench_replay_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replay_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
