# Empty dependencies file for bench_fig10_global_learners.
# This may be replaced when dependencies are built.
