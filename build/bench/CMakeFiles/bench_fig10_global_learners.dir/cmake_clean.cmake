file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_global_learners.dir/bench_fig10_global_learners.cpp.o"
  "CMakeFiles/bench_fig10_global_learners.dir/bench_fig10_global_learners.cpp.o.d"
  "bench_fig10_global_learners"
  "bench_fig10_global_learners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_global_learners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
