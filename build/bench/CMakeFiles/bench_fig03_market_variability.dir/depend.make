# Empty dependencies file for bench_fig03_market_variability.
# This may be replaced when dependencies are built.
