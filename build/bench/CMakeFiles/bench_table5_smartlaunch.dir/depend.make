# Empty dependencies file for bench_table5_smartlaunch.
# This may be replaced when dependencies are built.
