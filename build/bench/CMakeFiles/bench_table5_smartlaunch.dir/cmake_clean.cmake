file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_smartlaunch.dir/bench_table5_smartlaunch.cpp.o"
  "CMakeFiles/bench_table5_smartlaunch.dir/bench_table5_smartlaunch.cpp.o.d"
  "bench_table5_smartlaunch"
  "bench_table5_smartlaunch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_smartlaunch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
