# Empty dependencies file for bench_fig04_skewness.
# This may be replaced when dependencies are built.
