file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_skewness.dir/bench_fig04_skewness.cpp.o"
  "CMakeFiles/bench_fig04_skewness.dir/bench_fig04_skewness.cpp.o.d"
  "bench_fig04_skewness"
  "bench_fig04_skewness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_skewness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
