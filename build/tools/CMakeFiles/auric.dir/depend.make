# Empty dependencies file for auric.
# This may be replaced when dependencies are built.
