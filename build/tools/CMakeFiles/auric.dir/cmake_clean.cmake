file(REMOVE_RECURSE
  "CMakeFiles/auric.dir/auric_cli.cpp.o"
  "CMakeFiles/auric.dir/auric_cli.cpp.o.d"
  "auric"
  "auric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
