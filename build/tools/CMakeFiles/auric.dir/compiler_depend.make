# Empty compiler generated dependencies file for auric.
# This may be replaced when dependencies are built.
