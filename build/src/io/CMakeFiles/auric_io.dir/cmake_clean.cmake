file(REMOVE_RECURSE
  "CMakeFiles/auric_io.dir/inventory.cpp.o"
  "CMakeFiles/auric_io.dir/inventory.cpp.o.d"
  "libauric_io.a"
  "libauric_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auric_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
