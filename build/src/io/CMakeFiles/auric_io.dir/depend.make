# Empty dependencies file for auric_io.
# This may be replaced when dependencies are built.
