file(REMOVE_RECURSE
  "libauric_io.a"
)
