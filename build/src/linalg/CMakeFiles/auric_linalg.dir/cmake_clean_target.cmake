file(REMOVE_RECURSE
  "libauric_linalg.a"
)
