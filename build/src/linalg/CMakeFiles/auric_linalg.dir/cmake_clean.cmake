file(REMOVE_RECURSE
  "CMakeFiles/auric_linalg.dir/matrix.cpp.o"
  "CMakeFiles/auric_linalg.dir/matrix.cpp.o.d"
  "libauric_linalg.a"
  "libauric_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auric_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
