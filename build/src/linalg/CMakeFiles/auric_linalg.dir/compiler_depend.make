# Empty compiler generated dependencies file for auric_linalg.
# This may be replaced when dependencies are built.
