# Empty dependencies file for auric_netsim.
# This may be replaced when dependencies are built.
