
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/attributes.cpp" "src/netsim/CMakeFiles/auric_netsim.dir/attributes.cpp.o" "gcc" "src/netsim/CMakeFiles/auric_netsim.dir/attributes.cpp.o.d"
  "/root/repo/src/netsim/generator.cpp" "src/netsim/CMakeFiles/auric_netsim.dir/generator.cpp.o" "gcc" "src/netsim/CMakeFiles/auric_netsim.dir/generator.cpp.o.d"
  "/root/repo/src/netsim/geo.cpp" "src/netsim/CMakeFiles/auric_netsim.dir/geo.cpp.o" "gcc" "src/netsim/CMakeFiles/auric_netsim.dir/geo.cpp.o.d"
  "/root/repo/src/netsim/topology.cpp" "src/netsim/CMakeFiles/auric_netsim.dir/topology.cpp.o" "gcc" "src/netsim/CMakeFiles/auric_netsim.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/auric_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
