file(REMOVE_RECURSE
  "libauric_netsim.a"
)
