file(REMOVE_RECURSE
  "CMakeFiles/auric_netsim.dir/attributes.cpp.o"
  "CMakeFiles/auric_netsim.dir/attributes.cpp.o.d"
  "CMakeFiles/auric_netsim.dir/generator.cpp.o"
  "CMakeFiles/auric_netsim.dir/generator.cpp.o.d"
  "CMakeFiles/auric_netsim.dir/geo.cpp.o"
  "CMakeFiles/auric_netsim.dir/geo.cpp.o.d"
  "CMakeFiles/auric_netsim.dir/topology.cpp.o"
  "CMakeFiles/auric_netsim.dir/topology.cpp.o.d"
  "libauric_netsim.a"
  "libauric_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auric_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
