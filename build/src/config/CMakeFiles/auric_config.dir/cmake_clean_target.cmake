file(REMOVE_RECURSE
  "libauric_config.a"
)
