
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/assignment.cpp" "src/config/CMakeFiles/auric_config.dir/assignment.cpp.o" "gcc" "src/config/CMakeFiles/auric_config.dir/assignment.cpp.o.d"
  "/root/repo/src/config/catalog.cpp" "src/config/CMakeFiles/auric_config.dir/catalog.cpp.o" "gcc" "src/config/CMakeFiles/auric_config.dir/catalog.cpp.o.d"
  "/root/repo/src/config/ground_truth.cpp" "src/config/CMakeFiles/auric_config.dir/ground_truth.cpp.o" "gcc" "src/config/CMakeFiles/auric_config.dir/ground_truth.cpp.o.d"
  "/root/repo/src/config/managed_object.cpp" "src/config/CMakeFiles/auric_config.dir/managed_object.cpp.o" "gcc" "src/config/CMakeFiles/auric_config.dir/managed_object.cpp.o.d"
  "/root/repo/src/config/rulebook.cpp" "src/config/CMakeFiles/auric_config.dir/rulebook.cpp.o" "gcc" "src/config/CMakeFiles/auric_config.dir/rulebook.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/auric_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/auric_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
