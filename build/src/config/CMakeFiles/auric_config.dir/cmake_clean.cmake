file(REMOVE_RECURSE
  "CMakeFiles/auric_config.dir/assignment.cpp.o"
  "CMakeFiles/auric_config.dir/assignment.cpp.o.d"
  "CMakeFiles/auric_config.dir/catalog.cpp.o"
  "CMakeFiles/auric_config.dir/catalog.cpp.o.d"
  "CMakeFiles/auric_config.dir/ground_truth.cpp.o"
  "CMakeFiles/auric_config.dir/ground_truth.cpp.o.d"
  "CMakeFiles/auric_config.dir/managed_object.cpp.o"
  "CMakeFiles/auric_config.dir/managed_object.cpp.o.d"
  "CMakeFiles/auric_config.dir/rulebook.cpp.o"
  "CMakeFiles/auric_config.dir/rulebook.cpp.o.d"
  "libauric_config.a"
  "libauric_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auric_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
