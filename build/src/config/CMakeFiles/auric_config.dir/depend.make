# Empty dependencies file for auric_config.
# This may be replaced when dependencies are built.
