# Empty dependencies file for auric_core.
# This may be replaced when dependencies are built.
