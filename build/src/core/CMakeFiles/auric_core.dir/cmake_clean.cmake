file(REMOVE_RECURSE
  "CMakeFiles/auric_core.dir/dependency.cpp.o"
  "CMakeFiles/auric_core.dir/dependency.cpp.o.d"
  "CMakeFiles/auric_core.dir/engine.cpp.o"
  "CMakeFiles/auric_core.dir/engine.cpp.o.d"
  "CMakeFiles/auric_core.dir/param_view.cpp.o"
  "CMakeFiles/auric_core.dir/param_view.cpp.o.d"
  "CMakeFiles/auric_core.dir/rulebook_synthesis.cpp.o"
  "CMakeFiles/auric_core.dir/rulebook_synthesis.cpp.o.d"
  "CMakeFiles/auric_core.dir/voting.cpp.o"
  "CMakeFiles/auric_core.dir/voting.cpp.o.d"
  "libauric_core.a"
  "libauric_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auric_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
