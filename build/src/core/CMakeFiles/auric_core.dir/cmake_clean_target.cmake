file(REMOVE_RECURSE
  "libauric_core.a"
)
