
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dependency.cpp" "src/core/CMakeFiles/auric_core.dir/dependency.cpp.o" "gcc" "src/core/CMakeFiles/auric_core.dir/dependency.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/auric_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/auric_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/param_view.cpp" "src/core/CMakeFiles/auric_core.dir/param_view.cpp.o" "gcc" "src/core/CMakeFiles/auric_core.dir/param_view.cpp.o.d"
  "/root/repo/src/core/rulebook_synthesis.cpp" "src/core/CMakeFiles/auric_core.dir/rulebook_synthesis.cpp.o" "gcc" "src/core/CMakeFiles/auric_core.dir/rulebook_synthesis.cpp.o.d"
  "/root/repo/src/core/voting.cpp" "src/core/CMakeFiles/auric_core.dir/voting.cpp.o" "gcc" "src/core/CMakeFiles/auric_core.dir/voting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/auric_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/auric_config.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/auric_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/auric_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/auric_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
