file(REMOVE_RECURSE
  "CMakeFiles/auric_util.dir/args.cpp.o"
  "CMakeFiles/auric_util.dir/args.cpp.o.d"
  "CMakeFiles/auric_util.dir/csv.cpp.o"
  "CMakeFiles/auric_util.dir/csv.cpp.o.d"
  "CMakeFiles/auric_util.dir/csv_reader.cpp.o"
  "CMakeFiles/auric_util.dir/csv_reader.cpp.o.d"
  "CMakeFiles/auric_util.dir/log.cpp.o"
  "CMakeFiles/auric_util.dir/log.cpp.o.d"
  "CMakeFiles/auric_util.dir/parallel.cpp.o"
  "CMakeFiles/auric_util.dir/parallel.cpp.o.d"
  "CMakeFiles/auric_util.dir/rng.cpp.o"
  "CMakeFiles/auric_util.dir/rng.cpp.o.d"
  "CMakeFiles/auric_util.dir/strings.cpp.o"
  "CMakeFiles/auric_util.dir/strings.cpp.o.d"
  "CMakeFiles/auric_util.dir/table.cpp.o"
  "CMakeFiles/auric_util.dir/table.cpp.o.d"
  "libauric_util.a"
  "libauric_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auric_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
