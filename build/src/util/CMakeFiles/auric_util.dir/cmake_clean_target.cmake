file(REMOVE_RECURSE
  "libauric_util.a"
)
