# Empty dependencies file for auric_util.
# This may be replaced when dependencies are built.
