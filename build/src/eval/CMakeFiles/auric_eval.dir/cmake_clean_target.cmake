file(REMOVE_RECURSE
  "libauric_eval.a"
)
