file(REMOVE_RECURSE
  "CMakeFiles/auric_eval.dir/cf_eval.cpp.o"
  "CMakeFiles/auric_eval.dir/cf_eval.cpp.o.d"
  "CMakeFiles/auric_eval.dir/mismatch.cpp.o"
  "CMakeFiles/auric_eval.dir/mismatch.cpp.o.d"
  "CMakeFiles/auric_eval.dir/model_eval.cpp.o"
  "CMakeFiles/auric_eval.dir/model_eval.cpp.o.d"
  "CMakeFiles/auric_eval.dir/variability.cpp.o"
  "CMakeFiles/auric_eval.dir/variability.cpp.o.d"
  "libauric_eval.a"
  "libauric_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auric_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
