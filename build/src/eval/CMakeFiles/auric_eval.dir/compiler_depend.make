# Empty compiler generated dependencies file for auric_eval.
# This may be replaced when dependencies are built.
