# Empty compiler generated dependencies file for auric_ml.
# This may be replaced when dependencies are built.
