file(REMOVE_RECURSE
  "CMakeFiles/auric_ml.dir/chi_square.cpp.o"
  "CMakeFiles/auric_ml.dir/chi_square.cpp.o.d"
  "CMakeFiles/auric_ml.dir/classifier.cpp.o"
  "CMakeFiles/auric_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/auric_ml.dir/dataset.cpp.o"
  "CMakeFiles/auric_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/auric_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/auric_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/auric_ml.dir/knn.cpp.o"
  "CMakeFiles/auric_ml.dir/knn.cpp.o.d"
  "CMakeFiles/auric_ml.dir/metrics.cpp.o"
  "CMakeFiles/auric_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/auric_ml.dir/mlp.cpp.o"
  "CMakeFiles/auric_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/auric_ml.dir/random_forest.cpp.o"
  "CMakeFiles/auric_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/auric_ml.dir/split.cpp.o"
  "CMakeFiles/auric_ml.dir/split.cpp.o.d"
  "libauric_ml.a"
  "libauric_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auric_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
