file(REMOVE_RECURSE
  "libauric_ml.a"
)
