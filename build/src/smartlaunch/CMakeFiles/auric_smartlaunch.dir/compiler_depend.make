# Empty compiler generated dependencies file for auric_smartlaunch.
# This may be replaced when dependencies are built.
