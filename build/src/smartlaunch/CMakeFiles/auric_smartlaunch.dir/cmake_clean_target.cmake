file(REMOVE_RECURSE
  "libauric_smartlaunch.a"
)
