
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smartlaunch/controller.cpp" "src/smartlaunch/CMakeFiles/auric_smartlaunch.dir/controller.cpp.o" "gcc" "src/smartlaunch/CMakeFiles/auric_smartlaunch.dir/controller.cpp.o.d"
  "/root/repo/src/smartlaunch/ems.cpp" "src/smartlaunch/CMakeFiles/auric_smartlaunch.dir/ems.cpp.o" "gcc" "src/smartlaunch/CMakeFiles/auric_smartlaunch.dir/ems.cpp.o.d"
  "/root/repo/src/smartlaunch/kpi.cpp" "src/smartlaunch/CMakeFiles/auric_smartlaunch.dir/kpi.cpp.o" "gcc" "src/smartlaunch/CMakeFiles/auric_smartlaunch.dir/kpi.cpp.o.d"
  "/root/repo/src/smartlaunch/pipeline.cpp" "src/smartlaunch/CMakeFiles/auric_smartlaunch.dir/pipeline.cpp.o" "gcc" "src/smartlaunch/CMakeFiles/auric_smartlaunch.dir/pipeline.cpp.o.d"
  "/root/repo/src/smartlaunch/replay.cpp" "src/smartlaunch/CMakeFiles/auric_smartlaunch.dir/replay.cpp.o" "gcc" "src/smartlaunch/CMakeFiles/auric_smartlaunch.dir/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/auric_core.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/auric_config.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/auric_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/auric_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/auric_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/auric_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
