file(REMOVE_RECURSE
  "CMakeFiles/auric_smartlaunch.dir/controller.cpp.o"
  "CMakeFiles/auric_smartlaunch.dir/controller.cpp.o.d"
  "CMakeFiles/auric_smartlaunch.dir/ems.cpp.o"
  "CMakeFiles/auric_smartlaunch.dir/ems.cpp.o.d"
  "CMakeFiles/auric_smartlaunch.dir/kpi.cpp.o"
  "CMakeFiles/auric_smartlaunch.dir/kpi.cpp.o.d"
  "CMakeFiles/auric_smartlaunch.dir/pipeline.cpp.o"
  "CMakeFiles/auric_smartlaunch.dir/pipeline.cpp.o.d"
  "CMakeFiles/auric_smartlaunch.dir/replay.cpp.o"
  "CMakeFiles/auric_smartlaunch.dir/replay.cpp.o.d"
  "libauric_smartlaunch.a"
  "libauric_smartlaunch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auric_smartlaunch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
