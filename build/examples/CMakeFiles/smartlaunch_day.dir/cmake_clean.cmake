file(REMOVE_RECURSE
  "CMakeFiles/smartlaunch_day.dir/smartlaunch_day.cpp.o"
  "CMakeFiles/smartlaunch_day.dir/smartlaunch_day.cpp.o.d"
  "smartlaunch_day"
  "smartlaunch_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartlaunch_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
