# Empty dependencies file for smartlaunch_day.
# This may be replaced when dependencies are built.
