file(REMOVE_RECURSE
  "CMakeFiles/market_expansion.dir/market_expansion.cpp.o"
  "CMakeFiles/market_expansion.dir/market_expansion.cpp.o.d"
  "market_expansion"
  "market_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
