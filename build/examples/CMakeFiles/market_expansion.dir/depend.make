# Empty dependencies file for market_expansion.
# This may be replaced when dependencies are built.
