file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_split.dir/test_metrics_split.cpp.o"
  "CMakeFiles/test_metrics_split.dir/test_metrics_split.cpp.o.d"
  "test_metrics_split"
  "test_metrics_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
