
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_metrics_split.cpp" "tests/CMakeFiles/test_metrics_split.dir/test_metrics_split.cpp.o" "gcc" "tests/CMakeFiles/test_metrics_split.dir/test_metrics_split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smartlaunch/CMakeFiles/auric_smartlaunch.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/auric_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/auric_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/auric_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/auric_io.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/auric_config.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/auric_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/auric_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/auric_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
