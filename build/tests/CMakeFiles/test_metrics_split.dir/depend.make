# Empty dependencies file for test_metrics_split.
# This may be replaced when dependencies are built.
