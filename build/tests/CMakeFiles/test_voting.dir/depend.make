# Empty dependencies file for test_voting.
# This may be replaced when dependencies are built.
