file(REMOVE_RECURSE
  "CMakeFiles/test_rulebook_synthesis.dir/test_rulebook_synthesis.cpp.o"
  "CMakeFiles/test_rulebook_synthesis.dir/test_rulebook_synthesis.cpp.o.d"
  "test_rulebook_synthesis"
  "test_rulebook_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rulebook_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
