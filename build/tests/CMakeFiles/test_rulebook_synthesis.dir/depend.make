# Empty dependencies file for test_rulebook_synthesis.
# This may be replaced when dependencies are built.
