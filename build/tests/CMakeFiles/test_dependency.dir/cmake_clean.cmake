file(REMOVE_RECURSE
  "CMakeFiles/test_dependency.dir/test_dependency.cpp.o"
  "CMakeFiles/test_dependency.dir/test_dependency.cpp.o.d"
  "test_dependency"
  "test_dependency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dependency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
