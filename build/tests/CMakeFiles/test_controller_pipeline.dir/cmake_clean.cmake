file(REMOVE_RECURSE
  "CMakeFiles/test_controller_pipeline.dir/test_controller_pipeline.cpp.o"
  "CMakeFiles/test_controller_pipeline.dir/test_controller_pipeline.cpp.o.d"
  "test_controller_pipeline"
  "test_controller_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_controller_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
