# Empty dependencies file for test_controller_pipeline.
# This may be replaced when dependencies are built.
