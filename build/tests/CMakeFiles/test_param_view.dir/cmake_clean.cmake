file(REMOVE_RECURSE
  "CMakeFiles/test_param_view.dir/test_param_view.cpp.o"
  "CMakeFiles/test_param_view.dir/test_param_view.cpp.o.d"
  "test_param_view"
  "test_param_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_param_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
