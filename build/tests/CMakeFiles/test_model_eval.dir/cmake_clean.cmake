file(REMOVE_RECURSE
  "CMakeFiles/test_model_eval.dir/test_model_eval.cpp.o"
  "CMakeFiles/test_model_eval.dir/test_model_eval.cpp.o.d"
  "test_model_eval"
  "test_model_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
