# Empty dependencies file for test_model_eval.
# This may be replaced when dependencies are built.
