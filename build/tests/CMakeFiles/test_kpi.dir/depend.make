# Empty dependencies file for test_kpi.
# This may be replaced when dependencies are built.
