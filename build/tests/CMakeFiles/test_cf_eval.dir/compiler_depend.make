# Empty compiler generated dependencies file for test_cf_eval.
# This may be replaced when dependencies are built.
