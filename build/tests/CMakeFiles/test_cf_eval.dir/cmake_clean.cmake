file(REMOVE_RECURSE
  "CMakeFiles/test_cf_eval.dir/test_cf_eval.cpp.o"
  "CMakeFiles/test_cf_eval.dir/test_cf_eval.cpp.o.d"
  "test_cf_eval"
  "test_cf_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cf_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
