# Empty dependencies file for test_rulebook_assignment.
# This may be replaced when dependencies are built.
