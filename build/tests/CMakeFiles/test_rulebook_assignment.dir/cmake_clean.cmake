file(REMOVE_RECURSE
  "CMakeFiles/test_rulebook_assignment.dir/test_rulebook_assignment.cpp.o"
  "CMakeFiles/test_rulebook_assignment.dir/test_rulebook_assignment.cpp.o.d"
  "test_rulebook_assignment"
  "test_rulebook_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rulebook_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
