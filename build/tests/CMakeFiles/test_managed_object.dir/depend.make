# Empty dependencies file for test_managed_object.
# This may be replaced when dependencies are built.
