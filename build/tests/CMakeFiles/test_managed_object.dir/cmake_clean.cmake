file(REMOVE_RECURSE
  "CMakeFiles/test_managed_object.dir/test_managed_object.cpp.o"
  "CMakeFiles/test_managed_object.dir/test_managed_object.cpp.o.d"
  "test_managed_object"
  "test_managed_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_managed_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
