#include "netsim/geo.h"

#include <gtest/gtest.h>

namespace auric::netsim {
namespace {

TEST(Haversine, ZeroDistanceForSamePoint) {
  const GeoPoint p{40.7128, -74.0060};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Haversine, NewYorkToLosAngeles) {
  const GeoPoint nyc{40.7128, -74.0060};
  const GeoPoint lax{34.0522, -118.2437};
  // Great-circle distance ~3936 km.
  EXPECT_NEAR(haversine_km(nyc, lax), 3936.0, 15.0);
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{35.0, -100.0};
  const GeoPoint b{36.0, -101.0};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Haversine, OneDegreeLatitudeIsAbout111Km) {
  EXPECT_NEAR(haversine_km({40.0, -75.0}, {41.0, -75.0}), 111.2, 0.5);
}

TEST(OffsetKm, NorthOffsetChangesLatitudeOnly) {
  const GeoPoint origin{40.0, -75.0};
  const GeoPoint moved = offset_km(origin, 10.0, 0.0);
  EXPECT_NEAR(moved.lon_deg, origin.lon_deg, 1e-12);
  EXPECT_NEAR(haversine_km(origin, moved), 10.0, 0.05);
}

TEST(OffsetKm, EastOffsetDistanceAccurate) {
  const GeoPoint origin{40.0, -75.0};
  const GeoPoint moved = offset_km(origin, 0.0, 25.0);
  EXPECT_NEAR(moved.lat_deg, origin.lat_deg, 1e-12);
  EXPECT_NEAR(haversine_km(origin, moved), 25.0, 0.25);
}

TEST(OffsetKm, DiagonalOffsetApproximatesPythagoras) {
  const GeoPoint origin{35.0, -100.0};
  const GeoPoint moved = offset_km(origin, 30.0, 40.0);
  EXPECT_NEAR(haversine_km(origin, moved), 50.0, 0.5);
}

}  // namespace
}  // namespace auric::netsim
