#include "ml/mlp.h"

#include <gtest/gtest.h>

#include "learner_test_util.h"

namespace auric::ml {
namespace {

MlpOptions small_net() {
  MlpOptions options;
  options.hidden_sizes = {16, 8};
  options.max_epochs = 150;
  options.seed = 1;
  return options;
}

TEST(Mlp, LearnsLinearlySeparableRule) {
  const CategoricalDataset data = test::rule_dataset(500, 0.0, 1, /*classes=*/3);
  MultilayerPerceptron mlp(small_net());
  mlp.fit(data, test::all_rows(data));
  EXPECT_GT(test::train_accuracy(mlp, data), 0.97);
  EXPECT_GT(mlp.epochs_run(), 0);
}

TEST(Mlp, LossDecreasesOverTraining) {
  const CategoricalDataset data = test::rule_dataset(300, 0.0, 2, 3);
  MlpOptions one_epoch = small_net();
  one_epoch.max_epochs = 1;
  one_epoch.patience = 1000;
  MultilayerPerceptron brief(one_epoch);
  brief.fit(data, test::all_rows(data));
  MlpOptions many = one_epoch;
  many.max_epochs = 100;
  MultilayerPerceptron longer(many);
  longer.fit(data, test::all_rows(data));
  EXPECT_LT(longer.final_loss(), brief.final_loss());
}

TEST(Mlp, EarlyStoppingHaltsOnPlateau) {
  // Constant labels: loss hits ~0 immediately; patience should stop training
  // long before the epoch cap.
  CategoricalDataset data = test::rule_dataset(100, 0.0, 3, 2);
  for (auto& label : data.labels) label = 0;
  MlpOptions options = small_net();
  options.max_epochs = 500;
  options.patience = 5;
  options.learning_rate = 0.05;  // converge within a few epochs, then plateau
  MultilayerPerceptron mlp(options);
  mlp.fit(data, test::all_rows(data));
  EXPECT_LT(mlp.epochs_run(), 100);
  EXPECT_EQ(mlp.predict(data.row_codes(0)), 0);
}

TEST(Mlp, DeterministicInSeed) {
  const CategoricalDataset data = test::rule_dataset(200, 0.1, 4, 3);
  MultilayerPerceptron a(small_net());
  MultilayerPerceptron b(small_net());
  a.fit(data, test::all_rows(data));
  b.fit(data, test::all_rows(data));
  for (std::size_t r = 0; r < data.rows(); ++r) {
    EXPECT_EQ(a.predict(data.row_codes(r)), b.predict(data.row_codes(r)));
  }
}

TEST(Mlp, PaperArchitectureDefaults) {
  const MlpOptions defaults;
  // §4.2(4): "7 hidden layers with sizes 100, 100, 100, 50, 50, 50, 10".
  EXPECT_EQ(defaults.hidden_sizes,
            (std::vector<std::size_t>{100, 100, 100, 50, 50, 50, 10}));
  EXPECT_DOUBLE_EQ(defaults.l2_penalty, 1e-5);
  EXPECT_EQ(defaults.seed, 1u);
}

TEST(Mlp, RejectsBadUsage) {
  MlpOptions no_hidden;
  no_hidden.hidden_sizes.clear();
  EXPECT_THROW(MultilayerPerceptron{no_hidden}, std::invalid_argument);
  MultilayerPerceptron mlp(small_net());
  const CategoricalDataset data = test::rule_dataset(4, 0.0, 1);
  EXPECT_THROW(mlp.fit(data, {}), std::invalid_argument);
  EXPECT_THROW(mlp.predict(data.row_codes(0)), std::logic_error);
}

}  // namespace
}  // namespace auric::ml
