#include "ml/random_forest.h"

#include <gtest/gtest.h>

#include "learner_test_util.h"

namespace auric::ml {
namespace {

TEST(RandomForest, LearnsNoiselessRule) {
  const CategoricalDataset data = test::rule_dataset(500, 0.0, 1);
  RandomForestOptions options;
  options.num_trees = 25;  // enough for the toy problem, fast in CI
  RandomForest forest(options);
  forest.fit(data, test::all_rows(data));
  EXPECT_EQ(forest.tree_count(), 25u);
  EXPECT_GT(test::train_accuracy(forest, data), 0.99);
}

TEST(RandomForest, RobustToLabelNoise) {
  const CategoricalDataset noisy = test::rule_dataset(1500, 0.2, 3);
  const CategoricalDataset clean = test::rule_dataset(300, 0.0, 4);
  RandomForestOptions options;
  options.num_trees = 25;
  RandomForest forest(options);
  forest.fit(noisy, test::all_rows(noisy));
  EXPECT_GT(test::train_accuracy(forest, clean), 0.95);
}

TEST(RandomForest, DeterministicInSeed) {
  const CategoricalDataset data = test::rule_dataset(300, 0.1, 5);
  RandomForestOptions options;
  options.num_trees = 10;
  options.seed = 42;
  RandomForest a(options);
  RandomForest b(options);
  a.fit(data, test::all_rows(data));
  b.fit(data, test::all_rows(data));
  for (std::size_t r = 0; r < data.rows(); ++r) {
    EXPECT_EQ(a.predict(data.row_codes(r)), b.predict(data.row_codes(r)));
  }
}

TEST(RandomForest, PaperDefaultIsHundredTrees) {
  EXPECT_EQ(RandomForestOptions{}.num_trees, 100);  // §4.2(2)
  EXPECT_EQ(RandomForestOptions{}.max_depth, -1);   // pure leaves
}

TEST(RandomForest, RejectsBadOptionsAndEmptyFit) {
  RandomForestOptions bad;
  bad.num_trees = 0;
  EXPECT_THROW(RandomForest{bad}, std::invalid_argument);
  RandomForest forest;
  const CategoricalDataset data = test::rule_dataset(4, 0.0, 1);
  EXPECT_THROW(forest.fit(data, {}), std::invalid_argument);
  EXPECT_THROW(forest.predict(data.row_codes(0)), std::logic_error);
}

}  // namespace
}  // namespace auric::ml
