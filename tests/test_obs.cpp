#include "obs/log_buffer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/log.h"
#include "util/retry.h"

namespace auric::obs {
namespace {

TEST(Counter, IncrementsAndReads) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test_counter", "help");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("test_gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.add(-5.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Histogram, BucketBoundariesArePrometheusLe) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test_hist", {1.0, 10.0, 100.0});
  // `le` semantics: a value exactly on a boundary lands in that bucket.
  h.observe(1.0);
  h.observe(0.5);
  h.observe(10.0);
  h.observe(10.5);
  h.observe(1000.0);  // overflow bucket
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(buckets[1], 1u);  // 10.0
  EXPECT_EQ(buckets[2], 1u);  // 10.5
  EXPECT_EQ(buckets[3], 1u);  // 1000.0
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 0.5 + 10.0 + 10.5 + 1000.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("ops_total", "ops");
  Counter& b = reg.counter("ops_total", "ops");
  EXPECT_EQ(&a, &b);
  // Distinct label sets are distinct instruments; label order is canonical.
  Counter& x = reg.counter("by_kind", "", {{"kind", "a"}, {"zone", "1"}});
  Counter& y = reg.counter("by_kind", "", {{"zone", "1"}, {"kind", "a"}});
  Counter& z = reg.counter("by_kind", "", {{"kind", "b"}, {"zone", "1"}});
  EXPECT_EQ(&x, &y);
  EXPECT_NE(&x, &z);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, KindAndBoundsConflictsThrow) {
  MetricsRegistry reg;
  reg.counter("name_a");
  EXPECT_THROW(reg.gauge("name_a"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("name_a", {1.0}), std::invalid_argument);
  reg.histogram("name_h", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("name_h", {1.0, 3.0}), std::invalid_argument);
  EXPECT_NO_THROW(reg.histogram("name_h", {1.0, 2.0}));
}

TEST(MetricsRegistry, ValidatesNamesAndLabels) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
  EXPECT_THROW(reg.counter("9starts_with_digit"), std::invalid_argument);
  EXPECT_THROW(reg.counter("has space"), std::invalid_argument);
  EXPECT_NO_THROW(reg.counter("ok_name:subsystem_total"));
  EXPECT_THROW(reg.counter("lbl", "", {{"bad key", "v"}}), std::invalid_argument);
  EXPECT_THROW(reg.counter("lbl", "", {{"k", "v"}, {"k", "w"}}), std::invalid_argument);
}

TEST(MetricsRegistry, SnapshotIsSortedAndDeterministic) {
  MetricsRegistry reg;
  reg.counter("zeta_total").inc(1);
  reg.counter("alpha_total", "", {{"kind", "b"}}).inc(2);
  reg.counter("alpha_total", "", {{"kind", "a"}}).inc(3);
  reg.gauge("mid_gauge").set(7);
  const std::vector<MetricSample> snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].name, "alpha_total");
  EXPECT_EQ(snap[0].labels[0].second, "a");
  EXPECT_DOUBLE_EQ(snap[0].value, 3.0);
  EXPECT_EQ(snap[1].name, "alpha_total");
  EXPECT_EQ(snap[1].labels[0].second, "b");
  EXPECT_EQ(snap[2].name, "mid_gauge");
  EXPECT_EQ(snap[3].name, "zeta_total");
}

TEST(MetricsRegistry, PrometheusExportParsesAndIsCumulative) {
  MetricsRegistry reg;
  reg.counter("req_total", "requests", {{"code", "200"}}).inc(5);
  Histogram& h = reg.histogram("lat_ms", {1.0, 5.0, 25.0}, "latency");
  for (const double v : {0.5, 0.7, 3.0, 30.0, 400.0}) h.observe(v);
  const std::string text = reg.prometheus_text();

  EXPECT_NE(text.find("# HELP req_total requests"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(text.find("req_total{code=\"200\"} 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ms histogram"), std::string::npos);

  // Parse every histogram bucket line; cumulative counts must be monotone
  // and the +Inf bucket must equal _count.
  std::istringstream lines(text);
  std::string line;
  std::vector<std::uint64_t> cumulative;
  std::uint64_t inf_value = 0;
  std::uint64_t count_value = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("lat_ms_bucket{", 0) == 0) {
      const std::uint64_t v = std::stoull(line.substr(line.rfind(' ') + 1));
      cumulative.push_back(v);
      if (line.find("le=\"+Inf\"") != std::string::npos) inf_value = v;
    } else if (line.rfind("lat_ms_count", 0) == 0) {
      count_value = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  ASSERT_EQ(cumulative.size(), 4u);  // 3 bounds + +Inf
  EXPECT_TRUE(std::is_sorted(cumulative.begin(), cumulative.end()));
  EXPECT_EQ(cumulative[0], 2u);
  EXPECT_EQ(inf_value, 5u);
  EXPECT_EQ(count_value, 5u);
}

TEST(MetricsRegistry, CsvAndJsonRenderEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("c_total", "a counter").inc(3);
  reg.gauge("g", "", {{"k", "va\"lue"}}).set(1.5);
  reg.histogram("h", {1.0}).observe(0.5);

  const std::string csv = reg.csv_text();
  EXPECT_EQ(csv.rfind("kind,name,labels,field,value\n", 0), 0u);
  EXPECT_NE(csv.find("counter,c_total,\"\",value,3"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,\"\",count,1"), std::string::npos);

  const std::string json = reg.json_text();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"name\":\"c_total\""), std::string::npos);
  EXPECT_NE(json.find("va\\\"lue"), std::string::npos);  // label values are escaped
  EXPECT_NE(json.find("\"buckets\":[1,0]"), std::string::npos);
}

TEST(MetricsRegistry, WriteMetricsFilePicksFormatByExtension) {
  MetricsRegistry reg;
  reg.counter("c_total").inc(1);
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "auric_obs_test";
  std::filesystem::create_directories(dir);
  const auto slurp = [](const std::filesystem::path& p) {
    std::ifstream in(p);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  };
  write_metrics_file(reg, (dir / "m.prom").string());
  write_metrics_file(reg, (dir / "m.csv").string());
  write_metrics_file(reg, (dir / "m.json").string());
  EXPECT_NE(slurp(dir / "m.prom").find("# TYPE c_total counter"), std::string::npos);
  EXPECT_EQ(slurp(dir / "m.csv").rfind("kind,", 0), 0u);
  EXPECT_EQ(slurp(dir / "m.json").front(), '[');
  EXPECT_THROW(write_metrics_file(reg, (dir / "no_such_dir" / "m.prom").string()),
               std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(MetricsRegistry, ResetValuesKeepsReferencesValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c_total");
  Histogram& h = reg.histogram("h", {1.0});
  c.inc(9);
  h.observe(0.5);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, ConcurrentIncrementsAndSnapshotsAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("stress_total");
  Histogram& h = reg.histogram("stress_hist", {10.0, 100.0, 1000.0});
  Gauge& g = reg.gauge("stress_gauge");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load()) {}
      // Some threads resolve the instrument themselves — registration must
      // be safe against concurrent lookups too.
      Counter& mine = reg.counter("stress_total");
      for (int i = 0; i < kPerThread; ++i) {
        mine.inc();
        h.observe(static_cast<double>((t * kPerThread + i) % 2000));
        g.add(1.0);
      }
    });
  }
  // One reader snapshotting concurrently; snapshots must be internally
  // consistent (never more observations than the final total).
  workers.emplace_back([&] {
    while (!go.load()) {}
    for (int i = 0; i < 50; ++i) {
      for (const MetricSample& s : reg.snapshot()) {
        if (s.name == "stress_hist") {
          std::uint64_t total = 0;
          for (std::uint64_t b : s.buckets) total += b;
          EXPECT_LE(total, static_cast<std::uint64_t>(kThreads) * kPerThread);
        }
      }
    }
  });
  go.store(true);
  for (std::thread& w : workers) w.join();
  const std::uint64_t expected = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(c.value(), expected);
  EXPECT_EQ(h.count(), expected);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(expected));
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : h.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, expected);
}

TEST(Trace, SpansNestAndIdsAreDeterministic) {
  TraceRecorder rec(16);
  {
    ScopedSpan outer("outer", rec);
    EXPECT_EQ(outer.id(), 1u);
    {
      ScopedSpan child_a("child.a", rec);
      EXPECT_EQ(child_a.id(), 2u);
    }
    {
      ScopedSpan child_b("child.b", rec);
      ScopedSpan grandchild("grandchild", rec);
      EXPECT_EQ(grandchild.id(), 4u);
    }
  }
  const std::vector<SpanRecord> spans = rec.records();  // completion order
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "child.a");
  EXPECT_EQ(spans[0].parent, 1u);
  EXPECT_EQ(spans[1].name, "grandchild");
  EXPECT_EQ(spans[1].parent, 3u);
  EXPECT_EQ(spans[2].name, "child.b");
  EXPECT_EQ(spans[2].parent, 1u);
  EXPECT_EQ(spans[3].name, "outer");
  EXPECT_EQ(spans[3].parent, 0u);  // root
  for (const SpanRecord& s : spans) {
    EXPECT_LE(s.start_ns, s.end_ns);
    EXPECT_EQ(s.thread, 1u);
  }
  // Siblings complete in program order.
  EXPECT_LE(spans[0].end_ns, spans[2].start_ns);
}

TEST(Trace, ClearResetsIdsAndRecords) {
  TraceRecorder rec(8);
  { ScopedSpan s("one", rec); }
  rec.clear();
  EXPECT_TRUE(rec.records().empty());
  { ScopedSpan s("two", rec); }
  const std::vector<SpanRecord> spans = rec.records();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].id, 1u);  // counter restarted
}

TEST(Trace, RingOverflowDropsOldest) {
  TraceRecorder rec(3);
  for (int i = 0; i < 7; ++i) {
    ScopedSpan s("span." + std::to_string(i), rec);
  }
  const std::vector<SpanRecord> spans = rec.records();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(rec.dropped(), 4u);
  EXPECT_EQ(spans[0].name, "span.4");  // oldest surviving
  EXPECT_EQ(spans[2].name, "span.6");
}

TEST(Trace, DisabledRecorderIsANoOp) {
  TraceRecorder rec(8);
  rec.set_enabled(false);
  {
    ScopedSpan s("ghost", rec);
    EXPECT_EQ(s.id(), 0u);
  }
  EXPECT_TRUE(rec.records().empty());
  rec.set_enabled(true);
  { ScopedSpan s("real", rec); }
  EXPECT_EQ(rec.records().size(), 1u);
}

TEST(Trace, JsonlEmitsOneParsableObjectPerSpan) {
  TraceRecorder rec(8);
  {
    ScopedSpan outer("outer", rec);
    ScopedSpan inner("in\"ner", rec);  // name needs escaping
  }
  const std::string jsonl = rec.jsonl();
  std::istringstream lines(jsonl);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"id\":"), std::string::npos);
    EXPECT_NE(line.find("\"parent\":"), std::string::npos);
    EXPECT_NE(line.find("\"dur_ns\":"), std::string::npos);
  }
  EXPECT_EQ(n, 2);
  EXPECT_NE(jsonl.find("\"name\":\"in\\\"ner\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"parent\":1"), std::string::npos);
}

TEST(Trace, ThreadsGetDenseIndicesAndIndependentParents) {
  TraceRecorder rec(256);
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec] {
      ScopedSpan outer("t.outer", rec);
      ScopedSpan inner("t.inner", rec);
    });
  }
  for (std::thread& w : workers) w.join();
  const std::vector<SpanRecord> spans = rec.records();
  ASSERT_EQ(spans.size(), 2u * kThreads);
  std::vector<std::uint32_t> threads;
  for (const SpanRecord& s : spans) {
    threads.push_back(s.thread);
    if (s.name == "t.inner") {
      // The inner span's parent is the same thread's outer span.
      const auto outer = std::find_if(spans.begin(), spans.end(), [&](const SpanRecord& o) {
        return o.id == s.parent;
      });
      ASSERT_NE(outer, spans.end());
      EXPECT_EQ(outer->name, "t.outer");
      EXPECT_EQ(outer->thread, s.thread);
    } else {
      EXPECT_EQ(s.parent, 0u);
    }
  }
  std::sort(threads.begin(), threads.end());
  threads.erase(std::unique(threads.begin(), threads.end()), threads.end());
  ASSERT_EQ(threads.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(threads.front(), 1u);  // dense, starting at 1
  EXPECT_EQ(threads.back(), static_cast<std::uint32_t>(kThreads));
}

TEST(Trace, WriteTraceFileRoundTrips) {
  TraceRecorder rec(8);
  { ScopedSpan s("filed", rec); }
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "auric_obs_trace_test.jsonl";
  write_trace_file(rec, path.string());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"name\":\"filed\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(MetricsRegistry, LabelCardinalityGuardCapsDistinctLabelSets) {
  MetricsRegistry reg;
  reg.set_label_limit(3);
  EXPECT_EQ(reg.label_limit(), 3u);
  for (int i = 0; i < 3; ++i) {
    reg.counter("per_cell_total", "", {{"cell", std::to_string(i)}}).inc();
  }
  EXPECT_EQ(reg.label_sets("per_cell_total"), 3u);
  const std::size_t size_at_cap = reg.size();

  // Registrations past the cap return a shared sink: call sites keep
  // working, the export stays bounded, and the drop is counted.
  Counter& sink_a = reg.counter("per_cell_total", "", {{"cell", "overflow-a"}});
  Counter& sink_b = reg.counter("per_cell_total", "", {{"cell", "overflow-b"}});
  EXPECT_EQ(&sink_a, &sink_b);
  sink_a.inc(5);
  EXPECT_EQ(sink_b.value(), 5u);
  EXPECT_EQ(reg.label_sets("per_cell_total"), 3u);
  EXPECT_EQ(reg.counter("obs_labels_dropped_total").value(), 2u);
  // The sink itself is never exported.
  EXPECT_NE(reg.prometheus_text().find("per_cell_total{cell=\"2\"}"), std::string::npos);
  EXPECT_EQ(reg.prometheus_text().find("overflow"), std::string::npos);
  EXPECT_EQ(reg.size(), size_at_cap + 1);  // only obs_labels_dropped_total was added

  // Re-asking for a label set that got in under the cap still resolves to
  // the real instrument, not the sink.
  Counter& real = reg.counter("per_cell_total", "", {{"cell", "1"}});
  EXPECT_NE(&real, &sink_a);

  // Gauges and histograms overflow into kind-matched sinks too.
  reg.set_label_limit(1);
  reg.gauge("g", "", {{"k", "a"}});
  Gauge& gsink = reg.gauge("g", "", {{"k", "b"}});
  gsink.set(7.0);
  EXPECT_EQ(reg.label_sets("g"), 1u);
  reg.histogram("h", {1.0}, "", {{"k", "a"}});
  Histogram& hsink = reg.histogram("h", {1.0}, "", {{"k", "b"}});
  hsink.observe(0.5);
  EXPECT_EQ(hsink.count(), 1u);
  EXPECT_EQ(reg.label_sets("h"), 1u);
}

TEST(LogBufferObs, RingKeepsTheMostRecentLines) {
  LogBuffer ring(3);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_TRUE(ring.tail().empty());
  EXPECT_EQ(ring.text(), "");
  for (int i = 0; i < 5; ++i) {
    ring.append("line " + std::to_string(i));
  }
  const std::vector<std::string> tail = ring.tail();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0], "line 2");  // oldest surviving
  EXPECT_EQ(tail[2], "line 4");
  EXPECT_EQ(ring.text(), "line 2\nline 3\nline 4\n");
  EXPECT_EQ(ring.total_appended(), 5u);
  ring.clear();
  EXPECT_TRUE(ring.tail().empty());
  EXPECT_EQ(ring.total_appended(), 0u);
}

TEST(LogBufferObs, UtilLogFeedsTheGlobalRing) {
  const std::uint64_t before = LogBuffer::global().total_appended();
  util::log_info("obs ring probe 1147");
  EXPECT_EQ(LogBuffer::global().total_appended(), before + 1);
  const std::vector<std::string> tail = LogBuffer::global().tail();
  ASSERT_FALSE(tail.empty());
  EXPECT_NE(tail.back().find("obs ring probe 1147"), std::string::npos);
  EXPECT_NE(tail.back().find("INFO"), std::string::npos);
  EXPECT_EQ(tail.back().find('\n'), std::string::npos);  // lines are stored bare
}

TEST(LogObs, ParseLogLevelAcceptsNamesAndNumbers) {
  EXPECT_EQ(util::parse_log_level("debug"), util::LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("INFO"), util::LogLevel::kInfo);
  EXPECT_EQ(util::parse_log_level("Warning"), util::LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("3"), util::LogLevel::kError);
  EXPECT_FALSE(util::parse_log_level("loud").has_value());
  EXPECT_FALSE(util::parse_log_level("").has_value());
}

TEST(LogObs, WarnAndErrorAreCountedEvenWhenFiltered) {
  Counter& warns = MetricsRegistry::global().counter("auric_log_messages_total", "",
                                                     {{"level", "warn"}});
  Counter& errors = MetricsRegistry::global().counter("auric_log_messages_total", "",
                                                      {{"level", "error"}});
  const util::LogLevel before = util::log_level();
  const std::uint64_t warns_before = warns.value();
  const std::uint64_t errors_before = errors.value();
  util::set_log_level(util::LogLevel::kError);  // warn text is filtered...
  util::log_warn("obs test warn");
  util::log_error("obs test error");
  util::set_log_level(before);
  EXPECT_EQ(warns.value(), warns_before + 1);  // ...but still counted
  EXPECT_EQ(errors.value(), errors_before + 1);
}

TEST(BreakerObs, TransitionsAndRefusalsAreCounted) {
  auto& reg = MetricsRegistry::global();
  // Breaker series carry a `shard` label (a default breaker is shard 0).
  Counter& to_open =
      reg.counter("auric_breaker_transitions_total", "", {{"shard", "0"}, {"to", "open"}});
  Counter& to_half =
      reg.counter("auric_breaker_transitions_total", "", {{"shard", "0"}, {"to", "half_open"}});
  Counter& to_closed =
      reg.counter("auric_breaker_transitions_total", "", {{"shard", "0"}, {"to", "closed"}});
  Counter& refusals = reg.counter("auric_breaker_refusals_total", "", {{"shard", "0"}});
  Gauge& state = reg.gauge("auric_breaker_state", "", {{"shard", "0"}});
  const std::uint64_t open0 = to_open.value();
  const std::uint64_t half0 = to_half.value();
  const std::uint64_t closed0 = to_closed.value();
  const std::uint64_t refusals0 = refusals.value();

  util::CircuitBreaker::Options options;
  options.failure_threshold = 2;
  options.cooldown_ops = 2;
  util::CircuitBreaker breaker(options);
  breaker.record_failure();
  breaker.record_failure();  // trips
  EXPECT_EQ(to_open.value(), open0 + 1);
  EXPECT_DOUBLE_EQ(state.value(),
                   static_cast<double>(util::CircuitBreaker::State::kOpen));
  EXPECT_FALSE(breaker.allow());
  EXPECT_FALSE(breaker.allow());  // cooldown exhausted -> half-open
  EXPECT_EQ(refusals.value(), refusals0 + 2);
  EXPECT_EQ(to_half.value(), half0 + 1);
  EXPECT_TRUE(breaker.allow());  // half-open probe
  breaker.record_success();
  EXPECT_EQ(to_closed.value(), closed0 + 1);
  EXPECT_DOUBLE_EQ(state.value(),
                   static_cast<double>(util::CircuitBreaker::State::kClosed));
}

// --- trace context and the traceparent wire format ---

TEST(TraceContext, TraceparentRoundTripsThroughParse) {
  const TraceId id{0x0af7651916cd43ddULL, 0x8448eb211c80319cULL};
  const std::string header = format_traceparent(id, 0xb7ad6b7169203331ULL);
  EXPECT_EQ(header, "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01");
  const std::optional<Traceparent> parsed = parse_traceparent(header);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, id);
  EXPECT_EQ(parsed->parent_span, 0xb7ad6b7169203331ULL);
  EXPECT_TRUE(parsed->sampled());
  EXPECT_EQ(trace_id_hex(id), "0af7651916cd43dd8448eb211c80319c");
  EXPECT_EQ(parse_trace_id_hex(trace_id_hex(id)), id);
}

TEST(TraceContext, TraceparentRejectsTruncatedGarbageAndZeroIds) {
  const std::string valid = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
  ASSERT_TRUE(parse_traceparent(valid).has_value());
  // Every strict prefix is a truncation and must be rejected.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    EXPECT_FALSE(parse_traceparent(std::string_view(valid).substr(0, len)).has_value())
        << "accepted a " << len << "-char truncation";
  }
  // Garbage in every field.
  EXPECT_FALSE(parse_traceparent("not a traceparent header, not even close to 1").has_value());
  EXPECT_FALSE(
      parse_traceparent("zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01").has_value());
  EXPECT_FALSE(
      parse_traceparent("00-0af7651916cd43dd8448eb211c8031XX-b7ad6b7169203331-01").has_value());
  EXPECT_FALSE(
      parse_traceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033XX-01").has_value());
  EXPECT_FALSE(
      parse_traceparent("00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01").has_value());
  // All-zero trace id and all-zero parent id are invalid per spec.
  EXPECT_FALSE(
      parse_traceparent("00-00000000000000000000000000000000-b7ad6b7169203331-01").has_value());
  EXPECT_FALSE(
      parse_traceparent("00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01").has_value());
  // Version ff is reserved; version 00 must be exactly 55 chars.
  EXPECT_FALSE(
      parse_traceparent("ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01").has_value());
  EXPECT_FALSE(parse_traceparent(valid + "-suffix").has_value());
  // Foreign (future) versions are tolerated, with or without a suffix —
  // but the suffix must be '-'-separated.
  EXPECT_TRUE(
      parse_traceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01").has_value());
  EXPECT_TRUE(parse_traceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-xtra")
                  .has_value());
  EXPECT_FALSE(parse_traceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01xtra")
                   .has_value());
}

TEST(TraceContext, ScopeInstallsAndRestoresTheThreadContext) {
  const TraceContext before = current_trace_context();
  const TraceId id{7, 9};
  {
    TraceContextScope scope(TraceContext{id, 3, 0});
    EXPECT_EQ(current_trace_context().trace_id, id);
    EXPECT_EQ(current_trace_context().span, 3u);
    {
      TraceContextScope inner(TraceContext{});  // explicit detach
      EXPECT_FALSE(current_trace_context().trace_id.valid());
    }
    EXPECT_EQ(current_trace_context().trace_id, id);
  }
  EXPECT_EQ(current_trace_context().trace_id, before.trace_id);
}

TEST(Trace, AdoptedContextJoinsTheSubmittersTrace) {
  TraceRecorder rec(16);
  TraceContext captured;
  TraceId trace;
  std::uint64_t outer_id = 0;
  {
    ScopedSpan outer("outer", rec);
    trace = outer.trace();
    outer_id = outer.id();
    EXPECT_TRUE(trace.valid());
    captured = current_trace_context();
    // Worker-thread handoff, the way TaskPool does it.
    std::thread worker([&] {
      TraceContextScope adopt(captured);
      ScopedSpan inner("inner", rec);
      EXPECT_EQ(inner.trace(), trace);
    });
    worker.join();
  }
  const std::vector<SpanRecord> spans = rec.records();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent, outer_id);
  EXPECT_EQ(spans[0].trace, trace);
  EXPECT_EQ(spans[1].trace, trace);
}

// --- tail-based retention ---

TEST(Trace, TailRetentionKeepsSlowTracesWithTheirSpanTrees) {
  TraceRecorder rec(64);
  TailOptions tail;
  tail.min_ms = 0.0;  // everything is "slow enough"
  rec.set_tail_options(tail);
  TraceId id;
  {
    ScopedSpan root("root", rec);
    id = root.trace();
    ScopedSpan child("child", rec);
  }
  const std::vector<KeptTrace> kept = rec.kept_traces();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].trace, id);
  EXPECT_FALSE(kept[0].error);
  ASSERT_EQ(kept[0].spans.size(), 2u);  // completion order
  EXPECT_EQ(kept[0].spans[0].name, "child");
  EXPECT_EQ(kept[0].spans[1].name, "root");
}

TEST(Trace, TailRetentionKeepsErrorTracesUnderRingPressure) {
  TraceRecorder rec(64);
  TailOptions tail;
  tail.min_ms = 1e9;  // nothing qualifies on duration
  tail.capacity = 2;
  rec.set_tail_options(tail);

  {
    ScopedSpan fast("fast.and.fine", rec);
  }
  EXPECT_TRUE(rec.kept_traces().empty());  // fast + healthy -> discarded

  TraceId errs[3];
  for (int i = 0; i < 3; ++i) {
    {
      ScopedSpan s("err." + std::to_string(i), rec);
      errs[i] = s.trace();
      rec.mark_trace_error();
    }
    {
      ScopedSpan healthy("healthy.between", rec);
    }
  }
  // Capacity 2 under pressure: the two newest error traces survive, the
  // healthy traces never entered, the evicted one is counted.
  const std::vector<KeptTrace> kept = rec.kept_traces();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].trace, errs[1]);
  EXPECT_EQ(kept[1].trace, errs[2]);
  EXPECT_TRUE(kept[0].error);
  EXPECT_TRUE(kept[1].error);
  EXPECT_EQ(rec.kept_dropped(), 1u);
  EXPECT_EQ(kept[1].spans.size(), 1u);  // the healthy child trace is separate
}

TEST(Trace, TracezAnswersTraceIdAndMinMsQueries) {
  TraceRecorder rec(64);
  TailOptions tail;
  tail.min_ms = 0.0;
  rec.set_tail_options(tail);
  TraceId id;
  {
    ScopedSpan root("queried", rec);
    id = root.trace();
  }
  {
    ScopedSpan other("other", rec);
  }

  const std::string by_id = tracez_text(rec, "trace_id=" + trace_id_hex(id));
  EXPECT_NE(by_id.find("\"name\":\"queried\""), std::string::npos);
  EXPECT_EQ(by_id.find("\"name\":\"other\""), std::string::npos);
  EXPECT_NE(by_id.find("\"trace\":\"" + trace_id_hex(id) + "\""), std::string::npos);
  EXPECT_TRUE(tracez_text(rec, "trace_id=" + std::string(32, 'e')).empty());
  EXPECT_TRUE(tracez_text(rec, "trace_id=garbage").empty());

  const std::string slow = tracez_text(rec, "min_ms=0");
  EXPECT_NE(slow.find("\"dur_ms\":"), std::string::npos);  // per-trace header line
  EXPECT_NE(slow.find("\"name\":\"queried\""), std::string::npos);
  EXPECT_TRUE(tracez_text(rec, "min_ms=100000").empty());

  // No query: the live ring, unchanged (back-compat with old scrapers).
  const std::string live = tracez_text(rec, "");
  EXPECT_NE(live.find("\"name\":\"other\""), std::string::npos);
}

// --- histogram exemplars ---

TEST(Histogram, ExemplarsLinkBucketsToTraces) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("exemplar_ms", {1.0, 10.0});
  EXPECT_FALSE(h.exemplars_enabled());
  EXPECT_TRUE(h.exemplars().empty());
  h.observe(0.5);  // before enabling: counted, no exemplar
  h.enable_exemplars();
  h.enable_exemplars();  // idempotent
  ASSERT_TRUE(h.exemplars_enabled());

  const TraceId id{0, 42};
  {
    TraceContextScope scope(TraceContext{id, 7, 0});
    h.observe(5.0);
  }
  h.observe(100.0);  // no active trace: the overflow bucket stays bare

  const std::vector<HistogramExemplar> ex = h.exemplars();
  ASSERT_EQ(ex.size(), 3u);
  EXPECT_FALSE(ex[0].trace_id.valid());
  EXPECT_EQ(ex[1].trace_id, id);
  EXPECT_DOUBLE_EQ(ex[1].value, 5.0);
  EXPECT_FALSE(ex[2].trace_id.valid());

  // OpenMetrics rendering: the exemplar rides its bucket line.
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# {trace_id=\"" + trace_id_hex(id) + "\"} 5"), std::string::npos);

  // reset clears exemplars with the counts.
  reg.reset_values();
  for (const HistogramExemplar& e : h.exemplars()) {
    EXPECT_FALSE(e.trace_id.valid());
  }
}

// --- offline latency attribution (tracestats) ---

TEST(TraceStats, FoldsSelfTimeAndCriticalPaths) {
  // root [0,10ms] with children fast [0,2ms] and slow [2,9ms]: self 1ms,
  // critical path root>slow (slow finishes last).
  const std::string jsonl =
      "{\"id\":1,\"parent\":0,\"trace\":\"t1\",\"name\":\"root\",\"start_ns\":0,"
      "\"end_ns\":10000000}\n"
      "{\"id\":2,\"parent\":1,\"trace\":\"t1\",\"name\":\"fast\",\"start_ns\":0,"
      "\"end_ns\":2000000}\n"
      "{\"id\":3,\"parent\":1,\"trace\":\"t1\",\"name\":\"slow\",\"start_ns\":2000000,"
      "\"end_ns\":9000000}\n"
      "this line is junk and must be skipped, not fatal\n";
  const TraceStatsReport report = compute_trace_stats(jsonl);
  EXPECT_EQ(report.spans, 3u);
  EXPECT_EQ(report.skipped_lines, 1u);
  ASSERT_EQ(report.by_name.size(), 3u);
  // Sorted by self time: slow (7ms), fast (2ms), root (10 - 9 = 1ms).
  EXPECT_EQ(report.by_name[0].name, "slow");
  EXPECT_DOUBLE_EQ(report.by_name[0].self_ms, 7.0);
  EXPECT_EQ(report.by_name[2].name, "root");
  EXPECT_DOUBLE_EQ(report.by_name[2].total_ms, 10.0);
  EXPECT_DOUBLE_EQ(report.by_name[2].self_ms, 1.0);
  ASSERT_EQ(report.paths.size(), 1u);
  EXPECT_EQ(report.paths[0].path, "root>slow");
  EXPECT_DOUBLE_EQ(report.paths[0].dur_ms, 10.0);
  EXPECT_EQ(report.paths[0].trace, "t1");

  const std::string csv = trace_stats_csv(report);
  EXPECT_EQ(csv.rfind("kind,trace,name,count,total_ms,self_ms\n", 0), 0u);
  EXPECT_NE(csv.find("name,,slow,1,7.000,7.000"), std::string::npos);
  EXPECT_NE(csv.find("critical,t1,root>slow,1,10.000,0.000"), std::string::npos);
}

TEST(TraceStats, RootNameRootsPathsBelowTheTraceRoot) {
  // day spans nest under run; --root day must still yield per-day paths.
  const std::string jsonl =
      "{\"id\":1,\"parent\":0,\"trace\":\"t\",\"name\":\"run\",\"start_ns\":0,"
      "\"end_ns\":30000000}\n"
      "{\"id\":2,\"parent\":1,\"trace\":\"t\",\"name\":\"day\",\"start_ns\":0,"
      "\"end_ns\":10000000}\n"
      "{\"id\":3,\"parent\":2,\"trace\":\"t\",\"name\":\"launch\",\"start_ns\":1000000,"
      "\"end_ns\":9000000}\n"
      "{\"id\":4,\"parent\":1,\"trace\":\"t\",\"name\":\"day\",\"start_ns\":10000000,"
      "\"end_ns\":30000000}\n";
  TraceStatsOptions options;
  options.root = "day";
  const TraceStatsReport report = compute_trace_stats(jsonl, options);
  ASSERT_EQ(report.paths.size(), 2u);
  EXPECT_EQ(report.paths[0].path, "day");        // the slower, childless day
  EXPECT_DOUBLE_EQ(report.paths[0].dur_ms, 20.0);
  EXPECT_EQ(report.paths[1].path, "day>launch");
  EXPECT_DOUBLE_EQ(report.paths[1].dur_ms, 10.0);
}

TEST(TraceStats, TopTruncatesBothSections) {
  std::string jsonl;
  for (int i = 0; i < 6; ++i) {
    jsonl += "{\"id\":" + std::to_string(i + 1) + ",\"parent\":0,\"trace\":\"t" +
             std::to_string(i) + "\",\"name\":\"span." + std::to_string(i) +
             "\",\"start_ns\":0,\"end_ns\":" + std::to_string((i + 1) * 1000000) + "}\n";
  }
  TraceStatsOptions options;
  options.top = 2;
  const TraceStatsReport report = compute_trace_stats(jsonl, options);
  ASSERT_EQ(report.by_name.size(), 2u);
  EXPECT_EQ(report.by_name[0].name, "span.5");  // largest self time first
  ASSERT_EQ(report.paths.size(), 2u);
  EXPECT_DOUBLE_EQ(report.paths[0].dur_ms, 6.0);
}

}  // namespace
}  // namespace auric::obs
