#include <cmath>

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "ml/split.h"
#include "util/rng.h"

namespace auric::ml {
namespace {

TEST(Accuracy, CountsMatches) {
  const std::vector<std::int32_t> pred{1, 2, 3, 4};
  const std::vector<std::int32_t> actual{1, 0, 3, 0};
  EXPECT_DOUBLE_EQ(accuracy(pred, actual), 0.5);
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
  const std::vector<std::int32_t> longer{1, 2, 3};
  const std::vector<std::int32_t> shorter{1};
  EXPECT_THROW(accuracy(longer, shorter), std::invalid_argument);
}

TEST(Skewness, SymmetricDistributionIsZero) {
  const std::vector<double> symmetric{-2, -1, 0, 1, 2};
  EXPECT_NEAR(skewness(symmetric), 0.0, 1e-12);
}

TEST(Skewness, HandComputedValue) {
  // {0,0,0,1}: mean .25, m2 = 3/16, m3 = (3*(-1/64) + 27/64)/4 = 3/32.
  // skew = (3/32) / (3/16)^1.5 = 1.1547...
  const std::vector<double> values{0, 0, 0, 1};
  EXPECT_NEAR(skewness(values), (3.0 / 32.0) / std::pow(3.0 / 16.0, 1.5), 1e-12);
}

TEST(Skewness, RightTailIsPositive) {
  const std::vector<double> right{1, 1, 1, 1, 1, 1, 1, 1, 10};
  EXPECT_GT(skewness(right), 1.0);
  std::vector<double> left = right;
  for (double& v : left) v = -v;
  EXPECT_LT(skewness(left), -1.0);
}

TEST(Skewness, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(skewness(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(skewness(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(skewness(std::vector<double>{2.0, 2.0, 2.0}), 0.0);  // zero variance
}

TEST(SkewnessBands, PaperThresholds) {
  // §2.6: symmetric within +-0.5, moderate to +-1, high beyond.
  EXPECT_EQ(skewness_band(0.3), SkewnessBand::kSymmetric);
  EXPECT_EQ(skewness_band(-0.4), SkewnessBand::kSymmetric);
  EXPECT_EQ(skewness_band(0.7), SkewnessBand::kModeratelySkewed);
  EXPECT_EQ(skewness_band(-0.99), SkewnessBand::kModeratelySkewed);
  EXPECT_EQ(skewness_band(1.5), SkewnessBand::kHighlySkewed);
  EXPECT_EQ(skewness_band(-2.0), SkewnessBand::kHighlySkewed);
}

TEST(DistinctValueCount, IgnoresUnset) {
  const std::vector<config::ValueIndex> values{3, 3, config::kUnset, 7, 3, config::kUnset, 9};
  EXPECT_EQ(distinct_value_count(values), 3u);
  EXPECT_EQ(distinct_value_count(std::vector<config::ValueIndex>{}), 0u);
}

TEST(MeanAccumulator, WeightedMean) {
  MeanAccumulator acc;
  acc.add(1.0, 1.0);
  acc.add(4.0, 3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 13.0 / 4.0);
  EXPECT_DOUBLE_EQ(acc.total_weight(), 4.0);
  EXPECT_DOUBLE_EQ(MeanAccumulator{}.mean(), 0.0);
}

class KFoldTest : public ::testing::TestWithParam<int> {};

TEST_P(KFoldTest, PartitionsAllRowsWithBalancedFolds) {
  util::Rng rng(3);
  const int k = GetParam();
  const auto assignment = kfold_assignment(103, k, rng);
  std::vector<int> sizes(static_cast<std::size_t>(k), 0);
  for (int fold : assignment) {
    ASSERT_GE(fold, 0);
    ASSERT_LT(fold, k);
    ++sizes[static_cast<std::size_t>(fold)];
  }
  int lo = 1000;
  int hi = 0;
  for (int s : sizes) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_LE(hi - lo, 1);
}

TEST_P(KFoldTest, FoldSplitCoversEverything) {
  util::Rng rng(4);
  const int k = GetParam();
  const auto assignment = kfold_assignment(50, k, rng);
  for (int fold = 0; fold < k; ++fold) {
    const FoldSplit split = fold_split(assignment, fold);
    EXPECT_EQ(split.train.size() + split.test.size(), 50u);
    for (std::size_t row : split.test) EXPECT_EQ(assignment[row], fold);
    for (std::size_t row : split.train) EXPECT_NE(assignment[row], fold);
  }
}

INSTANTIATE_TEST_SUITE_P(Folds, KFoldTest, ::testing::Values(2, 3, 5, 10));

TEST(KFold, RejectsFewerThanTwoFolds) {
  util::Rng rng(1);
  EXPECT_THROW(kfold_assignment(10, 1, rng), std::invalid_argument);
}

TEST(CapIndices, CapsAndSortsDeterministically) {
  util::Rng rng(5);
  std::vector<std::size_t> indices(100);
  for (std::size_t i = 0; i < 100; ++i) indices[i] = i;
  cap_indices(indices, 10, rng);
  EXPECT_EQ(indices.size(), 10u);
  EXPECT_TRUE(std::is_sorted(indices.begin(), indices.end()));
  std::vector<std::size_t> small{1, 2, 3};
  cap_indices(small, 10, rng);
  EXPECT_EQ(small.size(), 3u);
  cap_indices(small, 0, rng);  // 0 disables the cap
  EXPECT_EQ(small.size(), 3u);
}

}  // namespace
}  // namespace auric::ml
