#include "core/rulebook_synthesis.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace auric::core {
namespace {

struct Fixture {
  netsim::Topology topo = test::chain_topology(8, 4);
  config::ParamCatalog catalog = test::tiny_catalog();
  config::ConfigAssignment assignment = test::tiny_assignment(topo);
  netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  AuricEngine engine{topo, schema, catalog, assignment};
};

TEST(RulebookSynthesis, ExportsTheBandRule) {
  Fixture f;
  RulebookSynthesisOptions options;
  options.min_carriers = 4;
  options.include_default_rules = true;
  const SynthesizedRulebook book = synthesize_rulebook(f.engine, options);
  ASSERT_FALSE(book.rules.empty());
  // Every exported rule is fully supported (the fixture is noiseless) and
  // carries the band-determined value.
  for (const SynthesizedRule& rule : book.rules) {
    EXPECT_GE(rule.support, 0.75);
    EXPECT_GE(rule.carriers, 4);
    if (rule.param == 0) {
      EXPECT_TRUE(rule.value == 3 || rule.value == 7);
    }
  }
  EXPECT_FALSE(book.rules_for(0).empty());
}

TEST(RulebookSynthesis, MinCarriersFiltersAnecdotes) {
  Fixture f;
  RulebookSynthesisOptions strict;
  strict.min_carriers = 1000;  // nothing in a 24-carrier fixture qualifies
  EXPECT_TRUE(synthesize_rulebook(f.engine, strict).rules.empty());
}

TEST(RulebookSynthesis, DefaultRulesAreSkippedByDefault) {
  Fixture f;
  // Make the low-band value equal the catalog default (5): those groups stop
  // being interesting rules.
  for (const netsim::Carrier& c : f.topo.carriers) {
    if (c.band == netsim::Band::kLow) {
      f.assignment.singular[0].value[static_cast<std::size_t>(c.id)] = 5;
      f.assignment.singular[0].intended[static_cast<std::size_t>(c.id)] = 5;
    }
  }
  const AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment);
  RulebookSynthesisOptions options;
  options.min_carriers = 4;
  const SynthesizedRulebook book = synthesize_rulebook(engine, options);
  for (const SynthesizedRule& rule : book.rules) {
    EXPECT_TRUE(rule.overrides_default(f.catalog));
    if (rule.param == 0) {
      EXPECT_EQ(rule.value, 7);  // only the mid-band rule remains
    }
  }
}

TEST(RulebookSynthesis, RenderIsHumanReadable) {
  Fixture f;
  RulebookSynthesisOptions options;
  options.min_carriers = 4;
  options.include_default_rules = true;
  const SynthesizedRulebook book = synthesize_rulebook(f.engine, options);
  const std::string text = book.render(f.schema, f.catalog);
  EXPECT_NE(text.find("IF "), std::string::npos);
  EXPECT_NE(text.find(" THEN toySingular = "), std::string::npos);
  EXPECT_NE(text.find("support"), std::string::npos);
}

TEST(RulebookSynthesis, DeterministicOrdering) {
  Fixture f;
  RulebookSynthesisOptions options;
  options.min_carriers = 2;
  options.include_default_rules = true;
  const SynthesizedRulebook a = synthesize_rulebook(f.engine, options);
  const SynthesizedRulebook b = synthesize_rulebook(f.engine, options);
  ASSERT_EQ(a.rules.size(), b.rules.size());
  for (std::size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].value, b.rules[i].value);
    EXPECT_EQ(a.rules[i].conditions, b.rules[i].conditions);
  }
}

}  // namespace
}  // namespace auric::core
