#include "ml/dataset.h"

#include <gtest/gtest.h>

#include "learner_test_util.h"

namespace auric::ml {
namespace {

TEST(LabelDictionary, BuildsSortedUniqueValues) {
  const std::vector<config::ValueIndex> labels{7, 3, 7, 3, 12};
  const LabelDictionary dict = LabelDictionary::build(labels);
  EXPECT_EQ(dict.values, (std::vector<config::ValueIndex>{3, 7, 12}));
  EXPECT_EQ(dict.code_of(3), 0);
  EXPECT_EQ(dict.code_of(7), 1);
  EXPECT_EQ(dict.code_of(12), 2);
  EXPECT_EQ(dict.code_of(99), -1);
}

TEST(CategoricalDataset, CheckDetectsBadCodes) {
  CategoricalDataset data = test::rule_dataset(10, 0.0, 1);
  EXPECT_NO_THROW(data.check());
  data.columns[0][0] = 99;
  EXPECT_THROW(data.check(), std::logic_error);
}

TEST(CategoricalDataset, CheckDetectsBadLabels) {
  CategoricalDataset data = test::rule_dataset(10, 0.0, 1);
  data.labels[0] = static_cast<ClassLabel>(data.num_classes());
  EXPECT_THROW(data.check(), std::logic_error);
}

TEST(CategoricalDataset, RowCodesGatherAcrossColumns) {
  const CategoricalDataset data = test::rule_dataset(5, 0.0, 2);
  const auto codes = data.row_codes(3);
  ASSERT_EQ(codes.size(), 3u);
  for (std::size_t a = 0; a < 3; ++a) EXPECT_EQ(codes[a], data.columns[a][3]);
}

class OneHotPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OneHotPropertyTest, EachRowSumsToAttributeCount) {
  // §4.2 of the paper: "The sum of the one-hot numeric array for a
  // particular carrier should be equal to 1" — per attribute; across all
  // attribute blocks the row sums to the attribute count.
  const CategoricalDataset data = test::rule_dataset(64, 0.3, GetParam());
  const OneHotEncoder encoder(data);
  EXPECT_EQ(encoder.width(), 4u + 3u + 5u);
  const auto rows = test::all_rows(data);
  const linalg::Matrix x = encoder.encode(data, rows);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double sum = 0.0;
    for (double v : x.row(r)) {
      EXPECT_TRUE(v == 0.0 || v == 1.0);
      sum += v;
    }
    EXPECT_DOUBLE_EQ(sum, 3.0);
  }
}

TEST_P(OneHotPropertyTest, EncodeRowMatchesMatrixRow) {
  const CategoricalDataset data = test::rule_dataset(16, 0.0, GetParam());
  const OneHotEncoder encoder(data);
  const auto rows = test::all_rows(data);
  const linalg::Matrix x = encoder.encode(data, rows);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const auto single = encoder.encode_row(data.row_codes(r));
    for (std::size_t c = 0; c < encoder.width(); ++c) EXPECT_EQ(single[c], x.at(r, c));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneHotPropertyTest, ::testing::Values(1u, 5u, 9u));

TEST(OneHotEncoder, NegativeCodeEncodesAsAllZeros) {
  const CategoricalDataset data = test::rule_dataset(4, 0.0, 1);
  const OneHotEncoder encoder(data);
  const std::vector<std::int32_t> codes{-1, 0, 0};
  const auto row = encoder.encode_row(codes);
  double block_sum = 0.0;
  for (std::size_t i = 0; i < 4; ++i) block_sum += row[i];  // attr 0 block
  EXPECT_DOUBLE_EQ(block_sum, 0.0);
}

}  // namespace
}  // namespace auric::ml
