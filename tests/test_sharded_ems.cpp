#include "smartlaunch/sharded_ems.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "netsim/generator.h"
#include "smartlaunch/robust_pipeline.h"

namespace auric::smartlaunch {
namespace {

netsim::Topology small_topology(int markets = 4) {
  netsim::TopologyParams params;
  params.seed = 7;
  params.num_markets = markets;
  params.base_enodebs_per_market = 3;
  return netsim::generate_topology(params);
}

std::vector<config::MoSetting> settings(std::size_t n) {
  std::vector<config::MoSetting> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back({"MO=" + std::to_string(i), 0, 1});
  return out;
}

TEST(ShardOfMarket, SingleShardMapsEverythingToZero) {
  for (netsim::MarketId m = 0; m < 64; ++m) EXPECT_EQ(shard_of_market(m, 1), 0);
}

TEST(ShardOfMarket, CoversAllShards) {
  const int shards = 4;
  std::set<int> seen;
  for (netsim::MarketId m = 0; m < 64; ++m) {
    const int shard = shard_of_market(m, shards);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, shards);
    seen.insert(shard);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(shards));
}

// The satellite requirement: the mapping of an existing market must not move
// when markets are added (or the inventory is renumbered elsewhere). Because
// shard_of_market is a pure function of (market id, shard count), topologies
// with 4 and 9 markets must agree on markets 0..3.
TEST(ShardOfMarket, StableWhenMarketsAreAdded) {
  const auto before = small_topology(4);
  const auto after = small_topology(9);
  ShardedEms sharded_before(before, 3);
  ShardedEms sharded_after(after, 3);
  for (std::size_t c = 0; c < before.carrier_count(); ++c) {
    const auto carrier = static_cast<netsim::CarrierId>(c);
    const netsim::MarketId market = before.carrier(carrier).market;
    EXPECT_EQ(shard_of_market(market, 3),
              shard_of_market(market, 3));  // pure — same inputs, same output
    // All carriers of this market land on one shard in both topologies.
    EXPECT_EQ(sharded_before.shard_of(carrier), shard_of_market(market, 3));
  }
  for (std::size_t c = 0; c < after.carrier_count(); ++c) {
    const auto carrier = static_cast<netsim::CarrierId>(c);
    EXPECT_EQ(sharded_after.shard_of(carrier),
              shard_of_market(after.carrier(carrier).market, 3));
  }
}

TEST(ShardedEms, CarriersOfOneMarketShareAShard) {
  const auto topology = small_topology(6);
  ShardedEms sharded(topology, 4);
  for (const auto& market : topology.markets) {
    const auto carriers = topology.carriers_in_market(market.id);
    ASSERT_FALSE(carriers.empty());
    const int shard = sharded.shard_of(carriers.front());
    for (const auto carrier : carriers) EXPECT_EQ(sharded.shard_of(carrier), shard);
  }
}

// X2 locality: the topology generator only creates edges within a market, so
// both endpoints of every edge live on the same shard — the property that
// makes per-shard parallel launches race-free.
TEST(ShardedEms, X2EdgesNeverCrossShards) {
  const auto topology = small_topology(6);
  ShardedEms sharded(topology, 4);
  for (std::size_t c = 0; c < topology.carrier_count(); ++c) {
    const auto carrier = static_cast<netsim::CarrierId>(c);
    for (std::size_t e = topology.edge_offsets[c]; e < topology.edge_offsets[c + 1]; ++e) {
      EXPECT_EQ(sharded.shard_of(topology.edges[e].to), sharded.shard_of(carrier));
    }
  }
}

// N=1 must be bit-compatible with the single-EMS model: same seed, same
// fault stream, same push results.
TEST(ShardedEms, SingleShardMatchesPlainSimulatorStream) {
  const auto topology = small_topology(2);
  EmsOptions options;
  options.flaky_timeout_prob = 0.35;  // exercise the fault stream
  options.seed = 2024;
  ShardedEms sharded(topology, 1, options);
  EmsSimulator plain(topology.carrier_count(), options);
  for (int i = 0; i < 40; ++i) {
    const auto carrier = static_cast<netsim::CarrierId>(i % topology.carrier_count());
    const PushResult a = sharded.ems_for(carrier).push(carrier, settings(8));
    const PushResult b = plain.push(carrier, settings(8));
    ASSERT_EQ(a.status, b.status) << "push " << i;
    ASSERT_EQ(a.applied, b.applied) << "push " << i;
    ASSERT_DOUBLE_EQ(a.elapsed_ms, b.elapsed_ms) << "push " << i;
  }
  EXPECT_EQ(sharded.pushes_executed(), plain.pushes_executed());
}

// Shard-local fault domains: pushes on shard A must not advance shard B's
// fault stream. Interleaving traffic on other shards leaves a shard's own
// push sequence byte-identical.
TEST(ShardedEms, FaultStreamsAreShardLocal) {
  const auto topology = small_topology(12);  // 12 markets spread over >1 shard at N=3
  EmsOptions options;
  options.flaky_timeout_prob = 0.35;
  options.seed = 99;

  ShardedEms quiet(topology, 3, options);   // traffic on shard 0 only
  ShardedEms noisy(topology, 3, options);   // traffic everywhere

  const int probe = quiet.shard_of(0);  // a shard that definitely has carriers
  std::vector<netsim::CarrierId> shard0;
  std::vector<netsim::CarrierId> others;
  for (std::size_t c = 0; c < topology.carrier_count(); ++c) {
    const auto carrier = static_cast<netsim::CarrierId>(c);
    (quiet.shard_of(carrier) == probe ? shard0 : others).push_back(carrier);
  }
  ASSERT_FALSE(shard0.empty());
  ASSERT_FALSE(others.empty());

  for (int i = 0; i < 30; ++i) {
    const auto carrier = shard0[static_cast<std::size_t>(i) % shard0.size()];
    // Interleave pushes on the other shards before each shard-0 push.
    const auto other = others[static_cast<std::size_t>(i) % others.size()];
    noisy.ems_for(other).push(other, settings(4));
    const PushResult a = quiet.ems_for(carrier).push(carrier, settings(8));
    const PushResult b = noisy.ems_for(carrier).push(carrier, settings(8));
    ASSERT_EQ(a.status, b.status) << "push " << i;
    ASSERT_DOUBLE_EQ(a.elapsed_ms, b.elapsed_ms) << "push " << i;
  }
}

TEST(ShardedEms, ShardSeedsAreDistinctAndShardZeroKeepsBaseSeed) {
  EXPECT_EQ(ShardedEms::shard_seed(2024, 0), 2024u);
  std::set<std::uint64_t> seeds;
  for (int k = 0; k < 8; ++k) seeds.insert(ShardedEms::shard_seed(2024, k));
  EXPECT_EQ(seeds.size(), 8u);

  const auto topology = small_topology(4);
  EmsOptions options;
  options.seed = 2024;
  const ShardedEms sharded(topology, 4, options);
  EXPECT_EQ(sharded.shard(0).options().seed, 2024u);
  for (int k = 0; k < 4; ++k) EXPECT_EQ(sharded.shard(k).options().shard, k);
}

TEST(ShardedEms, SnapshotRestoreRoundTripsPerShard) {
  const auto topology = small_topology(4);
  EmsOptions options;
  options.flaky_timeout_prob = 0.3;
  ShardedEms sharded(topology, 3, options);
  for (std::size_t c = 0; c < topology.carrier_count(); ++c) {
    const auto carrier = static_cast<netsim::CarrierId>(c);
    sharded.ems_for(carrier).push(carrier, settings(4));
  }
  const auto snapshots = sharded.snapshot();
  ASSERT_EQ(snapshots.size(), 3u);

  ShardedEms restored(topology, 3, options);
  restored.restore(snapshots);
  // Both continue with the identical stream.
  for (std::size_t c = 0; c < topology.carrier_count(); ++c) {
    const auto carrier = static_cast<netsim::CarrierId>(c);
    const PushResult a = sharded.ems_for(carrier).push(carrier, settings(8));
    const PushResult b = restored.ems_for(carrier).push(carrier, settings(8));
    ASSERT_EQ(a.status, b.status);
    ASSERT_DOUBLE_EQ(a.elapsed_ms, b.elapsed_ms);
  }
}

TEST(ShardedEms, RestoreRejectsShardCountMismatch) {
  const auto topology = small_topology(4);
  ShardedEms sharded(topology, 3);
  auto snapshots = sharded.snapshot();
  snapshots.pop_back();
  EXPECT_THROW(sharded.restore(snapshots), std::invalid_argument);
}

TEST(ShardedEms, ShardCountClampedToOne) {
  const auto topology = small_topology(2);
  const ShardedEms sharded(topology, 0);
  EXPECT_EQ(sharded.shard_count(), 1);
}

// Breaker isolation between shards: a fault storm tripping shard 0's breaker
// must leave shard 1's executor admitting launches.
TEST(ShardedEms, BreakerIsolationBetweenShards) {
  const auto topology = small_topology(6);
  EmsOptions options;
  options.flaky_timeout_prob = 1.0;  // every executed push times out
  ShardedEms sharded(topology, 2, options);

  RobustPushExecutor::Options exec_options;
  exec_options.retry.max_attempts = 1;  // no retries: each execute() is one failure
  exec_options.breaker.failure_threshold = 2;
  exec_options.shard = 0;
  RobustPushExecutor exec0(sharded.shard(0), exec_options);
  exec_options.shard = 1;
  RobustPushExecutor exec1(sharded.shard(1), exec_options);

  std::vector<netsim::CarrierId> shard0;
  for (std::size_t c = 0; c < topology.carrier_count(); ++c) {
    const auto carrier = static_cast<netsim::CarrierId>(c);
    if (sharded.shard_of(carrier) == 0) shard0.push_back(carrier);
  }
  ASSERT_GE(shard0.size(), 2u);

  exec0.execute(shard0[0], settings(4));
  exec0.execute(shard0[1], settings(4));
  EXPECT_EQ(exec0.breaker().state(), util::CircuitBreaker::State::kOpen);
  EXPECT_TRUE(exec0.should_defer());

  EXPECT_EQ(exec1.breaker().state(), util::CircuitBreaker::State::kClosed);
  EXPECT_FALSE(exec1.should_defer());
}

}  // namespace
}  // namespace auric::smartlaunch
