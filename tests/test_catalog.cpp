#include "config/catalog.h"

#include <set>

#include <gtest/gtest.h>

namespace auric::config {
namespace {

TEST(ValueDomain, ValueAndIndexRoundTrip) {
  const ValueDomain domain(0.0, 0.5, 31);  // hysA3Offset: 0..15 step 0.5
  EXPECT_EQ(domain.size(), 31);
  EXPECT_DOUBLE_EQ(domain.min(), 0.0);
  EXPECT_DOUBLE_EQ(domain.max(), 15.0);
  EXPECT_DOUBLE_EQ(domain.value(4), 2.0);
  EXPECT_EQ(domain.nearest_index(2.0), 4);
  EXPECT_EQ(domain.nearest_index(2.2), 4);
  EXPECT_EQ(domain.nearest_index(2.3), 5);  // rounds to 2.5
}

TEST(ValueDomain, ClampAndContains) {
  const ValueDomain domain(-10, 1, 21);
  EXPECT_EQ(domain.clamp(-5), 0);
  EXPECT_EQ(domain.clamp(100), 20);
  EXPECT_EQ(domain.clamp(7), 7);
  EXPECT_TRUE(domain.contains(0));
  EXPECT_FALSE(domain.contains(-1));
  EXPECT_FALSE(domain.contains(21));
  EXPECT_THROW(domain.value(21), std::out_of_range);
}

TEST(ValueDomain, NearestClampsOutOfRange) {
  const ValueDomain domain(0, 2, 5);  // {0,2,4,6,8}
  EXPECT_EQ(domain.nearest_index(-100.0), 0);
  EXPECT_EQ(domain.nearest_index(100.0), 4);
}

TEST(ValueDomain, RejectsDegenerateDomains) {
  EXPECT_THROW(ValueDomain(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(ValueDomain(0, 0, 5), std::invalid_argument);
  EXPECT_THROW(ValueDomain(0, -1, 5), std::invalid_argument);
}

TEST(StandardCatalog, HasSixtyFiveRangeParameters) {
  const ParamCatalog catalog = ParamCatalog::standard();
  EXPECT_EQ(catalog.size(), 65u);
  EXPECT_EQ(catalog.singular_ids().size(), 39u);  // §4.1 of the paper
  EXPECT_EQ(catalog.pairwise_ids().size(), 26u);
}

TEST(StandardCatalog, PaperNamedParametersHavePaperDomains) {
  const ParamCatalog catalog = ParamCatalog::standard();

  // sFreqPrio: 1..10000, 1 = highest priority (default).
  const ParamDef& sfp = catalog.at(catalog.id_of("sFreqPrio"));
  EXPECT_DOUBLE_EQ(sfp.domain.min(), 1.0);
  EXPECT_DOUBLE_EQ(sfp.domain.max(), 10000.0);
  EXPECT_EQ(sfp.default_index, 0);

  // hysA3Offset: 0..15 step 0.5.
  const ParamDef& hys = catalog.at(catalog.id_of("hysA3Offset"));
  EXPECT_EQ(hys.kind, ParamKind::kPairwise);
  EXPECT_DOUBLE_EQ(hys.domain.min(), 0.0);
  EXPECT_DOUBLE_EQ(hys.domain.max(), 15.0);
  EXPECT_DOUBLE_EQ(hys.domain.step(), 0.5);

  // pMax: 0..60 step 0.6.
  const ParamDef& pmax = catalog.at(catalog.id_of("pMax"));
  EXPECT_DOUBLE_EQ(pmax.domain.min(), 0.0);
  EXPECT_DOUBLE_EQ(pmax.domain.step(), 0.6);
  EXPECT_DOUBLE_EQ(pmax.domain.max(), 60.0);

  // qRxLevMin: -156..-44.
  const ParamDef& qrx = catalog.at(catalog.id_of("qRxLevMin"));
  EXPECT_DOUBLE_EQ(qrx.domain.min(), -156.0);
  EXPECT_DOUBLE_EQ(qrx.domain.max(), -44.0);

  // inactivityTimer: 1..65535.
  const ParamDef& inact = catalog.at(catalog.id_of("inactivityTimer"));
  EXPECT_DOUBLE_EQ(inact.domain.min(), 1.0);
  EXPECT_DOUBLE_EQ(inact.domain.max(), 65535.0);
}

TEST(StandardCatalog, NamesAreUnique) {
  const ParamCatalog catalog = ParamCatalog::standard();
  std::set<std::string> names;
  for (std::size_t p = 0; p < catalog.size(); ++p) names.insert(catalog[p].name);
  EXPECT_EQ(names.size(), catalog.size());
}

TEST(StandardCatalog, DefaultsInsideDomains) {
  const ParamCatalog catalog = ParamCatalog::standard();
  for (std::size_t p = 0; p < catalog.size(); ++p) {
    EXPECT_TRUE(catalog[p].domain.contains(catalog[p].default_index)) << catalog[p].name;
    EXPECT_GT(catalog[p].activation, 0.0) << catalog[p].name;
    EXPECT_LE(catalog[p].activation, 1.0) << catalog[p].name;
  }
}

TEST(StandardCatalog, PairwiseParamsSplitIntoRelationClasses) {
  const ParamCatalog catalog = ParamCatalog::standard();
  int intra = 0;
  int inter = 0;
  for (ParamId id : catalog.pairwise_ids()) {
    (catalog.at(id).relation == RelationClass::kIntraFrequency ? intra : inter) += 1;
  }
  EXPECT_EQ(intra, 13);
  EXPECT_EQ(inter, 13);
}

TEST(StandardCatalog, IdOfUnknownThrows) {
  const ParamCatalog catalog = ParamCatalog::standard();
  EXPECT_THROW(catalog.id_of("noSuchParameter"), std::out_of_range);
}

TEST(StandardCatalog, PerEdgeScopeIsTheException) {
  const ParamCatalog catalog = ParamCatalog::standard();
  int per_edge = 0;
  for (ParamId id : catalog.pairwise_ids()) {
    if (catalog.at(id).scope == PairScope::kPerEdge) ++per_edge;
  }
  EXPECT_EQ(per_edge, 3);  // cellIndividualOffset, qOffsetCell, x2RelationWeight
}

TEST(ParamCatalog, RejectsDefaultOutsideDomain) {
  ParamDef bad;
  bad.name = "bad";
  bad.domain = ValueDomain(0, 1, 4);
  bad.default_index = 9;
  EXPECT_THROW(ParamCatalog({bad}), std::invalid_argument);
}

TEST(ParamFunctions, NamesCovered) {
  EXPECT_STREQ(param_function_name(ParamFunction::kMobility), "mobility");
  EXPECT_STREQ(param_function_name(ParamFunction::kCapacityManagement), "capacity");
}

}  // namespace
}  // namespace auric::config
