// End-to-end properties of the full pipeline: topology -> ground truth ->
// dependency learning -> voting -> evaluation.
#include <map>

#include <gtest/gtest.h>

#include "config/ground_truth.h"
#include "core/engine.h"
#include "eval/cf_eval.h"
#include "eval/mismatch.h"
#include "test_helpers.h"

namespace auric {
namespace {

struct World {
  netsim::Topology topo;
  netsim::AttributeSchema schema;
  config::ParamCatalog catalog = config::ParamCatalog::standard();
  config::ConfigAssignment assignment;

  World(std::uint64_t seed, config::GroundTruthParams gt) {
    topo = test::small_generated_topology(seed, 2, 18);
    schema = netsim::AttributeSchema::standard(topo);
    gt.seed = seed + 100;
    assignment = config::GroundTruthModel(topo, schema, catalog, gt).assign();
  }
};

config::GroundTruthParams deterministic_world() {
  // Everything attribute-expressible: no noise, no leftovers, no trials, no
  // pockets, no hidden terrain.
  config::GroundTruthParams gt;
  gt.noise_rate = 0.0;
  gt.stale_rate = 0.0;
  gt.trial_param_prob = 0.0;
  gt.pocket_param_prob = 0.0;
  gt.terrain_param_prob = 0.0;
  return gt;
}

class IntegrationSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntegrationSeedTest, AttributePureWorldIsAlmostPerfectlyPredictable) {
  World world(GetParam(), deterministic_world());
  eval::CfEvalOptions options;
  options.max_dependent = 14;  // nothing is hidden; allow the full schema
  const eval::CfEvaluator evaluator(world.topo, world.schema, world.catalog, world.assignment,
                                    options);
  const double accuracy = eval::overall_accuracy(evaluator.evaluate_all());
  // Every value is a function of visible attributes, so CF should be
  // near-perfect (small residue from capped groups / interactions).
  EXPECT_GT(accuracy, 0.985);
}

TEST_P(IntegrationSeedTest, LocalPocketsAreWhereLocalBeatsGlobal) {
  config::GroundTruthParams gt = deterministic_world();
  gt.pocket_param_prob = 1.0;   // pockets on every parameter
  gt.pocket_site_frac = 0.25;   // and plenty of them
  World world(GetParam(), gt);

  eval::CfEvalOptions global_options;
  const eval::CfEvaluator global_eval(world.topo, world.schema, world.catalog,
                                      world.assignment, global_options);
  eval::CfEvalOptions local_options;
  local_options.local = true;
  const eval::CfEvaluator local_eval(world.topo, world.schema, world.catalog, world.assignment,
                                     local_options);

  const double global_acc = eval::overall_accuracy(global_eval.evaluate_all());
  const double local_acc = eval::overall_accuracy(local_eval.evaluate_all());
  EXPECT_GT(local_acc, global_acc);
}

TEST_P(IntegrationSeedTest, MismatchAccountingAddsUp) {
  config::GroundTruthParams gt;  // defaults: full mess, as in the benches
  World world(GetParam(), gt);
  eval::CfEvalOptions options;
  options.local = true;
  const eval::CfEvaluator evaluator(world.topo, world.schema, world.catalog, world.assignment,
                                    options);
  std::vector<eval::CfPrediction> mismatches;
  const auto results = evaluator.evaluate_all(std::nullopt, &mismatches);
  std::size_t rows = 0;
  std::size_t correct = 0;
  for (const auto& r : results) {
    rows += r.rows;
    correct += r.correct;
  }
  EXPECT_EQ(rows, correct + mismatches.size());
  const eval::MismatchBreakdown breakdown =
      eval::label_mismatches(mismatches, world.catalog, world.assignment);
  EXPECT_EQ(breakdown.total, mismatches.size());
  EXPECT_EQ(breakdown.total,
            breakdown.update_learner + breakdown.good_recommendation + breakdown.inconclusive);
}

TEST_P(IntegrationSeedTest, StaleLeftoversSurfaceAsGoodRecommendations) {
  config::GroundTruthParams gt = deterministic_world();
  gt.stale_rate = 0.05;  // only stale leftovers pollute the world
  World world(GetParam(), gt);
  eval::CfEvalOptions options;
  options.local = true;
  const eval::CfEvaluator evaluator(world.topo, world.schema, world.catalog, world.assignment,
                                    options);
  std::vector<eval::CfPrediction> mismatches;
  evaluator.evaluate_all(std::nullopt, &mismatches);
  ASSERT_GT(mismatches.size(), 0u);
  const eval::MismatchBreakdown breakdown =
      eval::label_mismatches(mismatches, world.catalog, world.assignment);
  // The dominant label must be "good recommendation": the network is wrong,
  // the learner is right.
  EXPECT_GT(breakdown.fraction(eval::MismatchLabel::kGoodRecommendation), 0.5);
}

TEST_P(IntegrationSeedTest, VoteThresholdMonotonicity) {
  config::GroundTruthParams gt;
  World world(GetParam(), gt);
  double previous_fallbacks = -1.0;
  for (double threshold : {0.55, 0.75, 0.95}) {
    eval::CfEvalOptions options;
    options.vote_threshold = threshold;
    const eval::CfEvaluator evaluator(world.topo, world.schema, world.catalog,
                                      world.assignment, options);
    std::size_t fallbacks = 0;
    for (const auto& r : evaluator.evaluate_all()) fallbacks += r.fallback_default;
    // Raising the support bar can only push more rows onto the default.
    EXPECT_GE(static_cast<double>(fallbacks), previous_fallbacks);
    previous_fallbacks = static_cast<double>(fallbacks);
  }
}

TEST_P(IntegrationSeedTest, EngineAgreesWithEvaluatorPredictions) {
  // The production path (AuricEngine::recommend with exclude_self) and the
  // evaluation path (CfEvaluator's leave-one-out loop) implement the same
  // protocol; they must produce identical predictions slot for slot.
  config::GroundTruthParams gt;
  World world(GetParam(), gt);
  eval::CfEvalOptions eval_options;
  eval_options.local = true;
  const eval::CfEvaluator evaluator(world.topo, world.schema, world.catalog, world.assignment,
                                    eval_options);
  core::AuricOptions engine_options;  // defaults match CfEvalOptions defaults
  const core::AuricEngine engine(world.topo, world.schema, world.catalog, world.assignment,
                                 engine_options);

  for (config::ParamId param : {world.catalog.id_of("capacityThreshold"),
                                world.catalog.id_of("pMax"),
                                world.catalog.id_of("hysA3Offset")}) {
    std::vector<eval::CfPrediction> mismatches;
    evaluator.evaluate_param(param, std::nullopt, &mismatches);
    // Evaluator's prediction per entity: actual unless listed as mismatch.
    std::map<std::size_t, config::ValueIndex> predicted_override;
    for (const auto& m : mismatches) predicted_override[m.entity] = m.predicted;

    const core::ParamView view =
        core::build_param_view(world.topo, world.catalog, world.assignment, param);
    for (std::size_t r = 0; r < view.rows(); r += 7) {  // sample every 7th row
      const core::Recommendation rec =
          engine.recommend(param, view.carrier[r], view.neighbor[r], /*exclude_self=*/true);
      const auto it = predicted_override.find(view.entity[r]);
      const config::ValueIndex expected =
          it != predicted_override.end() ? it->second : view.value[r];
      EXPECT_EQ(rec.value, expected)
          << "param " << world.catalog.at(param).name << " row " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrationSeedTest, ::testing::Values(31u, 32u));

}  // namespace
}  // namespace auric
