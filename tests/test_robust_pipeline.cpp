#include "smartlaunch/robust_pipeline.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "config/rulebook.h"
#include "core/engine.h"
#include "smartlaunch/pipeline.h"
#include "test_helpers.h"

namespace auric::smartlaunch {
namespace {

struct Fixture {
  netsim::Topology topo = test::small_generated_topology(11, 2, 16);
  netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  config::ParamCatalog catalog = config::ParamCatalog::standard();
  config::GroundTruthModel ground_truth{topo, schema, catalog, make_gt()};
  config::ConfigAssignment assignment = ground_truth.assign();
  core::AuricEngine engine{topo, schema, catalog, assignment};
  config::Rulebook rulebook{ground_truth, catalog};

  static config::GroundTruthParams make_gt() {
    config::GroundTruthParams params;
    params.seed = 21;
    return params;
  }

  /// A vendor-fault profile that guarantees many planned changes.
  static VendorFaultOptions always_stale() {
    VendorFaultOptions faults;
    faults.stale_template_prob = 1.0;
    faults.stale_slot_frac = 1.0;
    faults.typo_prob = 0.0;
    return faults;
  }

  std::vector<netsim::CarrierId> cohort(std::size_t n) const {
    std::vector<netsim::CarrierId> carriers;
    for (std::size_t c = 0; c < n && c < topo.carrier_count(); ++c) {
      carriers.push_back(static_cast<netsim::CarrierId>(c));
    }
    return carriers;
  }
};

std::vector<config::MoSetting> fake_settings(std::size_t n) {
  std::vector<config::MoSetting> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back({"MO=" + std::to_string(i), 0, 1});
  return out;
}

TEST(RobustExecutor, ChunksOversizedChangeSets) {
  EmsOptions reliable;
  reliable.flaky_timeout_prob = 0.0;
  EmsSimulator ems(1, reliable);  // structural limit: 32 settings per push
  RobustPushExecutor executor(ems);
  const auto result = executor.execute(0, fake_settings(100));
  EXPECT_EQ(result.outcome, RobustOutcome::kImplemented);
  EXPECT_EQ(result.applied, 100u);
  EXPECT_EQ(result.chunks, 4);    // ceil(100 / 32)
  EXPECT_EQ(result.attempts, 4);  // one clean push per chunk
  EXPECT_EQ(executor.journal_applied(0), 0u);  // journal cleared on success
}

TEST(RobustExecutor, RetriesTransientTimeoutsWithBackoff) {
  // Burst window: the first two executing pushes fault transiently, the
  // third succeeds. The executor must retry through the window and land
  // everything, resuming after the partially applied settings.
  EmsOptions options;
  options.flaky_timeout_prob = 0.0;
  options.faults.burst_every = 1000;
  options.faults.burst_length = 2;
  options.faults.burst_timeout_prob = 1.0;
  EmsSimulator ems(1, options);
  RobustPushExecutor::Options exec_options;
  exec_options.retry.max_attempts = 4;
  RobustPushExecutor executor(ems, exec_options);
  const auto result = executor.execute(0, fake_settings(20));
  EXPECT_EQ(result.outcome, RobustOutcome::kRecovered);
  EXPECT_EQ(result.applied, 20u);
  EXPECT_EQ(result.retries, 2);
  EXPECT_GT(result.backoff_ms, 0.0);
}

TEST(RobustExecutor, ExhaustedRetriesAreTerminalAndJournaled) {
  EmsOptions options;
  options.flaky_timeout_prob = 1.0;  // every push faults
  EmsSimulator ems(1, options);
  RobustPushExecutor::Options exec_options;
  exec_options.retry.max_attempts = 3;
  RobustPushExecutor executor(ems, exec_options);
  const auto result = executor.execute(0, fake_settings(20));
  EXPECT_EQ(result.outcome, RobustOutcome::kFalloutTerminal);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_LT(result.applied, 20u);
  // Partial progress is journaled for an idempotent later resume.
  EXPECT_EQ(executor.journal_applied(0), result.applied);
  EXPECT_EQ(executor.breaker().consecutive_failures(), 1);
}

TEST(RobustExecutor, ResumesFromJournalAfterTerminalFailure) {
  // Three-push burst window with a 2-attempt budget: the first execute()
  // exhausts retries mid-window and journals its partial progress; the
  // second execute() resumes past the window and completes as recovered.
  EmsOptions options;
  options.flaky_timeout_prob = 0.0;
  options.faults.burst_every = 1000;
  options.faults.burst_length = 3;
  options.faults.burst_timeout_prob = 1.0;
  EmsSimulator ems(1, options);
  RobustPushExecutor::Options exec_options;
  exec_options.retry.max_attempts = 2;
  RobustPushExecutor executor(ems, exec_options);

  const auto first = executor.execute(0, fake_settings(20));
  EXPECT_EQ(first.outcome, RobustOutcome::kFalloutTerminal);
  const std::size_t journaled = executor.journal_applied(0);
  EXPECT_EQ(journaled, first.applied);

  const auto second = executor.execute(0, fake_settings(20));
  EXPECT_EQ(second.outcome, RobustOutcome::kRecovered);
  EXPECT_EQ(second.applied, 20u);
  EXPECT_EQ(executor.journal_applied(0), 0u);
}

TEST(RobustExecutor, AbortsCleanlyWhenCarrierUnlockedOutOfBand) {
  EmsOptions reliable;
  reliable.flaky_timeout_prob = 0.0;
  EmsSimulator ems(1, reliable);
  ems.unlock_out_of_band(0);
  RobustPushExecutor executor(ems);
  const auto result = executor.execute(0, fake_settings(10));
  EXPECT_EQ(result.outcome, RobustOutcome::kAbortedUnlocked);
  EXPECT_EQ(result.attempts, 0);  // no push against a live carrier
  EXPECT_EQ(result.applied, 0u);
  // A clean abort is not an EMS health signal.
  EXPECT_EQ(result.retries, 0);
  EXPECT_EQ(executor.breaker().consecutive_failures(), 0);
}

TEST(RobustExecutor, RecoversLockFlapsByRelocking) {
  EmsOptions options;
  options.flaky_timeout_prob = 0.0;
  options.faults.lock_flap_prob = 0.35;
  options.seed = 5;
  EmsSimulator ems(8, options);
  RobustPushExecutor::Options exec_options;
  exec_options.retry.max_attempts = 6;
  RobustPushExecutor executor(ems, exec_options);
  std::size_t recovered = 0;
  for (netsim::CarrierId c = 0; c < 8; ++c) {
    const auto result = executor.execute(c, fake_settings(16));
    ASSERT_TRUE(result.outcome == RobustOutcome::kImplemented ||
                result.outcome == RobustOutcome::kRecovered)
        << robust_outcome_name(result.outcome);
    EXPECT_EQ(result.applied, 16u);
    if (result.outcome == RobustOutcome::kRecovered) ++recovered;
  }
  EXPECT_GT(recovered, 0u);        // some flaps happened at prob 0.35
  EXPECT_GT(ems.lock_cycles(), 0u);  // and were recovered via re-lock
}

TEST(RobustPipeline, BeatsNaivePipelineUnderTransientFaults) {
  Fixture f;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, Fixture::always_stale());
  const KpiModel kpi(f.topo, f.catalog, f.assignment);
  const auto cohort = f.cohort(60);

  EmsOptions flaky;
  flaky.flaky_timeout_prob = 0.30;

  EmsSimulator naive_ems(f.topo.carrier_count(), flaky);
  PipelineOptions naive_options;
  naive_options.premature_unlock_prob = 0.0;
  SmartLaunchPipeline naive(controller, naive_ems, kpi, naive_options);
  const SmartLaunchReport naive_report = naive.run(cohort);

  EmsSimulator robust_ems(f.topo.carrier_count(), flaky);
  RobustPipelineOptions robust_options;
  robust_options.premature_unlock_prob = 0.0;
  RobustLaunchController robust(controller, robust_ems, kpi, robust_options);
  const RobustLaunchReport robust_report = robust.run(cohort);

  EXPECT_EQ(robust_report.change_recommended, naive_report.change_recommended);
  const std::size_t naive_fallouts =
      naive_report.fallout_unlocked + naive_report.fallout_timeout;
  EXPECT_GT(naive_fallouts, 0u);  // 30% flaky must hurt the naive path
  EXPECT_LT(robust_report.terminal_fallouts(), naive_fallouts);
  EXPECT_GT(robust_report.implemented, naive_report.implemented);
  EXPECT_GT(robust_report.recovered, 0u);
  EXPECT_EQ(robust_report.change_recommended,
            robust_report.implemented + robust_report.terminal_fallouts());
}

TEST(RobustPipeline, ChunkingEliminatesStructuralTimeouts) {
  Fixture f;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, Fixture::always_stale());
  const KpiModel kpi(f.topo, f.catalog, f.assignment);
  const auto cohort = f.cohort(30);

  // Tiny deadline: only ONE setting fits one push, so any multi-change
  // plan structurally times out on the naive path.
  EmsOptions tight;
  tight.flaky_timeout_prob = 0.0;
  tight.deadline_ms = 50.0;
  tight.command_ms = 50.0;
  tight.concurrency = 1;

  EmsSimulator naive_ems(f.topo.carrier_count(), tight);
  PipelineOptions naive_options;
  naive_options.premature_unlock_prob = 0.0;
  SmartLaunchPipeline naive(controller, naive_ems, kpi, naive_options);
  const SmartLaunchReport naive_report = naive.run(cohort);
  EXPECT_GT(naive_report.fallout_timeout, 0u);

  EmsSimulator robust_ems(f.topo.carrier_count(), tight);
  RobustPipelineOptions robust_options;
  robust_options.premature_unlock_prob = 0.0;
  RobustLaunchController robust(controller, robust_ems, kpi, robust_options);
  const RobustLaunchReport robust_report = robust.run(cohort);
  EXPECT_EQ(robust_report.fallout_terminal, 0u);
  EXPECT_GT(robust_report.chunked, 0u);
  EXPECT_EQ(robust_report.implemented, robust_report.change_recommended);
}

TEST(RobustPipeline, OutOfBandUnlockAbortsWithoutPushing) {
  Fixture f;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, Fixture::always_stale());
  const KpiModel kpi(f.topo, f.catalog, f.assignment);
  EmsOptions reliable;
  reliable.flaky_timeout_prob = 0.0;
  EmsSimulator ems(f.topo.carrier_count(), reliable);
  RobustPipelineOptions options;
  options.premature_unlock_prob = 1.0;  // every engineer jumps the gun
  RobustLaunchController robust(controller, ems, kpi, options);
  const RobustLaunchReport report = robust.run(f.cohort(12));
  EXPECT_EQ(report.aborted_unlocked, report.change_recommended);
  EXPECT_EQ(report.implemented, 0u);
  EXPECT_EQ(report.parameters_changed, 0u);
  for (const RobustLaunchRecord& record : report.records) {
    if (record.outcome == RobustOutcome::kAbortedUnlocked) {
      EXPECT_EQ(record.attempts, 0);  // aborted before touching the EMS
    }
  }
}

TEST(RobustPipeline, BreakerTripsToDegradedModeUnderPersistentFaults) {
  Fixture f;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, Fixture::always_stale());
  const KpiModel kpi(f.topo, f.catalog, f.assignment);
  EmsOptions sick;
  sick.flaky_timeout_prob = 0.0;
  sick.faults.persistent_fault_prob = 1.0;  // every carrier's EMS path is down
  EmsSimulator ems(f.topo.carrier_count(), sick);
  RobustPipelineOptions options;
  options.premature_unlock_prob = 0.0;
  options.executor.breaker.failure_threshold = 3;
  options.executor.breaker.cooldown_ops = 4;
  RobustLaunchController robust(controller, ems, kpi, options);
  const RobustLaunchReport report = robust.run(f.cohort(40));
  EXPECT_GE(report.breaker_trips, 1);
  EXPECT_GT(report.queued_degraded, 0u);   // degraded mode engaged
  EXPECT_GT(report.still_queued, 0u);      // the EMS never recovered
  EXPECT_EQ(report.implemented, 0u);
  EXPECT_EQ(report.drained, 0u);
  EXPECT_EQ(report.change_recommended,
            report.implemented + report.terminal_fallouts());
}

TEST(RobustPipeline, QueueDrainsWhenBreakerRecovers) {
  Fixture f;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, Fixture::always_stale());
  const KpiModel kpi(f.topo, f.catalog, f.assignment);

  // A burst outage long enough to trip the breaker, then a healthy EMS:
  // with a 2-attempt budget, 3 launches fail terminally (2 pushes each),
  // the breaker opens, a few launches queue, the half-open probe succeeds,
  // and the queue drains.
  EmsOptions options;
  options.flaky_timeout_prob = 0.0;
  options.faults.burst_every = 100000;
  options.faults.burst_length = 6;
  options.faults.burst_timeout_prob = 1.0;
  EmsSimulator ems(f.topo.carrier_count(), options);
  RobustPipelineOptions robust_options;
  robust_options.premature_unlock_prob = 0.0;
  robust_options.executor.retry.max_attempts = 2;
  robust_options.executor.breaker.failure_threshold = 3;
  robust_options.executor.breaker.cooldown_ops = 2;
  RobustLaunchController robust(controller, ems, kpi, robust_options);
  const RobustLaunchReport report = robust.run(f.cohort(40));

  EXPECT_GE(report.breaker_trips, 1);
  EXPECT_GT(report.queued_degraded, 0u);
  EXPECT_EQ(report.still_queued, 0u);  // everything drained post-recovery
  EXPECT_EQ(report.drained, report.queued_degraded);
  EXPECT_GT(ems.lock_cycles(), 0u);  // drains re-lock on-air carriers
  EXPECT_EQ(report.change_recommended,
            report.implemented + report.terminal_fallouts());
}

TEST(RobustPipeline, DeterministicUnderFixedSeed) {
  Fixture f;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, Fixture::always_stale());
  const KpiModel kpi(f.topo, f.catalog, f.assignment);
  EmsOptions faulty;
  faulty.flaky_timeout_prob = 0.25;
  faulty.faults.lock_flap_prob = 0.05;
  faulty.faults.persistent_fault_prob = 0.05;
  const auto cohort = f.cohort(50);

  const auto run_once = [&] {
    EmsSimulator ems(f.topo.carrier_count(), faulty);
    RobustLaunchController robust(controller, ems, kpi, RobustPipelineOptions{});
    return robust.run(cohort);
  };
  const RobustLaunchReport a = run_once();
  const RobustLaunchReport b = run_once();
  EXPECT_EQ(a.implemented, b.implemented);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.chunked, b.chunked);
  EXPECT_EQ(a.queued_degraded, b.queued_degraded);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.aborted_unlocked, b.aborted_unlocked);
  EXPECT_EQ(a.fallout_terminal, b.fallout_terminal);
  EXPECT_EQ(a.parameters_changed, b.parameters_changed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.breaker_trips, b.breaker_trips);
  EXPECT_DOUBLE_EQ(a.total_backoff_ms, b.total_backoff_ms);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome) << i;
    EXPECT_EQ(a.records[i].changes_applied, b.records[i].changes_applied) << i;
  }
}

TEST(RobustOutcomeNames, Stable) {
  EXPECT_STREQ(robust_outcome_name(RobustOutcome::kRecovered), "recovered");
  EXPECT_STREQ(robust_outcome_name(RobustOutcome::kQueuedDegraded), "queued-degraded");
  EXPECT_STREQ(robust_outcome_name(RobustOutcome::kFalloutTerminal), "fallout-terminal");
  EXPECT_STREQ(robust_outcome_name(RobustOutcome::kRolledBack), "rolled-back");
}

/// A partially stale vendor profile: templates are always out of date but
/// corrupt only a fraction of the slots, so the vendor (pre-push) quality
/// stays well above the KPI floor and the gate has headroom to detect a
/// degradation.
VendorFaultOptions partially_stale() {
  VendorFaultOptions faults;
  faults.stale_template_prob = 1.0;
  faults.stale_slot_frac = 0.3;
  faults.typo_prob = 0.0;
  return faults;
}

/// A push policy that accepts thinly-voted recommendations: plans grow to
/// the multi-setting change sets (≈7–13 slots here) where a fault-aborted
/// partial apply leaves enough unapplied corrections to drag the KPI below
/// the gate's floors. The production default (min_votes 8) prunes plans to
/// 1–3 settings on this small fixture, too few for a partial apply to ever
/// out-penalize the deviations it fixes.
PushPolicy relaxed_policy() {
  PushPolicy policy;
  policy.min_votes = 2;
  return policy;
}

/// Deterministic correlated-outage EMS: pushes whose 0-based index i has
/// i % every < length time out transiently; every other push is clean.
/// Concurrency 1 gives per-setting waves, so a transient fault can abort
/// mid-plan and leave a KPI-degrading partial apply even on the small
/// change sets this fixture plans (at the default concurrency of 4 a
/// sub-wave plan aborts before anything lands).
EmsOptions burst_ems(int every, int length) {
  EmsOptions options;
  options.flaky_timeout_prob = 0.0;
  options.concurrency = 1;
  options.faults.burst_every = every;
  options.faults.burst_length = length;
  options.faults.burst_timeout_prob = 1.0;
  return options;
}

TEST(RollbackGate, SilentOnHealthyEms) {
  Fixture f;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, partially_stale(),
                                    relaxed_policy());
  const KpiModel kpi(f.topo, f.catalog, f.assignment);
  EmsOptions reliable;
  reliable.flaky_timeout_prob = 0.0;
  EmsSimulator ems(f.topo.carrier_count(), reliable);
  RobustPipelineOptions options;
  options.premature_unlock_prob = 0.0;
  RobustLaunchController robust(controller, ems, kpi, options);
  const RobustLaunchReport report = robust.run(f.cohort(60));
  EXPECT_GT(report.implemented, 0u);
  // No faults -> every push lands completely -> no partial-apply degradation
  // -> the gate never fires.
  EXPECT_EQ(report.rollbacks, 0u);
  EXPECT_EQ(report.rolled_back, 0u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(report.rollback_failed, 0u);
  EXPECT_TRUE(robust.quarantine().empty());
}

TEST(RollbackGate, RevertsKpiBreachingPartialApplies) {
  Fixture f;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, partially_stale(),
                                    relaxed_policy());
  const KpiModel kpi(f.topo, f.catalog, f.assignment);
  // Two-fault bursts against a 2-attempt budget: forward pushes regularly
  // exhaust their retries mid-plan, leaving KPI-degrading partial applies;
  // the clean third slot of each burst period lets rollbacks land.
  EmsSimulator ems(f.topo.carrier_count(), burst_ems(3, 2));
  RobustPipelineOptions options;
  options.premature_unlock_prob = 0.0;
  options.executor.retry.max_attempts = 2;
  options.executor.breaker.failure_threshold = 1000;  // keep the breaker out of the way
  RobustLaunchController robust(controller, ems, kpi, options);
  const RobustLaunchReport report = robust.run(f.cohort(60));

  EXPECT_GT(report.rollbacks, 0u);    // breaches were detected and reverted
  EXPECT_GT(report.reattempted, 0u);  // and the launches were re-attempted
  EXPECT_EQ(report.change_recommended,
            report.implemented + report.terminal_fallouts());
  bool saw_rolled_back = false;
  for (const RobustLaunchRecord& record : report.records) {
    if (record.outcome != RobustOutcome::kRolledBack || record.quarantine_skipped) continue;
    saw_rolled_back = true;
    // A completed rollback leaves the carrier exactly on its vendor config.
    EXPECT_EQ(record.changes_applied, 0u);
    EXPECT_DOUBLE_EQ(record.post_quality, record.pre_quality);
    EXPECT_GT(record.rollbacks, 0);
    EXPECT_TRUE(record.quarantined);  // kRolledBack persists only via the cap
  }
  EXPECT_TRUE(saw_rolled_back);
}

TEST(RollbackGate, RollbackPushRecoversFromTransientFault) {
  Fixture f;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, partially_stale(),
                                    relaxed_policy());
  const KpiModel kpi(f.topo, f.catalog, f.assignment);
  // Three-fault bursts: a rollback issued right after a terminal forward
  // push (two faults) lands inside the burst window, faults transiently,
  // and must retry through it — the rollback path exercises the same
  // recovery machinery as the forward path.
  EmsSimulator ems(f.topo.carrier_count(), burst_ems(5, 3));
  RobustPipelineOptions options;
  options.premature_unlock_prob = 0.0;
  options.executor.retry.max_attempts = 2;
  options.executor.breaker.failure_threshold = 1000;
  RobustLaunchController robust(controller, ems, kpi, options);
  const RobustLaunchReport report = robust.run(f.cohort(60));
  EXPECT_GT(report.rollbacks, 0u);
  EXPECT_GT(report.rollback_retries, 0u);  // a rollback push faulted and recovered
  EXPECT_EQ(report.change_recommended,
            report.implemented + report.terminal_fallouts());
}

TEST(RollbackGate, QuarantineSkipsRepeatOffender) {
  Fixture f;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, partially_stale(),
                                    relaxed_policy());
  const KpiModel kpi(f.topo, f.catalog, f.assignment);
  EmsSimulator ems(f.topo.carrier_count(), burst_ems(3, 2));
  RobustPipelineOptions options;
  options.premature_unlock_prob = 0.0;
  options.executor.retry.max_attempts = 2;
  options.executor.breaker.failure_threshold = 1000;
  RobustLaunchController robust(controller, ems, kpi, options);
  const RobustLaunchReport report = robust.run(f.cohort(60));

  netsim::CarrierId offender = netsim::kInvalidCarrier;
  for (const RobustLaunchRecord& record : report.records) {
    if (record.quarantined) {
      offender = record.carrier;
      break;
    }
  }
  ASSERT_NE(offender, netsim::kInvalidCarrier);
  ASSERT_GE(robust.quarantine().at(offender), 2);

  // A manual relaunch of a quarantined carrier is refused up front: vendor
  // config only, no pushes, no EMS traffic.
  const RobustLaunchRecord again = robust.launch(offender);
  EXPECT_EQ(again.outcome, RobustOutcome::kRolledBack);
  EXPECT_TRUE(again.quarantine_skipped);
  EXPECT_EQ(again.attempts, 0);
  EXPECT_EQ(again.changes_applied, 0u);
}

TEST(RollbackGate, TerminalFalloutClearsJournal) {
  Fixture f;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, Fixture::always_stale());
  const KpiModel kpi(f.topo, f.catalog, f.assignment);
  EmsOptions sick;
  sick.flaky_timeout_prob = 1.0;  // every push faults transiently
  sick.concurrency = 1;           // per-setting waves: partials can land
  EmsSimulator ems(f.topo.carrier_count(), sick);
  RobustPipelineOptions options;
  options.premature_unlock_prob = 0.0;
  options.executor.retry.max_attempts = 2;
  options.executor.breaker.failure_threshold = 1000;  // no deferrals, only terminals
  options.rollback.enabled = false;  // isolate the journal-clearing contract
  RobustLaunchController robust(controller, ems, kpi, options);
  // Find a carrier whose launch terminates with a journaled partial apply;
  // not every carrier plans changes, and some partials abort at zero.
  bool found = false;
  for (netsim::CarrierId c = 0; c < f.topo.carrier_count() && !found; ++c) {
    const RobustLaunchRecord record = robust.launch(c);
    if (record.changes_planned == 0) continue;
    ASSERT_EQ(record.outcome, RobustOutcome::kFalloutTerminal) << c;
    if (record.changes_applied == 0) continue;
    found = true;
    // The partial apply was journaled by the executor, but a terminal launch
    // gives the entry up: a later manual relaunch must re-plan from scratch
    // instead of resuming a stale partial apply.
    EXPECT_EQ(robust.executor().journal_applied(c), 0u);
  }
  EXPECT_TRUE(found);
}

TEST(RollbackGate, PersistedQuarantineSurvivesRestart) {
  Fixture f;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, partially_stale(),
                                    relaxed_policy());
  const KpiModel kpi(f.topo, f.catalog, f.assignment);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "auric_robust_resume").string();
  std::filesystem::remove_all(dir);

  RobustPipelineOptions options;
  options.premature_unlock_prob = 0.0;
  options.executor.retry.max_attempts = 2;
  options.executor.breaker.failure_threshold = 1000;
  options.state_dir = dir;

  netsim::CarrierId offender = netsim::kInvalidCarrier;
  {
    EmsSimulator ems(f.topo.carrier_count(), burst_ems(3, 2));
    RobustLaunchController first(controller, ems, kpi, options);
    const RobustLaunchReport report = first.run(f.cohort(60));
    for (const RobustLaunchRecord& record : report.records) {
      if (record.quarantined) {
        offender = record.carrier;
        break;
      }
    }
    ASSERT_NE(offender, netsim::kInvalidCarrier);
  }

  // A fresh process (new EMS, new executor) resuming from the checkpoint
  // must still refuse the quarantined carrier.
  EmsSimulator ems(f.topo.carrier_count(), burst_ems(3, 2));
  options.resume = true;
  RobustLaunchController second(controller, ems, kpi, options);
  const std::vector<netsim::CarrierId> relaunch = {offender};
  const RobustLaunchReport report = second.run(relaunch);
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_TRUE(report.records[0].quarantine_skipped);
  EXPECT_EQ(report.records[0].outcome, RobustOutcome::kRolledBack);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace auric::smartlaunch
