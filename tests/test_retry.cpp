#include "util/retry.h"

#include <gtest/gtest.h>

namespace auric::util {
namespace {

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.base_backoff_ms = 100.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 350.0;
  policy.jitter_frac = 0.0;
  EXPECT_DOUBLE_EQ(backoff_ms(policy, 1, 7), 100.0);
  EXPECT_DOUBLE_EQ(backoff_ms(policy, 2, 7), 200.0);
  EXPECT_DOUBLE_EQ(backoff_ms(policy, 3, 7), 350.0);  // capped, not 400
  EXPECT_DOUBLE_EQ(backoff_ms(policy, 9, 7), 350.0);
  EXPECT_DOUBLE_EQ(backoff_ms(policy, 0, 7), 0.0);
}

TEST(RetryPolicy, JitterIsBoundedAndDeterministic) {
  RetryPolicy policy;
  policy.base_backoff_ms = 1000.0;
  policy.jitter_frac = 0.25;
  const double a = backoff_ms(policy, 1, 42);
  const double b = backoff_ms(policy, 1, 42);
  EXPECT_DOUBLE_EQ(a, b);  // same seed, same wait
  EXPECT_GE(a, 750.0);
  EXPECT_LT(a, 1250.0);
  // Different seeds explore the jitter window.
  bool differs = false;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    if (backoff_ms(policy, 1, seed) != a) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RetryPolicy, TotalBackoffSumsTheSchedule) {
  RetryPolicy policy;
  policy.base_backoff_ms = 100.0;
  policy.jitter_frac = 0.0;
  policy.max_backoff_ms = 1000.0;
  EXPECT_DOUBLE_EQ(total_backoff_ms(policy, 3, 1), 100.0 + 200.0 + 400.0);
  EXPECT_DOUBLE_EQ(total_backoff_ms(policy, 0, 1), 0.0);
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailures) {
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  CircuitBreaker breaker(options);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.record_success();  // success resets the consecutive count
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreaker, CooldownHalfOpensThenProbeCloses) {
  CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.cooldown_ops = 2;
  CircuitBreaker breaker(options);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow());  // refused, cooldown 1 left
  EXPECT_FALSE(breaker.allow());  // refused, transitions to half-open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.refusals(), 2);
  EXPECT_TRUE(breaker.allow());  // the probe
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());
}

TEST(CircuitBreaker, FailedProbeReopens) {
  CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.cooldown_ops = 1;
  CircuitBreaker breaker(options);
  breaker.record_failure();
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();  // probe fails
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
}

TEST(CircuitStateNames, Stable) {
  EXPECT_STREQ(circuit_state_name(CircuitBreaker::State::kClosed), "closed");
  EXPECT_STREQ(circuit_state_name(CircuitBreaker::State::kOpen), "open");
  EXPECT_STREQ(circuit_state_name(CircuitBreaker::State::kHalfOpen), "half-open");
}

TEST(CircuitStateNames, RoundTripAndRejectUnknown) {
  for (const auto state : {CircuitBreaker::State::kClosed, CircuitBreaker::State::kOpen,
                           CircuitBreaker::State::kHalfOpen}) {
    EXPECT_EQ(circuit_state_from_name(circuit_state_name(state)), state);
  }
  EXPECT_THROW(circuit_state_from_name("wedged"), std::invalid_argument);
  EXPECT_THROW(circuit_state_from_name(""), std::invalid_argument);
}

TEST(CircuitBreaker, SnapshotRestoreContinuesSequence) {
  CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.cooldown_ops = 2;
  CircuitBreaker original(options);
  original.record_failure();     // trips open
  EXPECT_FALSE(original.allow());  // cooldown 1 left

  // Restore mid-cooldown into a fresh breaker: the open -> half-open ->
  // probe sequence must continue exactly where the original stood.
  CircuitBreaker resumed(options);
  resumed.restore(original.snapshot());
  EXPECT_EQ(resumed.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(resumed.trips(), 1);
  EXPECT_EQ(resumed.refusals(), 1);
  EXPECT_FALSE(resumed.allow());  // exhausts cooldown -> half-open
  EXPECT_EQ(resumed.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(resumed.allow());   // the probe
  resumed.record_success();
  EXPECT_EQ(resumed.state(), CircuitBreaker::State::kClosed);

  // The original, stepped identically, agrees.
  EXPECT_FALSE(original.allow());
  EXPECT_TRUE(original.allow());
  original.record_success();
  EXPECT_EQ(original.state(), resumed.state());
  EXPECT_EQ(original.refusals(), resumed.refusals());
}

TEST(CircuitBreaker, RestoreRejectsCorruptSnapshots) {
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.cooldown_ops = 5;
  CircuitBreaker breaker(options);

  CircuitBreaker::Snapshot negative;
  negative.consecutive_failures = -1;
  EXPECT_THROW(breaker.restore(negative), std::invalid_argument);

  CircuitBreaker::Snapshot too_many_failures;
  too_many_failures.consecutive_failures = 4;  // >= threshold while closed
  EXPECT_THROW(breaker.restore(too_many_failures), std::invalid_argument);

  CircuitBreaker::Snapshot long_cooldown;
  long_cooldown.state = CircuitBreaker::State::kOpen;
  long_cooldown.trips = 1;
  long_cooldown.cooldown_remaining = 6;  // > cooldown_ops
  EXPECT_THROW(breaker.restore(long_cooldown), std::invalid_argument);

  // A failed restore must not half-apply: the breaker still works.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());
}

}  // namespace
}  // namespace auric::util
