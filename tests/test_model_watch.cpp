// ModelWatch + EngineDiff: the model-quality plane (DESIGN.md §17).
//
// Covers the per-parameter instrument registration (including the registry's
// 256-label-set cardinality cap and the over-cap degradation path), the
// day-over-day drift detectors (chi-square per parameter, PSI on the pooled
// support distribution), the KPI-gate outcome join, the /modelz document,
// and the relearn shadow-audit's engine diff.
#include "core/model_watch.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "config/ground_truth.h"
#include "core/engine.h"
#include "core/engine_diff.h"
#include "obs/metrics.h"
#include "test_helpers.h"

namespace auric::core {
namespace {

Recommendation rec_of(config::ParamId param, config::ValueIndex value,
                      RecommendationSource source, double support, double margin = 0.0) {
  Recommendation rec;
  rec.param = param;
  rec.value = value;
  rec.source = source;
  rec.support = support;
  rec.margin = margin;
  return rec;
}

TEST(ModelWatch, FullCatalogRegistersUnderTheLabelCap) {
  obs::MetricsRegistry registry;
  const config::ParamCatalog catalog = config::ParamCatalog::standard();
  ModelWatch watch(catalog, registry);

  // Every parameter gets its own label set on every family; the worst-case
  // family (3 sources x 65 params = 195 sets) stays under the 256 cap.
  EXPECT_EQ(registry.label_sets("auric_model_recommendations_total"), 3 * catalog.size());
  EXPECT_EQ(registry.label_sets("auric_model_gate_outcomes_total"), 2 * catalog.size());
  EXPECT_EQ(registry.label_sets("auric_model_support"), catalog.size());
  EXPECT_EQ(registry.label_sets("auric_model_margin"), catalog.size());
  EXPECT_EQ(registry.label_sets("auric_model_coverage"), catalog.size());
  EXPECT_EQ(registry.label_sets("auric_model_drift_chi2_p"), catalog.size());
  EXPECT_LE(registry.label_sets("auric_model_recommendations_total"), 256u);
  // Nothing was shunted to the shared unexported sink.
  EXPECT_EQ(registry.counter("obs_labels_dropped_total").value(), 0u);
}

TEST(ModelWatch, OverCapRegistryDegradesToTheSharedSinkSafely) {
  obs::MetricsRegistry registry;
  registry.set_label_limit(16);
  const config::ParamCatalog catalog = config::ParamCatalog::standard();
  ModelWatch watch(catalog, registry);

  // Past the cap registrations land on the drop counter, not the exporter...
  EXPECT_LE(registry.label_sets("auric_model_recommendations_total"), 16u);
  EXPECT_GT(registry.counter("obs_labels_dropped_total").value(), 0u);

  // ...and recording through the degraded instruments is still safe.
  for (std::size_t p = 0; p < catalog.size(); ++p) {
    watch.record(rec_of(static_cast<config::ParamId>(p), 0,
                        RecommendationSource::kLocalVote, 0.9, 0.5));
  }
  watch.roll_day();
  EXPECT_EQ(watch.days_rolled(), 1);
}

TEST(ModelWatch, RecordMirrorsSourcesSupportAndCoverage) {
  obs::MetricsRegistry registry;
  const config::ParamCatalog catalog = test::tiny_catalog();
  ModelWatch watch(catalog, registry);

  watch.record(rec_of(0, 3, RecommendationSource::kLocalVote, 1.0, 0.8));
  watch.record(rec_of(0, 3, RecommendationSource::kGlobalVote, 0.8, 0.4));
  watch.record(rec_of(0, 5, RecommendationSource::kRulebookDefault, 0.0));

  const std::string& name = catalog.at(0).name;
  EXPECT_EQ(registry
                .counter("auric_model_recommendations_total", "",
                         {{"param", name}, {"source", "local-vote"}})
                .value(),
            1u);
  EXPECT_EQ(registry
                .counter("auric_model_recommendations_total", "",
                         {{"param", name}, {"source", "global-vote"}})
                .value(),
            1u);
  EXPECT_EQ(registry
                .counter("auric_model_recommendations_total", "",
                         {{"param", name}, {"source", "rulebook-default"}})
                .value(),
            1u);
  std::vector<double> unit_bounds;
  for (int i = 1; i <= 10; ++i) unit_bounds.push_back(0.1 * i);
  EXPECT_EQ(
      registry.histogram("auric_model_support", unit_bounds, "", {{"param", name}}).count(),
      3u);

  // Coverage = voted / total, published at the day roll.
  watch.roll_day();
  EXPECT_NEAR(registry.gauge("auric_model_coverage", "", {{"param", name}}).value(), 2.0 / 3.0,
              1e-9);
}

TEST(ModelWatch, GateOutcomesJoinBackToTheParameter) {
  obs::MetricsRegistry registry;
  const config::ParamCatalog catalog = test::tiny_catalog();
  ModelWatch watch(catalog, registry);

  watch.record_gate_outcome(0, true);
  watch.record_gate_outcome(0, true);
  watch.record_gate_outcome(0, false);
  watch.record_gate_outcome(1, false);

  const std::string& name = catalog.at(0).name;
  EXPECT_EQ(registry
                .counter("auric_model_gate_outcomes_total", "",
                         {{"param", name}, {"outcome", "accepted"}})
                .value(),
            2u);
  EXPECT_EQ(registry
                .counter("auric_model_gate_outcomes_total", "",
                         {{"param", name}, {"outcome", "rolled_back"}})
                .value(),
            1u);
  EXPECT_EQ(registry
                .counter("auric_model_gate_outcomes_total", "",
                         {{"param", catalog.at(1).name}, {"outcome", "rolled_back"}})
                .value(),
            1u);
}

TEST(ModelWatch, ChiSquareFlagsAShiftedValueDistribution) {
  obs::MetricsRegistry registry;
  const config::ParamCatalog catalog = test::tiny_catalog();
  ModelWatch watch(catalog, registry);

  // No drift verdict until two days of counts exist.
  EXPECT_DOUBLE_EQ(watch.drift_p(0), 1.0);

  const auto day_of = [&](config::ValueIndex value, int n) {
    for (int i = 0; i < n; ++i) {
      watch.record(rec_of(0, value, RecommendationSource::kLocalVote, 0.9, 0.6));
    }
    watch.roll_day();
  };

  day_of(3, 200);  // day 1: baseline
  day_of(3, 200);  // day 2: identical distribution
  EXPECT_GT(watch.drift_p(0), 0.5);
  EXPECT_EQ(watch.drifted_params(), 0u);

  day_of(9, 200);  // day 3: the recommended value moved wholesale
  EXPECT_LT(watch.drift_p(0), 0.01);
  EXPECT_EQ(watch.drifted_params(), 1u);
  EXPECT_LT(registry.gauge("auric_model_drift_chi2_p", "", {{"param", catalog.at(0).name}})
                .value(),
            0.01);
  EXPECT_DOUBLE_EQ(registry.gauge("auric_model_drift_params_flagged").value(), 1.0);
  EXPECT_EQ(registry.counter("auric_model_days_total").value(), 3u);
}

TEST(ModelWatch, PsiTracksTheSupportDistribution) {
  obs::MetricsRegistry registry;
  const config::ParamCatalog catalog = test::tiny_catalog();
  ModelWatch watch(catalog, registry);

  const auto day_of = [&](double support, int n) {
    for (int i = 0; i < n; ++i) {
      watch.record(rec_of(0, 3, RecommendationSource::kLocalVote, support, 0.5));
    }
    watch.roll_day();
  };

  day_of(0.95, 300);
  day_of(0.95, 300);  // identical support profile: PSI ~ 0
  const double stable_psi = watch.psi();
  EXPECT_LT(stable_psi, 0.05);

  day_of(0.15, 300);  // support collapsed: PSI jumps
  EXPECT_GT(watch.psi(), stable_psi + 0.5);
  EXPECT_GT(registry.gauge("auric_model_drift_psi").value(), 0.5);
}

TEST(ModelWatch, ModelzJsonCarriesTheModelDocument) {
  obs::MetricsRegistry registry;
  const config::ParamCatalog catalog = test::tiny_catalog();
  ModelWatch watch(catalog, registry);
  watch.record(rec_of(0, 3, RecommendationSource::kLocalVote, 1.0, 1.0));
  watch.record_gate_outcome(0, true);
  watch.roll_day();

  const std::string json = watch.modelz_json();
  EXPECT_NE(json.find("\"days\":1"), std::string::npos);
  EXPECT_NE(json.find("\"psi\":"), std::string::npos);
  EXPECT_NE(json.find("\"drift_alpha\":0.01"), std::string::npos);
  EXPECT_NE(json.find("\"params\":["), std::string::npos);
  EXPECT_NE(json.find("\"param\":\"toySingular\""), std::string::npos);
  EXPECT_NE(json.find("\"local\":1"), std::string::npos);
  EXPECT_NE(json.find("\"gate_accepted\":1"), std::string::npos);
  EXPECT_NE(json.find("\"drift_p\":"), std::string::npos);
}

TEST(ModelWatch, EngineRecordsEveryRecommendationThroughTheWatch) {
  obs::MetricsRegistry registry;
  const netsim::Topology topo = test::small_generated_topology(5, 2, 10);
  const netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  const config::ParamCatalog catalog = config::ParamCatalog::standard();
  const config::ConfigAssignment assignment =
      config::GroundTruthModel(topo, schema, catalog).assign();

  AuricEngine engine(topo, schema, catalog, assignment);
  ModelWatch watch(catalog, registry);
  engine.set_watch(&watch);

  const std::vector<Recommendation> recs = engine.recommend_singular(0);
  ASSERT_FALSE(recs.empty());

  // Every emitted recommendation landed in exactly one source series.
  std::uint64_t recorded = 0;
  for (std::size_t p = 0; p < catalog.size(); ++p) {
    const std::string& name = catalog.at(static_cast<config::ParamId>(p)).name;
    for (const char* source : {"local-vote", "global-vote", "rulebook-default"}) {
      recorded += registry
                      .counter("auric_model_recommendations_total", "",
                               {{"param", name}, {"source", source}})
                      .value();
    }
  }
  EXPECT_EQ(recorded, recs.size());
}

TEST(EngineDiff, SelfDiffReportsZeroFlips) {
  const netsim::Topology topo = test::small_generated_topology(5, 2, 10);
  const netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  const config::ParamCatalog catalog = config::ParamCatalog::standard();
  const config::ConfigAssignment assignment =
      config::GroundTruthModel(topo, schema, catalog).assign();
  const AuricEngine engine(topo, schema, catalog, assignment);

  const EngineDiffReport report = diff_engines(engine, engine, 0, 1);
  EXPECT_EQ(report.carriers_sampled, topo.carrier_count());
  EXPECT_EQ(report.slots_compared, topo.carrier_count() * catalog.singular_ids().size());
  EXPECT_EQ(report.flips, 0u);
  EXPECT_EQ(report.source_changes, 0u);
  EXPECT_DOUBLE_EQ(report.flip_rate, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_support_delta, 0.0);
  EXPECT_TRUE(report.churn.empty());
}

TEST(EngineDiff, DegradedCandidateSurfacesFlipsAndChurn) {
  const netsim::Topology topo = test::small_generated_topology(5, 2, 10);
  const netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  const config::ParamCatalog catalog = config::ParamCatalog::standard();
  const config::ConfigAssignment assignment =
      config::GroundTruthModel(topo, schema, catalog).assign();
  const AuricEngine healthy(topo, schema, catalog, assignment);

  // A vote threshold above 1.0 can never be met: the candidate falls back to
  // the rule book everywhere — the degenerate model a shadow-audit exists to
  // catch before it serves.
  AuricOptions broken;
  broken.vote_threshold = 1.01;
  const AuricEngine fallback(topo, schema, catalog, assignment, broken);

  const EngineDiffReport report = diff_engines(healthy, fallback, 0, 1);
  EXPECT_GT(report.flips, 0u);
  EXPECT_GT(report.source_changes, 0u);
  EXPECT_GT(report.flip_rate, 0.0);
  EXPECT_LT(report.mean_support_delta, 0.0);  // defaults carry zero support
  ASSERT_FALSE(report.churn.empty());
  EXPECT_GE(report.churn.front().flips, report.churn.back().flips);

  const std::string json = report.json(3);
  EXPECT_NE(json.find("\"flip_rate\":"), std::string::npos);
  EXPECT_NE(json.find("\"top_churn\":["), std::string::npos);
  EXPECT_NE(report.text(3).find("value flips"), std::string::npos);
}

TEST(EngineDiff, SeededSampleIsDeterministic) {
  const netsim::Topology topo = test::small_generated_topology(5, 2, 10);
  const netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  const config::ParamCatalog catalog = config::ParamCatalog::standard();
  const config::ConfigAssignment assignment =
      config::GroundTruthModel(topo, schema, catalog).assign();
  const AuricEngine engine(topo, schema, catalog, assignment);
  AuricOptions global_only;
  global_only.use_proximity = false;
  const AuricEngine other(topo, schema, catalog, assignment, global_only);

  const EngineDiffReport a = diff_engines(engine, other, 10, 42);
  const EngineDiffReport b = diff_engines(engine, other, 10, 42);
  EXPECT_EQ(a.carriers_sampled, 10u);
  EXPECT_EQ(a.json(0), b.json(0));
}

TEST(EngineDiff, MismatchedEnginesThrow) {
  const netsim::Topology big = test::small_generated_topology(5, 2, 10);
  const netsim::Topology small = test::tiny_topology();
  const config::ParamCatalog catalog = config::ParamCatalog::standard();

  const netsim::AttributeSchema big_schema = netsim::AttributeSchema::standard(big);
  const config::ConfigAssignment big_assignment =
      config::GroundTruthModel(big, big_schema, catalog).assign();
  const AuricEngine big_engine(big, big_schema, catalog, big_assignment);

  const netsim::AttributeSchema small_schema = netsim::AttributeSchema::standard(small);
  const config::ConfigAssignment small_assignment =
      config::GroundTruthModel(small, small_schema, catalog).assign();
  const AuricEngine small_engine(small, small_schema, catalog, small_assignment);

  EXPECT_THROW(diff_engines(big_engine, small_engine, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace auric::core
