#include "obs/rules.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/sampler.h"

namespace auric::obs {
namespace {

MetricSample counter_sample(const std::string& name, double value, Labels labels = {}) {
  MetricSample s;
  s.kind = MetricSample::Kind::kCounter;
  s.name = name;
  s.labels = std::move(labels);
  s.value = value;
  return s;
}

MetricSample gauge_sample(const std::string& name, double value) {
  MetricSample s;
  s.kind = MetricSample::Kind::kGauge;
  s.name = name;
  s.value = value;
  return s;
}

MetricSample histogram_sample(const std::string& name, std::vector<double> bounds,
                              std::vector<std::uint64_t> buckets, Labels labels = {}) {
  MetricSample s;
  s.kind = MetricSample::Kind::kHistogram;
  s.name = name;
  s.labels = std::move(labels);
  s.bounds = std::move(bounds);
  s.buckets = std::move(buckets);
  for (std::uint64_t b : s.buckets) s.count += b;
  return s;
}

AlertRule threshold_rule(const std::string& name, const std::string& metric, double value,
                         int fire_for = 1, int resolve_for = 1) {
  AlertRule rule;
  rule.name = name;
  rule.kind = AlertRule::Kind::kThreshold;
  rule.metric = SeriesSelector::parse(metric);
  rule.op = AlertRule::Op::kGt;
  rule.value = value;
  rule.fire_for = fire_for;
  rule.resolve_for = resolve_for;
  return rule;
}

TEST(RuleEngine, AddRuleValidatesAndPreRegistersTheFiringGauge) {
  MetricsRegistry reg;
  RuleEngine engine(reg);
  engine.add_rule(threshold_rule("depth_high", "g", 5.0));
  EXPECT_EQ(engine.size(), 1u);
  // The gauge exists (at 0) before the rule ever fires, so a healthy run
  // still exports the series.
  EXPECT_EQ(reg.label_sets("obs_alerts_firing"), 1u);

  EXPECT_THROW(engine.add_rule(threshold_rule("depth_high", "g", 1.0)),
               std::invalid_argument);  // duplicate name
  EXPECT_THROW(engine.add_rule(threshold_rule("", "g", 1.0)), std::invalid_argument);
  AlertRule bad = threshold_rule("bad_streaks", "g", 1.0);
  bad.fire_for = 0;
  EXPECT_THROW(engine.add_rule(bad), std::invalid_argument);
  AlertRule no_metric;
  no_metric.name = "no_metric";
  EXPECT_THROW(engine.add_rule(no_metric), std::invalid_argument);

  AlertRule burn;
  burn.name = "burn";
  burn.kind = AlertRule::Kind::kBurnRate;
  burn.numerator = SeriesSelector::parse("num");
  burn.denominator = SeriesSelector::parse("den");
  burn.window_s = 10.0;
  burn.long_window_s = 5.0;  // long must exceed short
  EXPECT_THROW(engine.add_rule(burn), std::invalid_argument);
  burn.long_window_s = 60.0;
  EXPECT_NO_THROW(engine.add_rule(burn));
}

TEST(RuleEngine, ThresholdFiresAndResolvesWithHysteresis) {
  MetricsRegistry reg;
  RuleEngine engine(reg);
  engine.add_rule(threshold_rule("depth_high", "g", 5.0, /*fire_for=*/2, /*resolve_for=*/2));
  std::vector<std::string> log;
  engine.set_log([&](const std::string& line) { log.push_back(line); });

  Sampler sampler(reg);
  Gauge& firing_gauge = reg.gauge("obs_alerts_firing", "", {{"rule", "depth_high"}});
  const auto step = [&](double t, double v) {
    sampler.tick_with(t, {gauge_sample("g", v)});
    engine.evaluate(sampler, t);
  };

  step(1.0, 10.0);  // breach 1 of 2: not firing yet
  EXPECT_TRUE(engine.healthy());
  EXPECT_DOUBLE_EQ(firing_gauge.value(), 0.0);
  step(2.0, 10.0);  // breach 2 of 2: fires
  EXPECT_FALSE(engine.healthy());
  EXPECT_EQ(engine.firing(), std::vector<std::string>{"depth_high"});
  EXPECT_DOUBLE_EQ(firing_gauge.value(), 1.0);
  step(3.0, 1.0);  // clean 1 of 2: still firing
  EXPECT_FALSE(engine.healthy());
  step(4.0, 10.0);  // breach again: the clean streak resets
  step(5.0, 1.0);
  step(6.0, 1.0);  // clean 2 of 2: resolves
  EXPECT_TRUE(engine.healthy());
  EXPECT_DOUBLE_EQ(firing_gauge.value(), 0.0);

  const std::vector<RuleState> states = engine.states();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].times_fired, 1u);
  EXPECT_DOUBLE_EQ(states[0].firing_since, 2.0);
  ASSERT_TRUE(states[0].last_value.has_value());
  EXPECT_DOUBLE_EQ(*states[0].last_value, 1.0);
  EXPECT_EQ(engine.evaluations(), 6u);

  ASSERT_EQ(log.size(), 2u);
  EXPECT_NE(log[0].find("ALERT firing: depth_high"), std::string::npos);
  EXPECT_NE(log[1].find("ALERT resolved: depth_high"), std::string::npos);
  // Transitions are also counted in the registry.
  EXPECT_EQ(reg.counter("obs_alert_transitions_total", "",
                        {{"rule", "depth_high"}, {"to", "firing"}})
                .value(),
            1u);
  EXPECT_EQ(reg.counter("obs_alert_transitions_total", "",
                        {{"rule", "depth_high"}, {"to", "resolved"}})
                .value(),
            1u);
}

TEST(RuleEngine, RateOverWindowComparesThePerSecondIncrease) {
  MetricsRegistry reg;
  RuleEngine engine(reg);
  AlertRule rule;
  rule.name = "err_rate";
  rule.kind = AlertRule::Kind::kRateOverWindow;
  rule.metric = SeriesSelector::parse("errors_total");
  rule.op = AlertRule::Op::kGt;
  rule.value = 5.0;
  rule.window_s = 10.0;
  engine.add_rule(rule);

  Sampler sampler(reg);
  sampler.tick_with(0.0, {counter_sample("errors_total", 0)});
  engine.evaluate(sampler, 0.0);
  EXPECT_TRUE(engine.healthy());  // a single point has no rate: no breach

  sampler.tick_with(1.0, {counter_sample("errors_total", 2)});
  engine.evaluate(sampler, 1.0);
  EXPECT_TRUE(engine.healthy());  // 2/s <= 5/s

  sampler.tick_with(2.0, {counter_sample("errors_total", 100)});
  engine.evaluate(sampler, 2.0);
  EXPECT_FALSE(engine.healthy());  // (100 - 0) / 2 = 50/s
  const std::vector<RuleState> states = engine.states();
  ASSERT_TRUE(states[0].last_value.has_value());
  EXPECT_DOUBLE_EQ(*states[0].last_value, 50.0);
}

TEST(RuleEngine, RateRuleAggregatesAcrossShardLabels) {
  // Pins the fleet-wide semantics the default breaker_open_rate and
  // rollback_rate rules rely on under --shards N: every per-shard series
  // carries a `shard` label, the rule's selector does not name it, and a
  // subset match sums the matching series — so two shards each under the
  // threshold still breach it together.
  MetricsRegistry reg;
  RuleEngine engine(reg);
  AlertRule rule;
  rule.name = "breaker_open_rate";
  rule.kind = AlertRule::Kind::kRateOverWindow;
  rule.metric = SeriesSelector::parse("auric_breaker_transitions_total{to=\"open\"}");
  rule.op = AlertRule::Op::kGt;
  rule.value = 1.0;
  rule.window_s = 10.0;
  engine.add_rule(rule);

  const auto open_sample = [](const std::string& shard, double value) {
    return counter_sample("auric_breaker_transitions_total", value,
                          {{"to", "open"}, {"shard", shard}});
  };
  Sampler sampler(reg);
  sampler.tick_with(0.0, {open_sample("0", 0), open_sample("1", 0),
                          counter_sample("auric_breaker_transitions_total", 0,
                                         {{"to", "closed"}, {"shard", "0"}})});
  engine.evaluate(sampler, 0.0);
  EXPECT_TRUE(engine.healthy());

  // 0.8 opens/s per shard: below the 1/s threshold shard-by-shard, 1.6/s
  // fleet-wide. The rule must see the sum. The closed-transition series
  // races ahead but never matches the selector.
  sampler.tick_with(10.0, {open_sample("0", 8), open_sample("1", 8),
                           counter_sample("auric_breaker_transitions_total", 500,
                                          {{"to", "closed"}, {"shard", "0"}})});
  engine.evaluate(sampler, 10.0);
  EXPECT_FALSE(engine.healthy());
  const std::vector<RuleState> states = engine.states();
  ASSERT_TRUE(states[0].last_value.has_value());
  EXPECT_DOUBLE_EQ(*states[0].last_value, 1.6);
}

TEST(RuleEngine, AbsenceFiresWhileTheMetricIsMissing) {
  MetricsRegistry reg;
  RuleEngine engine(reg);
  AlertRule rule;
  rule.name = "heartbeat";
  rule.kind = AlertRule::Kind::kAbsence;
  rule.metric = SeriesSelector::parse("heartbeat_total");
  engine.add_rule(rule);

  Sampler sampler(reg);
  sampler.tick_with(0.0, {});
  engine.evaluate(sampler, 0.0);
  EXPECT_FALSE(engine.healthy());
  sampler.tick_with(1.0, {counter_sample("heartbeat_total", 1)});
  engine.evaluate(sampler, 1.0);
  EXPECT_TRUE(engine.healthy());
}

TEST(RuleEngine, BurnRateNeedsBothWindowsToBreach) {
  MetricsRegistry reg;
  RuleEngine engine(reg);
  AlertRule rule;
  rule.name = "fallout_burn";
  rule.kind = AlertRule::Kind::kBurnRate;
  rule.numerator = SeriesSelector::parse("bad_total");
  rule.denominator = SeriesSelector::parse("all_total");
  rule.op = AlertRule::Op::kGt;
  rule.value = 0.5;
  rule.window_s = 2.0;
  rule.long_window_s = 6.0;
  engine.add_rule(rule);

  // The denominator grows 10/s throughout; the numerator is silent until
  // t=9, then grows 10/s too (ratio 1 inside the short window).
  Sampler sampler(reg);
  const auto step = [&](double t) {
    const double bad = t <= 8.0 ? 0.0 : 10.0 * (t - 8.0);
    sampler.tick_with(t, {counter_sample("bad_total", bad),
                          counter_sample("all_total", 10.0 * t)});
    engine.evaluate(sampler, t);
  };
  for (double t = 0.0; t <= 9.0; t += 1.0) {
    step(t);
    EXPECT_TRUE(engine.healthy()) << "t=" << t;
  }
  // t=10: short window burns (ratio 1) but the long window is still diluted
  // by the quiet period -> the blip does NOT fire.
  step(10.0);
  EXPECT_TRUE(engine.healthy());
  // t=12: the long window has burned too ((40-0)/6)/10 = 0.67 -> fires.
  step(11.0);
  step(12.0);
  EXPECT_FALSE(engine.healthy());
}

TEST(RuleEngine, LoadTextParsesTheCsvDialect) {
  MetricsRegistry reg;
  RuleEngine engine(reg);
  const char* text =
      "# comment\n"
      "name,kind,metric,op,value,window_s,long_window_s,fire_for,resolve_for\n"
      "\n"
      "fallout,burn_rate,push_total{outcome=\"bad\",vendor=\"v1\"}/push_total,>,0.5,5,30,2,3\n"
      "breaker,rate_over_window,breaker_total{to=\"open\"},>=,1,10,,2,\n"
      "heartbeat,absence,ticks_total,>,0\n";
  EXPECT_EQ(engine.load_text(text), 3u);
  EXPECT_EQ(engine.size(), 3u);

  const std::vector<RuleState> states = engine.states();
  EXPECT_EQ(states[0].rule.kind, AlertRule::Kind::kBurnRate);
  // Commas inside {...} did not split the cell; '/' split num from den.
  EXPECT_EQ(states[0].rule.numerator.name, "push_total");
  ASSERT_EQ(states[0].rule.numerator.labels.size(), 2u);
  EXPECT_EQ(states[0].rule.denominator.name, "push_total");
  EXPECT_DOUBLE_EQ(states[0].rule.window_s, 5.0);
  EXPECT_DOUBLE_EQ(states[0].rule.long_window_s, 30.0);
  EXPECT_EQ(states[0].rule.fire_for, 2);
  EXPECT_EQ(states[0].rule.resolve_for, 3);
  EXPECT_EQ(states[1].rule.op, AlertRule::Op::kGe);
  EXPECT_EQ(states[1].rule.resolve_for, 1);  // trailing empty cell -> default
  EXPECT_EQ(states[2].rule.kind, AlertRule::Kind::kAbsence);
  EXPECT_DOUBLE_EQ(states[2].rule.window_s, 60.0);  // default
}

TEST(RuleEngine, LoadTextReportsOriginAndLineOnErrors) {
  MetricsRegistry reg;
  const auto expect_error = [&](const char* text, const char* fragment) {
    RuleEngine engine(reg);
    try {
      engine.load_text(text, "rules.csv");
      FAIL() << "expected std::invalid_argument for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("rules.csv:"), std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos) << e.what();
    }
  };
  expect_error("r,threshold,m,>\n", "name,kind,metric,op,value");
  expect_error("r,woops,m,>,1\n", "unknown rule kind");
  expect_error("r,threshold,m,~,1\n", "unknown rule op");
  expect_error("r,threshold,m,>,abc\n", "bad value");
  expect_error("r,burn_rate,no_slash,>,1,5,30\n", "num/den");
  expect_error("r,threshold,m,>,1\nr,threshold,m,>,2\n", "duplicate");
}

TEST(RuleEngine, ThresholdQuantileSuffixEvaluatesHistogramQuantiles) {
  // A `:p99` suffix on a threshold selector (series_csv column naming)
  // gates on Sampler::quantile() instead of the last plain value — the
  // serve plane's p99 latency rule depends on exactly this.
  MetricsRegistry reg;
  RuleEngine engine(reg);
  engine.set_log([](const std::string&) {});
  EXPECT_EQ(engine.load_text("lat_p99,threshold,lat_ms{endpoint=\"recommend\"}:p99,>,90\n"), 1u);
  const std::vector<RuleState> states = engine.states();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_DOUBLE_EQ(states[0].rule.quantile, 0.99);
  EXPECT_EQ(states[0].rule.metric.name, "lat_ms");  // the suffix was stripped
  ASSERT_EQ(states[0].rule.metric.labels.size(), 1u);

  Sampler sampler(reg);
  const Labels labels{{"endpoint", "recommend"}};
  // Missing-safe: no histogram in the snapshot -> no scalar -> no breach.
  sampler.tick_with(1.0, {});
  engine.evaluate(sampler, 1.0);
  EXPECT_TRUE(engine.healthy());
  // 90 of 100 observations <= 10 ms, 10 in (10, 100] -> p99 sits 90% into
  // the second bucket: 10 + 0.9 * 90 = 91 > 90 -> fires.
  sampler.tick_with(2.0, {histogram_sample("lat_ms", {10.0, 100.0}, {90, 10, 0}, labels)});
  engine.evaluate(sampler, 2.0);
  EXPECT_FALSE(engine.healthy());
  ASSERT_TRUE(engine.states()[0].last_value.has_value());
  EXPECT_DOUBLE_EQ(*engine.states()[0].last_value, 91.0);
  // Everything under 10 ms -> p99 = 9.9 -> resolves.
  sampler.tick_with(3.0, {histogram_sample("lat_ms", {10.0, 100.0}, {100, 0, 0}, labels)});
  engine.evaluate(sampler, 3.0);
  EXPECT_TRUE(engine.healthy());
}

TEST(RuleEngine, QuantileSuffixValidationAndLabelColonsDoNotCollide) {
  MetricsRegistry reg;
  const auto expect_error = [&](const char* text, const char* fragment) {
    RuleEngine engine(reg);
    try {
      engine.load_text(text, "rules.csv");
      FAIL() << "expected std::invalid_argument for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos) << e.what();
    }
  };
  expect_error("r,threshold,m:pxx,>,1\n", "quantile suffix");
  expect_error("r,threshold,m:p0,>,1\n", "quantile");
  expect_error("r,threshold,m:p100,>,1\n", "quantile");
  expect_error("r,rate_over_window,m:p99,>,1,10\n", "only valid on threshold");

  // A ':' inside a label value is data, not a quantile suffix.
  RuleEngine engine(reg);
  EXPECT_EQ(engine.load_text("r,threshold,m{path=\"a:p99\"},>,1\n"), 1u);
  EXPECT_LT(engine.states()[0].rule.quantile, 0.0);
  EXPECT_EQ(engine.states()[0].rule.metric.name, "m");
}

#ifdef AURIC_EXAMPLES_DIR
TEST(RuleEngine, ShippedDefaultRulesStayQuietWithoutServeTraffic) {
  // Pins the shipped examples/default.rules file: it must load, carry the
  // three serve-plane rules and the two model-drift rules, and fire NOTHING
  // when the serve series are absent — replay and bench runs load this
  // exact file.
  MetricsRegistry reg;
  RuleEngine engine(reg);
  engine.set_log([](const std::string&) {});
  EXPECT_EQ(engine.load_file(std::string(AURIC_EXAMPLES_DIR) + "/default.rules"), 9u);

  bool saw_shed_burn = false, saw_p99 = false, saw_degraded = false;
  bool saw_psi = false, saw_drifted = false;
  for (const RuleState& state : engine.states()) {
    if (state.rule.name == "serve_shed_burn") {
      saw_shed_burn = true;
      EXPECT_EQ(state.rule.kind, AlertRule::Kind::kBurnRate);
      EXPECT_EQ(state.rule.numerator.name, "auric_serve_shed_total");
      EXPECT_EQ(state.rule.denominator.name, "auric_serve_requests_total");
    } else if (state.rule.name == "serve_latency_p99") {
      saw_p99 = true;
      EXPECT_DOUBLE_EQ(state.rule.quantile, 0.99);
      EXPECT_EQ(state.rule.metric.name, "auric_serve_latency_ms");
    } else if (state.rule.name == "serve_degraded") {
      saw_degraded = true;
      EXPECT_EQ(state.rule.kind, AlertRule::Kind::kThreshold);
    } else if (state.rule.name == "model_support_psi") {
      saw_psi = true;
      EXPECT_EQ(state.rule.kind, AlertRule::Kind::kThreshold);
      EXPECT_EQ(state.rule.metric.name, "auric_model_drift_psi");
    } else if (state.rule.name == "model_params_drifted") {
      saw_drifted = true;
      EXPECT_EQ(state.rule.metric.name, "auric_model_drift_params_flagged");
    }
  }
  EXPECT_TRUE(saw_shed_burn && saw_p99 && saw_degraded);
  EXPECT_TRUE(saw_psi && saw_drifted);

  // A replay-shaped run: push/breaker series exist, serve series do not,
  // and the model-drift gauges sit at their healthy resting values (PSI 0,
  // nothing flagged) the way a freshly constructed ModelWatch exports them.
  Sampler sampler(reg);
  for (double t = 1.0; t <= 10.0; t += 1.0) {
    sampler.tick_with(t, {counter_sample("auric_push_outcomes_total", 10.0 * t,
                                         {{"outcome", "implemented"}}),
                          gauge_sample("auric_model_drift_psi", 0.0),
                          gauge_sample("auric_model_drift_params_flagged", 0.0)});
    engine.evaluate(sampler, t);
    EXPECT_TRUE(engine.healthy()) << "t=" << t;
  }
}

TEST(RuleEngine, ShippedServeRulesPageOnAMissingDaemon) {
  // Pins examples/serve.rules: the absence rule pages when auric_serve_up
  // vanishes, and resolves once the daemon exports again.
  MetricsRegistry reg;
  RuleEngine engine(reg);
  engine.set_log([](const std::string&) {});
  EXPECT_EQ(engine.load_file(std::string(AURIC_EXAMPLES_DIR) + "/serve.rules"), 5u);

  Sampler sampler(reg);
  double t = 0.0;
  for (int i = 0; i < 3; ++i) {  // fire_for=3 empty snapshots
    sampler.tick_with(t += 1.0, {});
    engine.evaluate(sampler, t);
  }
  EXPECT_FALSE(engine.healthy());
  const std::vector<std::string> firing = engine.firing();
  EXPECT_NE(std::find(firing.begin(), firing.end(), "serve_up_absent"), firing.end());

  for (int i = 0; i < 3; ++i) {  // resolve_for=2 healthy snapshots
    sampler.tick_with(t += 1.0, {gauge_sample("auric_serve_up", 1.0)});
    engine.evaluate(sampler, t);
  }
  EXPECT_TRUE(engine.healthy());
}
#endif  // AURIC_EXAMPLES_DIR

TEST(RuleEngine, HealthzJsonReflectsTheVerdict) {
  MetricsRegistry reg;
  RuleEngine engine(reg);
  engine.add_rule(threshold_rule("depth_high", "g", 5.0));
  engine.set_log([](const std::string&) {});

  Sampler sampler(reg);
  sampler.tick_with(1.0, {gauge_sample("g", 1.0)});
  engine.evaluate(sampler, 1.0);
  std::string json = engine.healthz_json();
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"rules\":1"), std::string::npos);
  EXPECT_NE(json.find("\"firing\":[]"), std::string::npos);

  sampler.tick_with(2.0, {gauge_sample("g", 9.0)});
  engine.evaluate(sampler, 2.0);
  json = engine.healthz_json();
  EXPECT_NE(json.find("\"status\":\"alerting\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"depth_high\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"threshold\""), std::string::npos);
  EXPECT_NE(json.find("\"since\":2"), std::string::npos);
  EXPECT_NE(json.find("\"value\":9"), std::string::npos);
}

TEST(RuleEngine, WiresAsAnOnTickHook) {
  MetricsRegistry reg;
  reg.gauge("g").set(10.0);
  RuleEngine engine(reg);
  engine.add_rule(threshold_rule("depth_high", "g", 5.0));
  engine.set_log([](const std::string&) {});
  Sampler sampler(reg);
  sampler.set_on_tick([&](double t) { engine.evaluate(sampler, t); });
  sampler.tick(1.0);  // the hook runs outside the ring lock: no deadlock
  EXPECT_EQ(engine.evaluations(), 1u);
  EXPECT_FALSE(engine.healthy());
}

}  // namespace
}  // namespace auric::obs
