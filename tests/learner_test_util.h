// Synthetic categorical datasets for learner tests.
#pragma once

#include "ml/classifier.h"
#include "ml/dataset.h"
#include "util/rng.h"

namespace auric::test {

/// Labels depend deterministically on attributes 0 and 1 (label = (a0 + 2*a1)
/// mod classes); attribute 2 is irrelevant. `noise` flips that fraction of
/// labels uniformly.
inline ml::CategoricalDataset rule_dataset(std::size_t rows, double noise, std::uint64_t seed,
                                           std::int32_t classes = 4) {
  util::Rng rng(seed);
  ml::CategoricalDataset data;
  data.columns.resize(3);
  data.cardinality = {4, 3, 5};
  data.column_names = {"a0", "a1", "irrelevant"};
  for (std::size_t r = 0; r < rows; ++r) {
    const auto a0 = static_cast<std::int32_t>(rng.uniform_int(0, 3));
    const auto a1 = static_cast<std::int32_t>(rng.uniform_int(0, 2));
    const auto a2 = static_cast<std::int32_t>(rng.uniform_int(0, 4));
    data.columns[0].push_back(a0);
    data.columns[1].push_back(a1);
    data.columns[2].push_back(a2);
    std::int32_t label = (a0 + 2 * a1) % classes;
    if (rng.bernoulli(noise)) label = static_cast<std::int32_t>(rng.uniform_int(0, classes - 1));
    data.labels.push_back(label);
  }
  for (std::int32_t c = 0; c < classes; ++c) data.class_values.push_back(c * 10);
  data.check();
  return data;
}

/// All row indices of a dataset.
inline std::vector<std::size_t> all_rows(const ml::CategoricalDataset& data) {
  std::vector<std::size_t> rows(data.rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return rows;
}

/// In-sample accuracy of a fitted classifier.
inline double train_accuracy(const ml::Classifier& model, const ml::CategoricalDataset& data) {
  const auto rows = all_rows(data);
  const auto preds = model.predict_rows(data, rows);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) hits += preds[i] == data.labels[i] ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(rows.size());
}

}  // namespace auric::test
