#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "learner_test_util.h"

namespace auric::ml {
namespace {

TEST(DecisionTree, MemorizesNoiselessRule) {
  const CategoricalDataset data = test::rule_dataset(400, 0.0, 1);
  DecisionTree tree;
  tree.fit(data, test::all_rows(data));
  EXPECT_DOUBLE_EQ(test::train_accuracy(tree, data), 1.0);
}

TEST(DecisionTree, GeneralizesToUnseenRows) {
  const CategoricalDataset train = test::rule_dataset(600, 0.0, 1);
  const CategoricalDataset fresh = test::rule_dataset(200, 0.0, 2);
  DecisionTree tree;
  tree.fit(train, test::all_rows(train));
  EXPECT_GT(test::train_accuracy(tree, fresh), 0.99);
}

TEST(DecisionTree, MajorityAtConflictingDuplicates) {
  CategoricalDataset data;
  data.columns = {{0, 0, 0, 0}};
  data.cardinality = {1};
  data.column_names = {"a"};
  data.labels = {1, 1, 1, 0};
  data.class_values = {10, 20};
  DecisionTree tree;
  tree.fit(data, test::all_rows(data));
  const std::vector<std::int32_t> codes{0};
  EXPECT_EQ(tree.predict(codes), 1);  // majority label
  EXPECT_EQ(tree.node_count(), 1u);   // no split possible
}

TEST(DecisionTree, DepthCapLimitsTree) {
  const CategoricalDataset data = test::rule_dataset(400, 0.0, 3);
  DecisionTreeOptions capped;
  capped.max_depth = 1;
  DecisionTree stump(capped);
  stump.fit(data, test::all_rows(data));
  EXPECT_LE(stump.depth(), 2);  // root + leaves
  DecisionTree full;
  full.fit(data, test::all_rows(data));
  EXPECT_GT(full.depth(), stump.depth());
}

TEST(DecisionTree, LearnsInteractionRule) {
  // XOR-style: label = (a0 ^ a1), not expressible by one attribute alone.
  util::Rng rng(5);
  CategoricalDataset data;
  data.columns.resize(2);
  data.cardinality = {2, 2};
  data.column_names = {"x", "y"};
  for (int i = 0; i < 400; ++i) {
    const auto a = static_cast<std::int32_t>(rng.uniform_int(0, 1));
    const auto b = static_cast<std::int32_t>(rng.uniform_int(0, 1));
    data.columns[0].push_back(a);
    data.columns[1].push_back(b);
    data.labels.push_back(a ^ b);
  }
  data.class_values = {0, 1};
  DecisionTree tree;
  tree.fit(data, test::all_rows(data));
  EXPECT_DOUBLE_EQ(test::train_accuracy(tree, data), 1.0);
}

TEST(DecisionTree, FeatureSamplingStillLearnsWithBudget) {
  const CategoricalDataset data = test::rule_dataset(800, 0.0, 7);
  DecisionTreeOptions options;
  options.max_features = 3;  // of 12 one-hot columns
  options.seed = 9;
  DecisionTree tree(options);
  tree.fit(data, test::all_rows(data));
  // Sampling slows learning but purity-driven growth still gets there.
  EXPECT_GT(test::train_accuracy(tree, data), 0.95);
}

TEST(DecisionTree, ExplainWalksRootToLeaf) {
  const CategoricalDataset data = test::rule_dataset(200, 0.0, 1);
  DecisionTree tree;
  tree.fit(data, test::all_rows(data));
  const std::string explanation = tree.explain(data.row_codes(0));
  EXPECT_NE(explanation.find("predict class#"), std::string::npos);
  EXPECT_NE(explanation.find(" -> "), std::string::npos);
}

TEST(DecisionTree, ErrorsBeforeFitAndOnEmptyFit) {
  DecisionTree tree;
  const std::vector<std::int32_t> codes{0, 0, 0};
  EXPECT_THROW(tree.predict(codes), std::logic_error);
  const CategoricalDataset data = test::rule_dataset(4, 0.0, 1);
  EXPECT_THROW(tree.fit(data, {}), std::invalid_argument);
}

TEST(DecisionTree, NoiseToleranceViaMajorityLeaves) {
  const CategoricalDataset noisy = test::rule_dataset(2000, 0.15, 11);
  const CategoricalDataset clean = test::rule_dataset(500, 0.0, 12);
  DecisionTree tree;
  tree.fit(noisy, test::all_rows(noisy));
  // Noise is iid so duplicated profiles resolve to the majority label; on a
  // clean holdout accuracy should be near-perfect.
  EXPECT_GT(test::train_accuracy(tree, clean), 0.97);
}

}  // namespace
}  // namespace auric::ml
