#include "util/args.h"

#include <gtest/gtest.h>

namespace auric::util {
namespace {

Args make(std::initializer_list<const char*> argv) {
  std::vector<const char*> full{"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(full.size()), full.data());
}

TEST(Args, EqualsAndSpaceSyntax) {
  Args args = make({"--scale=10", "--markets", "4"});
  EXPECT_EQ(args.get_int("scale", 1), 10);
  EXPECT_EQ(args.get_int("markets", 1), 4);
  args.check_unknown();
}

TEST(Args, DefaultsWhenAbsent) {
  Args args = make({});
  EXPECT_EQ(args.get_int("scale", 55), 55);
  EXPECT_EQ(args.get_string("csv", "none"), "none");
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.01), 0.01);
  EXPECT_FALSE(args.get_bool("local", false));
}

TEST(Args, BareBooleanFlag) {
  Args args = make({"--local"});
  EXPECT_TRUE(args.get_bool("local", false));
}

TEST(Args, BooleanSpellings) {
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=no"}).get_bool("x", true));
  EXPECT_THROW(make({"--x=maybe"}).get_bool("x", false), std::invalid_argument);
}

TEST(Args, RejectsMalformedNumbers) {
  EXPECT_THROW(make({"--n=abc"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(make({"--d=zz"}).get_double("d", 0), std::invalid_argument);
}

TEST(Args, UnknownFlagDetected) {
  Args args = make({"--tpyo=1"});
  args.get_int("typo", 0);
  EXPECT_THROW(args.check_unknown(), std::invalid_argument);
}

TEST(Args, RejectsPositional) {
  EXPECT_THROW(make({"positional"}), std::invalid_argument);
}

TEST(Args, HelpRequested) {
  Args args = make({"--help"});
  EXPECT_TRUE(args.help_requested());
  args.get_int("scale", 55, "dataset size");
  EXPECT_NE(args.usage().find("--scale"), std::string::npos);
  EXPECT_NE(args.usage().find("dataset size"), std::string::npos);
}

TEST(Args, NegativeNumberAsValue) {
  Args args = make({"--offset", "-5"});
  // "-5" does not start with "--", so it binds as the value.
  EXPECT_EQ(args.get_int("offset", 0), -5);
}

}  // namespace
}  // namespace auric::util
