// Incremental relearn (DESIGN.md §18): delta-applied engines must be
// indistinguishable from engines rebuilt from scratch — same views, same
// chi-square results bit-for-bit, same voting groups, same recommendations —
// across adds, updates, erases and label-alphabet changes; the drift
// threshold and the ModelWatch union trigger gate the re-test; and the
// per-parameter fan-out is byte-identical at any thread count.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/model_watch.h"
#include "test_helpers.h"

namespace auric::core {
namespace {

struct Fixture {
  netsim::Topology topo = test::chain_topology();
  config::ParamCatalog catalog = test::tiny_catalog();
  config::ConfigAssignment assignment = test::tiny_assignment(topo);
  netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);

  AuricOptions options() const {
    AuricOptions o;
    o.backoff_levels = 2;
    return o;
  }
};

std::vector<VotingModel::GroupSummary> sorted_groups(const VotingModel& model) {
  std::vector<VotingModel::GroupSummary> groups = model.group_summaries();
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  return groups;
}

/// Full structural + behavioral equality: maintained state, learned models
/// and the recommendations they produce. Doubles compare with EXPECT_EQ —
/// the bit-identical claim, not an epsilon.
void expect_engines_equal(const AuricEngine& a, const AuricEngine& b) {
  const auto& catalog = a.catalog();
  for (config::ParamId param = 0; param < static_cast<config::ParamId>(catalog.size());
       ++param) {
    SCOPED_TRACE("param " + std::to_string(param));
    const ParamView& va = a.view(param);
    const ParamView& vb = b.view(param);
    EXPECT_EQ(va.carrier, vb.carrier);
    EXPECT_EQ(va.neighbor, vb.neighbor);
    EXPECT_EQ(va.entity, vb.entity);
    EXPECT_EQ(va.value, vb.value);
    EXPECT_EQ(va.label, vb.label);
    EXPECT_EQ(va.labels.values, vb.labels.values);
    EXPECT_EQ(va.rows_by_carrier, vb.rows_by_carrier);
    EXPECT_EQ(va.carrier_offsets, vb.carrier_offsets);

    const DependencyModel& da = a.dependencies(param);
    const DependencyModel& db = b.dependencies(param);
    EXPECT_EQ(da.dependent, db.dependent);
    ASSERT_EQ(da.tests.size(), db.tests.size());
    for (std::size_t t = 0; t < da.tests.size(); ++t) {
      EXPECT_EQ(da.tests[t].ref, db.tests[t].ref);
      EXPECT_EQ(da.tests[t].result.statistic, db.tests[t].result.statistic);
      EXPECT_EQ(da.tests[t].result.df, db.tests[t].result.df);
      EXPECT_EQ(da.tests[t].result.p_value, db.tests[t].result.p_value);
    }

    const BackoffVoting& ba = a.voting(param);
    const BackoffVoting& bb = b.voting(param);
    ASSERT_EQ(ba.level_count(), bb.level_count());
    for (int level = 0; level < ba.level_count(); ++level) {
      SCOPED_TRACE("level " + std::to_string(level));
      const auto ga = sorted_groups(ba.model_at(level));
      const auto gb = sorted_groups(bb.model_at(level));
      ASSERT_EQ(ga.size(), gb.size());
      for (std::size_t g = 0; g < ga.size(); ++g) {
        EXPECT_EQ(ga[g].key, gb[g].key);
        EXPECT_EQ(ga[g].winner, gb[g].winner);
        EXPECT_EQ(ga[g].winner_count, gb[g].winner_count);
        EXPECT_EQ(ga[g].total, gb[g].total);
      }
    }
  }

  // The observable surface: every singular slot and every edge.
  const netsim::Topology& topo = a.topology();
  const auto expect_same = [](const Recommendation& ra, const Recommendation& rb) {
    EXPECT_EQ(ra.value, rb.value);
    EXPECT_EQ(ra.source, rb.source);
    EXPECT_EQ(ra.votes, rb.votes);
    EXPECT_EQ(ra.group_size, rb.group_size);
    EXPECT_EQ(ra.support, rb.support);
    EXPECT_EQ(ra.margin, rb.margin);
  };
  for (config::ParamId param : catalog.singular_ids()) {
    for (const netsim::Carrier& c : topo.carriers) {
      expect_same(a.recommend(param, c.id), b.recommend(param, c.id));
    }
  }
  for (config::ParamId param : catalog.pairwise_ids()) {
    for (const netsim::X2Edge& edge : topo.edges) {
      expect_same(a.recommend(param, edge.from, edge.to),
                  b.recommend(param, edge.from, edge.to));
    }
  }
}

TEST(IncrementalRelearn, AddUpdateEraseMatchesFromScratchRebuild) {
  Fixture f;
  // Two configured intra-frequency edges: one is unset before the engine
  // learns (the add case), the other erased afterwards.
  std::vector<std::size_t> configured_edges;
  for (std::size_t e = 0; e < f.topo.edge_count(); ++e) {
    if (f.assignment.pairwise[0].value[e] != config::kUnset) configured_edges.push_back(e);
  }
  ASSERT_GE(configured_edges.size(), 2u);
  const std::size_t edge_add = configured_edges[0];
  const std::size_t edge_erase = configured_edges[1];

  // Leave a few slots unset so the relearn can exercise the add path.
  f.assignment.singular[0].value[2] = config::kUnset;
  f.assignment.pairwise[0].value[edge_add] = config::kUnset;
  AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, f.options());

  config::ConfigAssignment next = f.assignment;
  next.singular[0].value[2] = 7;                        // add
  next.singular[0].value[4] = 7;                        // update (3 -> 7: existing label)
  next.singular[0].value[6] = config::kUnset;           // erase
  next.pairwise[0].value[edge_add] = 2;                 // add
  next.pairwise[0].value[edge_erase] = config::kUnset;  // erase

  IncrementalRelearnStats stats;
  engine.incremental_relearn(next, {}, &stats);
  EXPECT_EQ(stats.params_touched, 2u);
  EXPECT_EQ(stats.rows_added, 2u);
  EXPECT_EQ(stats.rows_erased, 2u);
  EXPECT_EQ(stats.rows_updated, 1u);
  // Exact mode re-tests every touched parameter.
  EXPECT_EQ(stats.params_retested, 2u);

  const AuricEngine fresh(f.topo, f.schema, f.catalog, next, f.options());
  expect_engines_equal(engine, fresh);
}

TEST(IncrementalRelearn, NewValueSplicesJustThatParameterAlphabet) {
  Fixture f;
  AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, f.options());

  // Value 9 never appears in tiny_assignment: the label alphabet of the
  // singular parameter grows, which must splice the label dimension in place
  // (label codes are value-sorted, so a new value recodes existing rows) and
  // force the dependency re-test — but never the O(rows x attrs) re-tally.
  config::ConfigAssignment next = f.assignment;
  next.singular[0].value[0] = 9;

  IncrementalRelearnStats stats;
  engine.incremental_relearn(next, {}, &stats);
  EXPECT_EQ(stats.params_touched, 1u);
  EXPECT_EQ(stats.params_remapped, 1u);
  EXPECT_EQ(stats.params_retested, 1u);

  expect_engines_equal(engine, AuricEngine(f.topo, f.schema, f.catalog, next, f.options()));

  // And shrinking the alphabet back splices too (the vanished value's label
  // column is dropped).
  config::ConfigAssignment back = f.assignment;
  IncrementalRelearnStats undo;
  engine.incremental_relearn(back, {}, &undo);
  EXPECT_EQ(undo.params_remapped, 1u);
  expect_engines_equal(engine, AuricEngine(f.topo, f.schema, f.catalog, back, f.options()));
}

TEST(IncrementalRelearn, RepeatedDeltasStayExactOverManyRounds) {
  Fixture f;
  AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, f.options());
  config::ConfigAssignment state = f.assignment;
  // A deterministic little walk: flip slots between the two observed values,
  // occasionally unsetting and restoring, so maintained rows churn heavily.
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = state.singular[0].value.size();
    for (std::size_t c = round % 3; c < n; c += 3) {
      auto& v = state.singular[0].value[c];
      v = (round % 2 == 0) ? (v == 3 ? 7 : 3) : (v == config::kUnset ? 3 : v);
    }
    state.singular[0].value[(round * 2) % n] = config::kUnset;
    engine.incremental_relearn(state);
    expect_engines_equal(engine,
                         AuricEngine(f.topo, f.schema, f.catalog, state, f.options()));
  }
}

TEST(IncrementalRelearn, DriftThresholdGatesTheRetest) {
  Fixture f;
  AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, f.options());

  // One slot out of 16 changes: far below a 0.5 threshold, so the dependency
  // scan must NOT re-run; the vote tables still absorb the delta.
  config::ConfigAssignment next = f.assignment;
  next.singular[0].value[0] = 7;
  IncrementalRelearnOptions gated;
  gated.drift_threshold = 0.5;
  IncrementalRelearnStats stats;
  engine.incremental_relearn(next, gated, &stats);
  EXPECT_EQ(stats.params_touched, 1u);
  EXPECT_EQ(stats.params_retested, 0u);
  EXPECT_EQ(engine.view(0).value[0], 7);

  // A shifted distribution — most slots change — crosses the threshold and
  // re-tests.
  config::ConfigAssignment shifted = next;
  for (auto& v : shifted.singular[0].value) {
    if (v != config::kUnset) v = v == 3 ? 7 : 3;
  }
  IncrementalRelearnStats shift_stats;
  engine.incremental_relearn(shifted, gated, &shift_stats);
  EXPECT_EQ(shift_stats.params_touched, 1u);
  EXPECT_EQ(shift_stats.params_retested, 1u);
}

TEST(IncrementalRelearn, ModelWatchDriftUnionTriggersTheRetest) {
  Fixture f;
  AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, f.options());

  // Two watch days with opposite recommended-value distributions for the
  // singular parameter: its day-over-day chi-square p collapses.
  ModelWatch watch(f.catalog);
  Recommendation rec;
  rec.param = 0;
  rec.source = RecommendationSource::kGlobalVote;
  rec.group_size = 4;
  rec.votes = 4;
  rec.support = 1.0;
  for (int i = 0; i < 200; ++i) {
    rec.value = 3;
    watch.record(rec);
  }
  watch.roll_day();
  for (int i = 0; i < 200; ++i) {
    rec.value = 7;
    watch.record(rec);
  }
  watch.roll_day();
  ASSERT_LT(watch.drift_p(0), 0.01);

  // The same tiny inventory delta as above: below the fraction threshold, but
  // the watch union trigger forces the re-test anyway.
  config::ConfigAssignment next = f.assignment;
  next.singular[0].value[0] = 7;
  IncrementalRelearnOptions gated;
  gated.drift_threshold = 0.5;
  gated.watch = &watch;
  IncrementalRelearnStats stats;
  engine.incremental_relearn(next, gated, &stats);
  EXPECT_EQ(stats.params_touched, 1u);
  EXPECT_EQ(stats.params_retested, 1u);
}

TEST(IncrementalRelearn, ParallelLearnAndRelearnAreByteIdentical) {
  Fixture f;
  AuricOptions serial = f.options();
  AuricOptions wide = f.options();
  wide.learn_threads = 4;
  AuricEngine engine1(f.topo, f.schema, f.catalog, f.assignment, serial);
  AuricEngine engine4(f.topo, f.schema, f.catalog, f.assignment, wide);
  expect_engines_equal(engine1, engine4);

  config::ConfigAssignment next = f.assignment;
  next.singular[0].value[0] = 7;
  next.singular[0].value[5] = config::kUnset;
  next.pairwise[0].value[0] = 4;

  IncrementalRelearnOptions inc1;
  inc1.threads = 1;
  IncrementalRelearnOptions inc4;
  inc4.threads = 4;
  IncrementalRelearnStats s1;
  IncrementalRelearnStats s4;
  engine1.incremental_relearn(next, inc1, &s1);
  engine4.incremental_relearn(next, inc4, &s4);
  EXPECT_EQ(s1.params_touched, s4.params_touched);
  EXPECT_EQ(s1.params_retested, s4.params_retested);
  EXPECT_EQ(s1.rows_updated, s4.rows_updated);
  expect_engines_equal(engine1, engine4);
  expect_engines_equal(engine1, AuricEngine(f.topo, f.schema, f.catalog, next, serial));
}

TEST(IncrementalRelearn, ClonedEngineRelearnsIndependently) {
  Fixture f;
  auto original = std::make_unique<AuricEngine>(f.topo, f.schema, f.catalog, f.assignment,
                                                f.options());
  AuricEngine clone(*original);

  config::ConfigAssignment next = f.assignment;
  for (auto& v : next.singular[0].value) {
    if (v != config::kUnset) v = v == 3 ? 7 : 3;
  }
  clone.incremental_relearn(next);
  // The serve relearn path frees the original after the RCU flip; the clone's
  // models must survive it (they share only the immutable attribute codes).
  original.reset();
  expect_engines_equal(clone, AuricEngine(f.topo, f.schema, f.catalog, next, f.options()));
}

TEST(IncrementalRelearn, RejectsAMismatchedAssignment) {
  Fixture f;
  AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, f.options());
  config::ConfigAssignment wrong = f.assignment;
  wrong.singular[0].value.pop_back();
  EXPECT_THROW(engine.incremental_relearn(wrong), std::invalid_argument);
  config::ConfigAssignment extra = f.assignment;
  extra.singular.emplace_back();
  EXPECT_THROW(engine.incremental_relearn(extra), std::invalid_argument);
}

}  // namespace
}  // namespace auric::core
