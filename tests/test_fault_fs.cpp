#include "io/fault_fs.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace auric::io {
namespace {

std::filesystem::path temp_file(const char* tag) {
  const auto path =
      std::filesystem::temp_directory_path() / ("auric_faultfs_" + std::string(tag));
  std::filesystem::remove(path);
  return path;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

class FaultFsTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultFs::global().reset(); }
  void TearDown() override {
    FaultFs::global().reset();
    FaultFs::global().enable_trace(false);
  }
};

TEST_F(FaultFsTest, UnarmedOperationsJustWork) {
  const auto path = temp_file("plain");
  FaultFs& fs = FaultFs::global();
  fs.write_file("t.write", path.string(), "a,b\n1,2\n");
  fs.append_file("t.append", path.string(), "3,4\n");
  EXPECT_EQ(read_file(path), "a,b\n1,2\n3,4\n");
  fs.sync_file("t.sync", path.string());
  const auto renamed = temp_file("plain_renamed");
  fs.rename_file("t.rename", path.string(), renamed.string());
  EXPECT_TRUE(std::filesystem::exists(renamed));
  fs.truncate_file("t.truncate", renamed.string(), 4);
  EXPECT_EQ(read_file(renamed), "a,b\n");
  fs.remove_file("t.remove", renamed.string());
  EXPECT_FALSE(std::filesystem::exists(renamed));
  // Removing a missing file is idempotent, not an error.
  fs.remove_file("t.remove", renamed.string());
  EXPECT_GE(fs.ops(), 7u);
}

TEST_F(FaultFsTest, FailOpThrowsAndDisarms) {
  const auto path = temp_file("failop");
  FaultFs& fs = FaultFs::global();
  fs.install({.fault = FaultFs::Fault::kFailOp, .point = "t.write"});
  EXPECT_THROW(fs.write_file("t.write", path.string(), "x\n"), std::runtime_error);
  EXPECT_FALSE(fs.armed());
  // Fires exactly once: the retry succeeds.
  fs.write_file("t.write", path.string(), "x\n");
  EXPECT_EQ(read_file(path), "x\n");
}

TEST_F(FaultFsTest, CrashBeforeLeavesFileUntouched) {
  const auto path = temp_file("crash_before");
  FaultFs& fs = FaultFs::global();
  fs.write_file("t.write", path.string(), "old\n");
  fs.install({.fault = FaultFs::Fault::kCrashBefore, .point = "t.write"});
  EXPECT_THROW(fs.write_file("t.write", path.string(), "new\n"), CrashInjected);
  EXPECT_EQ(read_file(path), "old\n");
}

TEST_F(FaultFsTest, CrashAfterLandsThePayload) {
  const auto path = temp_file("crash_after");
  FaultFs& fs = FaultFs::global();
  fs.install({.fault = FaultFs::Fault::kCrashAfter, .point = "t.write"});
  EXPECT_THROW(fs.write_file("t.write", path.string(), "new\n"), CrashInjected);
  EXPECT_EQ(read_file(path), "new\n");
}

TEST_F(FaultFsTest, ShortWriteLandsPrefix) {
  const auto path = temp_file("short");
  FaultFs& fs = FaultFs::global();
  fs.install(
      {.fault = FaultFs::Fault::kShortWrite, .point = "t.write", .tear_fraction = 0.5});
  EXPECT_THROW(fs.write_file("t.write", path.string(), "12345678"), CrashInjected);
  EXPECT_EQ(read_file(path), "1234");
}

TEST_F(FaultFsTest, TornTailKeepsCompleteRecordsAndCutsTheLast) {
  const auto path = temp_file("torn");
  FaultFs& fs = FaultFs::global();
  fs.install({.fault = FaultFs::Fault::kTornTail, .point = "t.append", .tear_fraction = 0.5});
  EXPECT_THROW(fs.append_file("t.append", path.string(), "aaaa,1\nbbbb,2\ncccc,3\n"),
               CrashInjected);
  // Every complete line lands; the final record is cut mid-field with no
  // terminator — exactly the shape load() must truncate away.
  const std::string landed = read_file(path);
  EXPECT_TRUE(landed.rfind("aaaa,1\nbbbb,2\n", 0) == 0) << landed;
  EXPECT_LT(landed.size(), std::string("aaaa,1\nbbbb,2\ncccc,3\n").size());
  EXPECT_NE(landed.back(), '\n');
}

TEST_F(FaultFsTest, PlanMatchesPointAndOccurrence) {
  const auto path = temp_file("occurrence");
  FaultFs& fs = FaultFs::global();
  // Fire on the SECOND t.append, ignoring other points entirely.
  fs.install({.fault = FaultFs::Fault::kCrashBefore, .point = "t.append", .after_ops = 1});
  fs.write_file("t.write", path.string(), "h\n");
  fs.append_file("t.append", path.string(), "1\n");
  EXPECT_THROW(fs.append_file("t.append", path.string(), "2\n"), CrashInjected);
  EXPECT_EQ(read_file(path), "h\n1\n");
}

TEST_F(FaultFsTest, EmptyPointMatchesEveryOperation) {
  const auto path = temp_file("global_index");
  FaultFs& fs = FaultFs::global();
  fs.install({.fault = FaultFs::Fault::kCrashBefore, .point = "", .after_ops = 2});
  fs.write_file("a", path.string(), "1\n");
  fs.append_file("b", path.string(), "2\n");
  EXPECT_THROW(fs.sync_file("c", path.string()), CrashInjected);
}

TEST_F(FaultFsTest, TraceRecordsOperationSequence) {
  const auto path = temp_file("trace");
  FaultFs& fs = FaultFs::global();
  fs.enable_trace(true);
  (void)fs.take_trace();
  fs.write_file("p.one", path.string(), "1\n");
  fs.sync_file("p.two", path.string());
  const std::vector<std::string> trace = fs.take_trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0], "p.one");
  EXPECT_EQ(trace[1], "p.two");
}

TEST_F(FaultFsTest, SeededPlansAreDeterministicAndInRange) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const FaultFs::FaultPlan a = FaultFs::seeded_plan(seed, 100);
    const FaultFs::FaultPlan b = FaultFs::seeded_plan(seed, 100);
    EXPECT_EQ(a.fault, b.fault);
    EXPECT_EQ(a.after_ops, b.after_ops);
    EXPECT_EQ(a.tear_fraction, b.tear_fraction);
    EXPECT_LT(a.after_ops, 100u);
    EXPECT_NE(a.fault, FaultFs::Fault::kNone);
    EXPECT_NE(a.fault, FaultFs::Fault::kFailOp);
    EXPECT_GE(a.tear_fraction, 0.25);
    EXPECT_LE(a.tear_fraction, 0.75);
  }
  // Different seeds explore different sites.
  const FaultFs::FaultPlan p0 = FaultFs::seeded_plan(0, 1000);
  const FaultFs::FaultPlan p1 = FaultFs::seeded_plan(1, 1000);
  EXPECT_TRUE(p0.after_ops != p1.after_ops || p0.fault != p1.fault);
}

}  // namespace
}  // namespace auric::io
