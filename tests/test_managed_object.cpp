#include "config/managed_object.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace auric::config {
namespace {

TEST(MoPaths, FollowVendorHierarchy) {
  const netsim::Topology topo = test::tiny_topology();
  const netsim::Carrier& carrier = topo.carriers[0];   // eNodeB 0, face 0, 700
  const netsim::Carrier& neighbor = topo.carriers[2];  // eNodeB 1, face 0, 700
  EXPECT_EQ(cell_mo_path(carrier), "ENodeBFunction=0/EUtranCellFDD=0-0-700");
  EXPECT_EQ(freq_relation_mo_path(carrier, neighbor),
            "ENodeBFunction=0/EUtranCellFDD=0-0-700/EUtranFreqRelation=700");
  EXPECT_EQ(cell_relation_mo_path(carrier, neighbor),
            "ENodeBFunction=0/EUtranCellFDD=0-0-700/EUtranFreqRelation=700/"
            "EUtranCellRelation=2");
}

TEST(RenderConfig, PrintsRawValuesInVendorUnits) {
  const ParamCatalog catalog = test::tiny_catalog();
  CarrierConfig config;
  config.carrier = 0;
  config.settings.push_back({"MO=1", 0, 3});   // integer domain -> "3"
  config.settings.push_back({"MO=1", 1, 5});   // 0.5-step domain -> "2.5"
  const auto lines = render_config_commands(config, catalog);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "set MO=1 toySingular 3");
  EXPECT_EQ(lines[1], "set MO=1 toyPairwise 2.5");
}

TEST(DiffConfig, EmitsOnlyChangedOrNewSettings) {
  CarrierConfig current;
  current.settings = {{"A", 0, 1}, {"B", 0, 2}, {"C", 1, 3}};
  CarrierConfig desired;
  desired.settings = {{"A", 0, 1},   // unchanged -> dropped
                      {"B", 0, 5},   // changed -> kept
                      {"D", 1, 7}};  // new -> kept
  canonicalize(current);
  canonicalize(desired);
  const auto diff = diff_config(current, desired);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[0].mo_path, "B");
  EXPECT_EQ(diff[0].value, 5);
  EXPECT_EQ(diff[1].mo_path, "D");
}

TEST(DiffConfig, EmptyDesiredMeansNoChanges) {
  CarrierConfig current;
  current.settings = {{"A", 0, 1}};
  EXPECT_TRUE(diff_config(current, CarrierConfig{}).empty());
}

TEST(Canonicalize, SortsByPathThenParam) {
  CarrierConfig config;
  config.settings = {{"B", 1, 0}, {"A", 1, 0}, {"A", 0, 0}};
  canonicalize(config);
  EXPECT_EQ(config.settings[0].mo_path, "A");
  EXPECT_EQ(config.settings[0].param, 0);
  EXPECT_EQ(config.settings[1].mo_path, "A");
  EXPECT_EQ(config.settings[1].param, 1);
  EXPECT_EQ(config.settings[2].mo_path, "B");
}

}  // namespace
}  // namespace auric::config
