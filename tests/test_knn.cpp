#include "ml/knn.h"

#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "learner_test_util.h"
#include "linalg/matrix.h"
#include "ml/dataset.h"

namespace auric::ml {
namespace {

TEST(Knn, ExactDuplicatesDominateTheVote) {
  CategoricalDataset data;
  data.columns = {{0, 0, 0, 1, 1}, {1, 1, 1, 0, 0}};
  data.cardinality = {2, 2};
  data.column_names = {"a", "b"};
  data.labels = {0, 0, 0, 1, 1};
  data.class_values = {5, 9};
  KNearestNeighbors knn(KnnOptions{3});
  knn.fit(data, test::all_rows(data));
  EXPECT_EQ(knn.predict(std::vector<std::int32_t>{0, 1}), 0);
  EXPECT_EQ(knn.predict(std::vector<std::int32_t>{1, 0}), 1);
}

TEST(Knn, LearnsRuleDataset) {
  const CategoricalDataset train = test::rule_dataset(800, 0.0, 1);
  const CategoricalDataset fresh = test::rule_dataset(200, 0.0, 2);
  KNearestNeighbors knn;  // k = 5 per §4.2(3)
  knn.fit(train, test::all_rows(train));
  EXPECT_GT(test::train_accuracy(knn, fresh), 0.9);
}

TEST(Knn, KLargerThanTrainingSetFallsBackToAllRows) {
  CategoricalDataset data;
  data.columns = {{0, 1}};
  data.cardinality = {2};
  data.column_names = {"a"};
  data.labels = {1, 1};
  data.class_values = {0, 3};
  KNearestNeighbors knn(KnnOptions{50});
  knn.fit(data, test::all_rows(data));
  EXPECT_EQ(knn.predict(std::vector<std::int32_t>{0}), 1);
}

TEST(Knn, HammingEqualsOneHotEuclidean) {
  // The class documents that 2 x Hamming == squared Euclidean on one-hot
  // rows; verify the identity the implementation relies on.
  const CategoricalDataset data = test::rule_dataset(40, 0.5, 3);
  const OneHotEncoder encoder(data);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      const auto a = encoder.encode_row(data.row_codes(i));
      const auto b = encoder.encode_row(data.row_codes(j));
      int hamming = 0;
      for (std::size_t attr = 0; attr < data.num_attributes(); ++attr) {
        hamming += data.columns[attr][i] != data.columns[attr][j] ? 1 : 0;
      }
      EXPECT_DOUBLE_EQ(linalg::squared_distance(a, b), 2.0 * hamming);
    }
  }
}

TEST(Knn, IrrelevantAttributesDiluteDistance) {
  // The paper's §3.2 critique: k-NN with many irrelevant attributes labels
  // truly similar carriers as far away. One relevant binary attribute is
  // drowned by six irrelevant binary ones; a relevance-aware learner (the
  // decision tree) stays perfect on fresh rows while k-NN degrades.
  CategoricalDataset data;
  data.columns.resize(7);
  data.cardinality.assign(7, 2);
  data.column_names = {"relevant", "j1", "j2", "j3", "j4", "j5", "j6"};
  util::Rng rng(7);
  for (int i = 0; i < 120; ++i) {
    for (int a = 0; a < 7; ++a) {
      data.columns[static_cast<std::size_t>(a)].push_back(
          static_cast<std::int32_t>(rng.uniform_int(0, 1)));
    }
    data.labels.push_back(data.columns[0].back());
  }
  data.class_values = {0, 1};
  KNearestNeighbors knn;
  knn.fit(data, test::all_rows(data));
  // Fresh rows (junk re-rolled): no exact duplicates to lean on.
  CategoricalDataset fresh = data;
  for (int a = 1; a < 7; ++a) {
    for (auto& code : fresh.columns[static_cast<std::size_t>(a)]) {
      code = static_cast<std::int32_t>(rng.uniform_int(0, 1));
    }
  }
  ml::DecisionTree tree;
  tree.fit(data, test::all_rows(data));
  const double tree_acc = test::train_accuracy(tree, fresh);
  const double knn_acc = test::train_accuracy(knn, fresh);
  EXPECT_DOUBLE_EQ(tree_acc, 1.0);
  EXPECT_LT(knn_acc, tree_acc);  // dilution produces real errors

}

TEST(Knn, RejectsBadOptionsAndUsage) {
  EXPECT_THROW(KNearestNeighbors(KnnOptions{0}), std::invalid_argument);
  KNearestNeighbors knn;
  const CategoricalDataset data = test::rule_dataset(4, 0.0, 1);
  EXPECT_THROW(knn.fit(data, {}), std::invalid_argument);
  EXPECT_THROW(knn.predict(data.row_codes(0)), std::logic_error);
}

}  // namespace
}  // namespace auric::ml
