#include "smartlaunch/kpi.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace auric::smartlaunch {
namespace {

TEST(KpiModel, PerfectConfigurationScoresOne) {
  const netsim::Topology topo = test::tiny_topology();
  const config::ParamCatalog catalog = test::tiny_catalog();
  const config::ConfigAssignment assignment = test::tiny_assignment(topo);
  const KpiModel kpi(topo, catalog, assignment);
  for (const netsim::Carrier& c : topo.carriers) EXPECT_DOUBLE_EQ(kpi.quality(c.id), 1.0);
}

TEST(KpiModel, DeviationsDegradeQuality) {
  const netsim::Topology topo = test::tiny_topology();
  const config::ParamCatalog catalog = test::tiny_catalog();
  config::ConfigAssignment assignment = test::tiny_assignment(topo);
  assignment.singular[0].value[0] = 9;  // intent stays 3
  const KpiModel kpi(topo, catalog, assignment);
  EXPECT_LT(kpi.quality(0), 1.0);
  EXPECT_DOUBLE_EQ(kpi.quality(1), 1.0);  // untouched carrier unaffected
}

TEST(KpiModel, QualityHasAFloor) {
  const netsim::Topology topo = test::tiny_topology();
  const config::ParamCatalog catalog = test::tiny_catalog();
  config::ConfigAssignment assignment = test::tiny_assignment(topo);
  // Corrupt everything on carrier 0.
  assignment.singular[0].value[0] = 10;
  for (std::size_t e = 0; e < topo.edge_count(); ++e) {
    if (topo.edges[e].from == 0 && assignment.pairwise[0].value[e] != config::kUnset) {
      assignment.pairwise[0].value[e] = 20;
    }
  }
  KpiOptions options;
  options.penalty_per_deviation = 10.0;  // force the floor
  options.min_quality = 0.1;
  const KpiModel kpi(topo, catalog, assignment, options);
  EXPECT_DOUBLE_EQ(kpi.quality(0), 0.1);
}

TEST(KpiModel, AllQualitiesVectorMatchesAccessor) {
  const netsim::Topology topo = test::tiny_topology();
  const config::ParamCatalog catalog = test::tiny_catalog();
  const config::ConfigAssignment assignment = test::tiny_assignment(topo);
  const KpiModel kpi(topo, catalog, assignment);
  const auto& all = kpi.all_qualities();
  ASSERT_EQ(all.size(), topo.carrier_count());
  for (std::size_t c = 0; c < all.size(); ++c) {
    EXPECT_DOUBLE_EQ(all[c], kpi.quality(static_cast<netsim::CarrierId>(c)));
  }
}

}  // namespace
}  // namespace auric::smartlaunch
