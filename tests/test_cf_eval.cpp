#include "eval/cf_eval.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace auric::eval {
namespace {

struct Fixture {
  netsim::Topology topo = test::chain_topology();
  config::ParamCatalog catalog = test::tiny_catalog();
  config::ConfigAssignment assignment = test::tiny_assignment(topo);
  netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
};

TEST(CfEvaluator, PerfectAssignmentScoresPerfectly) {
  Fixture f;
  const CfEvaluator evaluator(f.topo, f.schema, f.catalog, f.assignment, {});
  const CfParamResult result = evaluator.evaluate_param(0);
  EXPECT_EQ(result.rows, 16u);
  EXPECT_EQ(result.correct, 16u);
  EXPECT_DOUBLE_EQ(result.accuracy(), 1.0);
  EXPECT_EQ(result.fallback_default, 0u);
}

TEST(CfEvaluator, MismatchSinkCapturesDeviations) {
  Fixture f;
  f.assignment.singular[0].value[2] = 9;  // one deviating carrier
  const CfEvaluator evaluator(f.topo, f.schema, f.catalog, f.assignment, {});
  std::vector<CfPrediction> mismatches;
  const CfParamResult result = evaluator.evaluate_param(0, std::nullopt, &mismatches);
  EXPECT_EQ(result.correct + mismatches.size(), result.rows);
  ASSERT_EQ(mismatches.size(), 1u);
  EXPECT_EQ(mismatches[0].carrier, 2);
  EXPECT_EQ(mismatches[0].actual, 9);
  EXPECT_EQ(mismatches[0].predicted, 3);  // the band majority
  EXPECT_EQ(mismatches[0].param, 0);
}

TEST(CfEvaluator, MarketScopingEvaluatesSubsets) {
  Fixture f;
  const CfEvaluator evaluator(f.topo, f.schema, f.catalog, f.assignment, {});
  const CfParamResult m0 = evaluator.evaluate_param(0, netsim::MarketId{0});
  const CfParamResult m1 = evaluator.evaluate_param(0, netsim::MarketId{1});
  EXPECT_EQ(m0.rows, 10u);
  EXPECT_EQ(m1.rows, 6u);
}

TEST(CfEvaluator, EvaluateAllCoversCatalog) {
  Fixture f;
  const CfEvaluator evaluator(f.topo, f.schema, f.catalog, f.assignment, {});
  const auto results = evaluator.evaluate_all();
  ASSERT_EQ(results.size(), f.catalog.size());
  EXPECT_DOUBLE_EQ(overall_accuracy(results), 1.0);
}

TEST(CfEvaluator, LocalModeUsesProximity) {
  Fixture f;
  CfEvalOptions options;
  options.local = true;
  const CfEvaluator evaluator(f.topo, f.schema, f.catalog, f.assignment, options);
  const CfParamResult result = evaluator.evaluate_param(0);
  EXPECT_DOUBLE_EQ(result.accuracy(), 1.0);
}

TEST(CfEvaluator, LocalWithoutGlobalFallbackUsesDefaults) {
  Fixture f;
  CfEvalOptions options;
  options.local = true;
  options.fallback_global = false;
  const CfEvaluator evaluator(f.topo, f.schema, f.catalog, f.assignment, options);
  const CfParamResult result = evaluator.evaluate_param(0);
  // Tiny neighborhoods fail the quorum, so everything lands on the default
  // (index 5), which matches no carrier's value (3 or 7).
  EXPECT_EQ(result.fallback_default, result.rows);
  EXPECT_DOUBLE_EQ(result.accuracy(), 0.0);
}

TEST(OverallAccuracy, RowWeighted) {
  std::vector<CfParamResult> results(2);
  results[0].rows = 10;
  results[0].correct = 10;
  results[1].rows = 90;
  results[1].correct = 0;
  EXPECT_DOUBLE_EQ(overall_accuracy(results), 0.1);
  EXPECT_DOUBLE_EQ(overall_accuracy({}), 0.0);
}

}  // namespace
}  // namespace auric::eval
