#include "eval/mismatch.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace auric::eval {
namespace {

TEST(LabelMismatch, TrialAndTerrainMeanUpdateLearner) {
  EXPECT_EQ(label_mismatch(config::Cause::kTrial, 5, 3), MismatchLabel::kUpdateLearner);
  EXPECT_EQ(label_mismatch(config::Cause::kHiddenTerrain, 5, 5),
            MismatchLabel::kUpdateLearner);
}

TEST(LabelMismatch, StaleLeftoverRecoveredIsGoodRecommendation) {
  EXPECT_EQ(label_mismatch(config::Cause::kStaleLeftover, /*intended=*/5, /*predicted=*/5),
            MismatchLabel::kGoodRecommendation);
  EXPECT_EQ(label_mismatch(config::Cause::kStaleLeftover, 5, 4), MismatchLabel::kInconclusive);
}

TEST(LabelMismatch, EverythingElseIsInconclusive) {
  for (config::Cause cause : {config::Cause::kDefault, config::Cause::kAttributeRule,
                              config::Cause::kMarketStyle, config::Cause::kLocalPocket,
                              config::Cause::kNoise}) {
    EXPECT_EQ(label_mismatch(cause, 5, 5), MismatchLabel::kInconclusive);
  }
}

TEST(MismatchBreakdown, FractionsSumToOne) {
  MismatchBreakdown b;
  b.total = 10;
  b.update_learner = 1;
  b.good_recommendation = 3;
  b.inconclusive = 6;
  EXPECT_DOUBLE_EQ(b.fraction(MismatchLabel::kUpdateLearner), 0.1);
  EXPECT_DOUBLE_EQ(b.fraction(MismatchLabel::kGoodRecommendation), 0.3);
  EXPECT_DOUBLE_EQ(b.fraction(MismatchLabel::kInconclusive), 0.6);
  EXPECT_DOUBLE_EQ(MismatchBreakdown{}.fraction(MismatchLabel::kInconclusive), 0.0);
}

TEST(LabelMismatches, AggregatesAgainstGroundTruth) {
  const netsim::Topology topo = test::chain_topology();
  const config::ParamCatalog catalog = test::tiny_catalog();
  config::ConfigAssignment assignment = test::tiny_assignment(topo);
  // Plant: carrier 0 is a stale leftover (value 9, intent 3); carrier 2 is
  // an ongoing trial; carrier 4 is noise.
  assignment.singular[0].value[0] = 9;
  assignment.singular[0].cause[0] = config::Cause::kStaleLeftover;
  assignment.singular[0].value[2] = 8;
  assignment.singular[0].cause[2] = config::Cause::kTrial;
  assignment.singular[0].value[4] = 6;
  assignment.singular[0].cause[4] = config::Cause::kNoise;

  std::vector<CfPrediction> mismatches{
      {0, 0, /*predicted=*/3, /*actual=*/9, 0},
      {0, 2, 3, 8, 2},
      {0, 4, 3, 6, 4},
  };
  const MismatchBreakdown breakdown = label_mismatches(mismatches, catalog, assignment);
  EXPECT_EQ(breakdown.total, 3u);
  EXPECT_EQ(breakdown.good_recommendation, 1u);
  EXPECT_EQ(breakdown.update_learner, 1u);
  EXPECT_EQ(breakdown.inconclusive, 1u);
}

TEST(LabelMismatches, DetectsInconsistentSlot) {
  const netsim::Topology topo = test::chain_topology();
  const config::ParamCatalog catalog = test::tiny_catalog();
  const config::ConfigAssignment assignment = test::tiny_assignment(topo);
  // actual=99 does not match the slot's stored value.
  std::vector<CfPrediction> bogus{{0, 0, 3, 99, 0}};
  EXPECT_THROW(label_mismatches(bogus, catalog, assignment), std::logic_error);
}

TEST(ApplyGoodRecommendations, PushesOnlyTheGoodOnes) {
  const netsim::Topology topo = test::chain_topology();
  const config::ParamCatalog catalog = test::tiny_catalog();
  config::ConfigAssignment assignment = test::tiny_assignment(topo);
  assignment.singular[0].value[0] = 9;
  assignment.singular[0].cause[0] = config::Cause::kStaleLeftover;  // good rec
  assignment.singular[0].value[2] = 8;
  assignment.singular[0].cause[2] = config::Cause::kTrial;          // must stay
  std::vector<CfPrediction> mismatches{
      {0, 0, /*predicted=*/3, /*actual=*/9, 0},
      {0, 2, 3, 8, 2},
  };
  const std::size_t pushed = apply_good_recommendations(mismatches, catalog, assignment);
  EXPECT_EQ(pushed, 1u);
  EXPECT_EQ(assignment.singular[0].value[0], 3);  // converged to intent
  EXPECT_EQ(assignment.singular[0].value[2], 8);  // trial untouched
}

TEST(ApplyGoodRecommendations, RejectsStaleBatch) {
  const netsim::Topology topo = test::chain_topology();
  const config::ParamCatalog catalog = test::tiny_catalog();
  config::ConfigAssignment assignment = test::tiny_assignment(topo);
  std::vector<CfPrediction> stale{{0, 0, 3, /*actual=*/99, 0}};
  EXPECT_THROW(apply_good_recommendations(stale, catalog, assignment), std::logic_error);
}

TEST(MismatchLabelNames, MatchPaperVocabulary) {
  EXPECT_STREQ(mismatch_label_name(MismatchLabel::kUpdateLearner), "update learner");
  EXPECT_STREQ(mismatch_label_name(MismatchLabel::kGoodRecommendation), "good recommendation");
  EXPECT_STREQ(mismatch_label_name(MismatchLabel::kInconclusive), "inconclusive");
}

}  // namespace
}  // namespace auric::eval
