#include "ml/chi_square.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace auric::ml {
namespace {

TEST(RegularizedGamma, KnownValues) {
  // P(1, x) = 1 - e^-x.
  EXPECT_NEAR(regularized_gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(regularized_gamma_p(1.0, 3.0), 1.0 - std::exp(-3.0), 1e-12);
  // P + Q = 1 across both computation branches.
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 30.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0, 1e-12);
    }
  }
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(2.0, 0.0), 1.0);
  EXPECT_THROW(regularized_gamma_p(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(regularized_gamma_q(1.0, -1.0), std::invalid_argument);
}

TEST(ChiSquareSf, MatchesStandardCriticalValues) {
  // Classic table entries: chi2_{0.05, df=1} = 3.841, chi2_{0.01, df=1} =
  // 6.635, chi2_{0.01, df=2} = 9.210, chi2_{0.05, df=10} = 18.307.
  EXPECT_NEAR(chi_square_sf(3.841, 1), 0.05, 2e-4);
  EXPECT_NEAR(chi_square_sf(6.635, 1), 0.01, 1e-4);
  EXPECT_NEAR(chi_square_sf(9.210, 2), 0.01, 1e-4);
  EXPECT_NEAR(chi_square_sf(18.307, 10), 0.05, 2e-4);
  EXPECT_DOUBLE_EQ(chi_square_sf(0.0, 3), 1.0);
  EXPECT_THROW(chi_square_sf(1.0, 0), std::invalid_argument);
}

TEST(ContingencyTable, CountsPairs) {
  const std::vector<std::int32_t> x{0, 0, 1, 1, 1};
  const std::vector<std::int32_t> y{0, 1, 0, 1, 1};
  const ContingencyTable table = ContingencyTable::build(x, y, 2, 2);
  EXPECT_EQ(table.total, 5);
  EXPECT_EQ(table.counts[0][0], 1);
  EXPECT_EQ(table.counts[0][1], 1);
  EXPECT_EQ(table.counts[1][0], 1);
  EXPECT_EQ(table.counts[1][1], 2);
}

TEST(ContingencyTable, RejectsBadInput) {
  const std::vector<std::int32_t> x{0, 1};
  const std::vector<std::int32_t> y{0};
  EXPECT_THROW(ContingencyTable::build(x, y, 2, 2), std::invalid_argument);
  const std::vector<std::int32_t> oob{0, 5};
  const std::vector<std::int32_t> ok{0, 1};
  EXPECT_THROW(ContingencyTable::build(oob, ok, 2, 2), std::out_of_range);
}

TEST(ChiSquareTest, HandComputedStatistic) {
  // Table: [[10, 20], [20, 10]]; expected all 15; chi2 = 4*25/15 = 6.667.
  ContingencyTable table;
  table.counts = {{10, 20}, {20, 10}};
  table.total = 60;
  const ChiSquareResult result = chi_square_test(table);
  EXPECT_EQ(result.df, 1);
  EXPECT_NEAR(result.statistic, 100.0 / 15.0, 1e-12);
  EXPECT_TRUE(result.dependent(0.05));
  EXPECT_FALSE(result.dependent(0.001));
}

TEST(ChiSquareTest, EmptyRowsAndColumnsAreDropped) {
  ContingencyTable table;
  table.counts = {{10, 0, 20}, {0, 0, 0}, {20, 0, 10}};
  table.total = 60;
  const ChiSquareResult result = chi_square_test(table);
  EXPECT_EQ(result.df, 1);  // effectively 2x2 after dropping empties
  EXPECT_NEAR(result.statistic, 100.0 / 15.0, 1e-12);
}

TEST(ChiSquareTest, DegenerateTableHasNoEvidence) {
  ContingencyTable one_column;
  one_column.counts = {{5}, {7}};
  one_column.total = 12;
  const ChiSquareResult result = chi_square_test(one_column);
  EXPECT_EQ(result.df, 0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
  EXPECT_FALSE(result.dependent(0.05));
}

class ChiSquareDetectionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChiSquareDetectionTest, DetectsPlantedDependence) {
  util::Rng rng(11);
  const std::size_t n = GetParam();
  std::vector<std::int32_t> x(n);
  std::vector<std::int32_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<std::int32_t>(rng.uniform_int(0, 3));
    // y strongly follows x with 10% noise.
    y[i] = rng.bernoulli(0.9) ? x[i] % 3 : static_cast<std::int32_t>(rng.uniform_int(0, 2));
  }
  const ChiSquareResult result = chi_square_independence(x, y, 4, 3);
  EXPECT_TRUE(result.dependent(0.01));
}

TEST_P(ChiSquareDetectionTest, AcceptsIndependence) {
  util::Rng rng(13);
  const std::size_t n = GetParam();
  std::vector<std::int32_t> x(n);
  std::vector<std::int32_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<std::int32_t>(rng.uniform_int(0, 3));
    y[i] = static_cast<std::int32_t>(rng.uniform_int(0, 2));
  }
  const ChiSquareResult result = chi_square_independence(x, y, 4, 3);
  EXPECT_FALSE(result.dependent(0.01));
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, ChiSquareDetectionTest,
                         ::testing::Values(200u, 1000u, 5000u));

}  // namespace
}  // namespace auric::ml
