#include "io/launch_state.h"

#include <filesystem>
#include <fstream>
#include <functional>

#include <gtest/gtest.h>

namespace auric::io {
namespace {

std::string temp_dir(const char* tag) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("auric_launch_state_" + std::string(tag));
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::string thrown_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

LaunchState sample_state() {
  LaunchState state;
  state.journal = {{3, 17}, {9, 2}};
  state.deferred = {4, 1, 8};
  state.quarantine = {{2, 1}, {7, 2}};
  state.breaker.state = util::CircuitBreaker::State::kOpen;
  state.breaker.consecutive_failures = 3;
  state.breaker.cooldown_remaining = 2;
  state.breaker.trips = 1;
  state.breaker.refusals = 4;
  state.ems.pushes_executed = 123;
  state.ems.lock_cycles = 7;
  state.ems.fault_stream = 0xDEADBEEFULL;
  state.ems.flap_stream = 42;
  state.ems.burst_stream = 0xFFFFFFFFFFFFFFFFULL;
  state.ems.unlocked = {1, 5};
  state.ems.repaired = {6};
  state.applied_slots = {{false, 2, 11, 5}, {true, 0, 190, 3}};
  state.relearn_applied_slots = {{false, 2, 11, 4}};
  state.progress = {{"day", "12"}, {"kpi", "0x1.8p-1"}};
  return state;
}

TEST(LaunchStateStore, ExistsOnlyAfterCommit) {
  const LaunchStateStore store(temp_dir("exists"));
  EXPECT_FALSE(store.exists());
  store.save(sample_state());
  EXPECT_TRUE(store.exists());
  store.clear();
  EXPECT_FALSE(store.exists());
}

TEST(LaunchStateStore, RoundTripsEveryField) {
  const LaunchStateStore store(temp_dir("roundtrip"));
  const LaunchState saved = sample_state();
  store.save(saved);
  const LaunchState loaded = store.load();

  EXPECT_EQ(loaded.journal, saved.journal);
  EXPECT_EQ(loaded.deferred, saved.deferred);
  EXPECT_EQ(loaded.quarantine, saved.quarantine);
  EXPECT_EQ(loaded.breaker.state, saved.breaker.state);
  EXPECT_EQ(loaded.breaker.consecutive_failures, saved.breaker.consecutive_failures);
  EXPECT_EQ(loaded.breaker.cooldown_remaining, saved.breaker.cooldown_remaining);
  EXPECT_EQ(loaded.breaker.trips, saved.breaker.trips);
  EXPECT_EQ(loaded.breaker.refusals, saved.breaker.refusals);
  EXPECT_EQ(loaded.ems.pushes_executed, saved.ems.pushes_executed);
  EXPECT_EQ(loaded.ems.fault_stream, saved.ems.fault_stream);
  EXPECT_EQ(loaded.ems.flap_stream, saved.ems.flap_stream);
  EXPECT_EQ(loaded.ems.burst_stream, saved.ems.burst_stream);
  EXPECT_EQ(loaded.ems.unlocked, saved.ems.unlocked);
  EXPECT_EQ(loaded.ems.repaired, saved.ems.repaired);
  ASSERT_EQ(loaded.applied_slots.size(), saved.applied_slots.size());
  for (std::size_t i = 0; i < saved.applied_slots.size(); ++i) {
    EXPECT_EQ(loaded.applied_slots[i].pairwise, saved.applied_slots[i].pairwise);
    EXPECT_EQ(loaded.applied_slots[i].param_pos, saved.applied_slots[i].param_pos);
    EXPECT_EQ(loaded.applied_slots[i].entity, saved.applied_slots[i].entity);
    EXPECT_EQ(loaded.applied_slots[i].value, saved.applied_slots[i].value);
  }
  EXPECT_EQ(loaded.relearn_applied_slots.size(), saved.relearn_applied_slots.size());
  EXPECT_EQ(loaded.progress, saved.progress);
  ASSERT_NE(loaded.find_progress("kpi"), nullptr);
  EXPECT_EQ(*loaded.find_progress("kpi"), "0x1.8p-1");
  EXPECT_EQ(loaded.find_progress("missing"), nullptr);
}

TEST(LaunchStateStore, SaveOverwritesPreviousCheckpoint) {
  const LaunchStateStore store(temp_dir("overwrite"));
  store.save(sample_state());
  LaunchState second;  // mostly empty
  second.progress = {{"day", "13"}};
  store.save(second);
  const LaunchState loaded = store.load();
  EXPECT_TRUE(loaded.journal.empty());
  EXPECT_TRUE(loaded.deferred.empty());
  ASSERT_NE(loaded.find_progress("day"), nullptr);
  EXPECT_EQ(*loaded.find_progress("day"), "13");
}

void corrupt(const std::string& dir, const char* file, const std::string& content) {
  std::ofstream out(std::filesystem::path(dir) / file);
  out << content;
}

TEST(LaunchStateStore, MalformedJournalNamesFileAndLine) {
  const LaunchStateStore store(temp_dir("bad_journal"));
  store.save(sample_state());
  corrupt(store.dir(), "journal.csv", "carrier,applied\n3,17\nxyz,2\n");
  const std::string msg = thrown_message([&] { (void)store.load(); });
  EXPECT_NE(msg.find("journal.csv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
}

TEST(LaunchStateStore, DuplicateJournalCarrierRejected) {
  const LaunchStateStore store(temp_dir("dup_journal"));
  store.save(sample_state());
  corrupt(store.dir(), "journal.csv", "carrier,applied\n3,17\n3,4\n");
  const std::string msg = thrown_message([&] { (void)store.load(); });
  EXPECT_NE(msg.find("duplicate journal entry"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
}

TEST(LaunchStateStore, UnknownBreakerStateNamesFileAndLine) {
  const LaunchStateStore store(temp_dir("bad_breaker"));
  store.save(sample_state());
  corrupt(store.dir(), "breaker.csv",
          "state,consecutive_failures,cooldown_remaining,trips,refusals\nwedged,0,0,0,0\n");
  const std::string msg = thrown_message([&] { (void)store.load(); });
  EXPECT_NE(msg.find("breaker.csv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("wedged"), std::string::npos) << msg;
}

TEST(LaunchStateStore, UnknownEmsKeyNamesFileAndLine) {
  const LaunchStateStore store(temp_dir("bad_ems"));
  store.save(sample_state());
  corrupt(store.dir(), "ems.csv", "key,value\npushes_executed,5\nwarp_factor,9\n");
  const std::string msg = thrown_message([&] { (void)store.load(); });
  EXPECT_NE(msg.find("ems.csv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("warp_factor"), std::string::npos) << msg;
}

TEST(LaunchStateStore, SlotWritePairwiseFlagValidated) {
  const LaunchStateStore store(temp_dir("bad_applied"));
  store.save(sample_state());
  corrupt(store.dir(), "applied.csv", "pairwise,param_pos,entity,value\n2,0,0,1\n");
  const std::string msg = thrown_message([&] { (void)store.load(); });
  EXPECT_NE(msg.find("applied.csv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(LaunchStateStore, DuplicateProgressKeyRejected) {
  const LaunchStateStore store(temp_dir("dup_progress"));
  store.save(sample_state());
  corrupt(store.dir(), "progress.csv", "key,value\nday,1\nday,2\n");
  const std::string msg = thrown_message([&] { (void)store.load(); });
  EXPECT_NE(msg.find("progress.csv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicate progress key"), std::string::npos) << msg;
}

TEST(LaunchStateStore, MissingFileFailsLoudly) {
  const LaunchStateStore store(temp_dir("missing_file"));
  store.save(sample_state());
  std::filesystem::remove(std::filesystem::path(store.dir()) / "ems.csv");
  EXPECT_THROW((void)store.load(), std::runtime_error);
}

LaunchState sharded_state() {
  LaunchState state;
  // Shard 0 and shard 1 carry deliberately different content so a swapped
  // or merged load would be caught.
  LaunchState::ShardState shard0;
  shard0.journal = {{3, 17}};
  shard0.deferred = {4};
  shard0.quarantine = {{2, 1}};
  shard0.breaker.state = util::CircuitBreaker::State::kOpen;
  shard0.breaker.trips = 1;
  shard0.ems.pushes_executed = 10;
  shard0.ems.fault_stream = 0xAAAA;
  shard0.ems.unlocked = {1};
  LaunchState::ShardState shard1;
  shard1.journal = {{9, 2}, {11, 5}};
  shard1.deferred = {};
  shard1.quarantine = {};
  shard1.breaker.state = util::CircuitBreaker::State::kClosed;
  shard1.ems.pushes_executed = 99;
  shard1.ems.fault_stream = 0xBBBB;
  shard1.ems.repaired = {6};
  state.shards = {shard0, shard1};
  state.applied_slots = {{false, 2, 11, 5}};
  state.progress = {{"day", "3"}, {"shards_note", "two"}};
  return state;
}

TEST(LaunchStateStore, ShardedStateRoundTripsPerShard) {
  const LaunchStateStore store(temp_dir("sharded_roundtrip"));
  const LaunchState saved = sharded_state();
  store.save(saved);
  const LaunchState loaded = store.load();

  ASSERT_EQ(loaded.shards.size(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(loaded.shards[k].journal, saved.shards[k].journal) << "shard " << k;
    EXPECT_EQ(loaded.shards[k].deferred, saved.shards[k].deferred) << "shard " << k;
    EXPECT_EQ(loaded.shards[k].quarantine, saved.shards[k].quarantine) << "shard " << k;
    EXPECT_EQ(loaded.shards[k].breaker.state, saved.shards[k].breaker.state) << "shard " << k;
    EXPECT_EQ(loaded.shards[k].breaker.trips, saved.shards[k].breaker.trips) << "shard " << k;
    EXPECT_EQ(loaded.shards[k].ems.pushes_executed, saved.shards[k].ems.pushes_executed);
    EXPECT_EQ(loaded.shards[k].ems.fault_stream, saved.shards[k].ems.fault_stream);
    EXPECT_EQ(loaded.shards[k].ems.unlocked, saved.shards[k].ems.unlocked);
    EXPECT_EQ(loaded.shards[k].ems.repaired, saved.shards[k].ems.repaired);
  }
  // The reserved layout marker is store-internal, never caller progress.
  EXPECT_EQ(loaded.progress, saved.progress);
  EXPECT_EQ(loaded.find_progress("__shards"), nullptr);
}

TEST(LaunchStateStore, ShardedLayoutUsesSuffixedFiles) {
  const LaunchStateStore store(temp_dir("sharded_files"));
  store.save(sharded_state());
  const std::filesystem::path dir(store.dir());
  for (const char* base : {"journal", "deferred", "quarantine", "breaker", "ems"}) {
    EXPECT_TRUE(std::filesystem::exists(dir / (std::string(base) + ".0.csv"))) << base;
    EXPECT_TRUE(std::filesystem::exists(dir / (std::string(base) + ".1.csv"))) << base;
    EXPECT_FALSE(std::filesystem::exists(dir / (std::string(base) + ".csv")))
        << base << " flat file must not be written in sharded mode";
  }
}

TEST(LaunchStateStore, SingleShardLegacyLayoutHasNoMarker) {
  const LaunchStateStore store(temp_dir("legacy_marker"));
  store.save(sample_state());  // shards empty -> legacy flat layout
  std::ifstream progress(std::filesystem::path(store.dir()) / "progress.csv");
  std::string contents((std::istreambuf_iterator<char>(progress)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents.find("__shards"), std::string::npos);
  const LaunchState loaded = store.load();
  EXPECT_TRUE(loaded.shards.empty());
}

TEST(LaunchStateStore, ReservedProgressKeyRejected) {
  const LaunchStateStore store(temp_dir("reserved_key"));
  LaunchState state = sample_state();
  state.progress.emplace_back("__shards", "4");
  EXPECT_THROW(store.save(state), std::invalid_argument);
}

TEST(LaunchStateStore, MissingShardFileFailsLoudly) {
  const LaunchStateStore store(temp_dir("missing_shard_file"));
  store.save(sharded_state());
  std::filesystem::remove(std::filesystem::path(store.dir()) / "ems.1.csv");
  EXPECT_THROW((void)store.load(), std::runtime_error);
}

TEST(LaunchStateStore, ClearRemovesShardFiles) {
  const LaunchStateStore store(temp_dir("sharded_clear"));
  store.save(sharded_state());
  store.clear();
  EXPECT_FALSE(store.exists());
  const std::filesystem::path dir(store.dir());
  for (const char* base : {"journal", "deferred", "quarantine", "breaker", "ems"}) {
    EXPECT_FALSE(std::filesystem::exists(dir / (std::string(base) + ".0.csv"))) << base;
    EXPECT_FALSE(std::filesystem::exists(dir / (std::string(base) + ".1.csv"))) << base;
  }
}

}  // namespace
}  // namespace auric::io
