#include "io/launch_state.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace auric::io {
namespace {

std::string temp_dir(const char* tag) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("auric_launch_state_" + std::string(tag));
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Legacy rewrite-every-file layout; most corruption tests target it because
/// its flat CSVs are what an operator (or a torn disk) would edit.
LaunchStateStore::Options rewrite_options() {
  LaunchStateStore::Options options;
  options.journal = false;
  return options;
}

std::string thrown_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

LaunchState sample_state() {
  LaunchState state;
  state.journal = {{3, 17}, {9, 2}};
  state.deferred = {4, 1, 8};
  state.quarantine = {{2, 1}, {7, 2}};
  state.breaker.state = util::CircuitBreaker::State::kOpen;
  state.breaker.consecutive_failures = 3;
  state.breaker.cooldown_remaining = 2;
  state.breaker.trips = 1;
  state.breaker.refusals = 4;
  state.ems.pushes_executed = 123;
  state.ems.lock_cycles = 7;
  state.ems.fault_stream = 0xDEADBEEFULL;
  state.ems.flap_stream = 42;
  state.ems.burst_stream = 0xFFFFFFFFFFFFFFFFULL;
  state.ems.unlocked = {1, 5};
  state.ems.repaired = {6};
  state.applied_slots = {{false, 2, 11, 5}, {true, 0, 190, 3}};
  state.relearn_applied_slots = {{false, 2, 11, 4}};
  state.progress = {{"day", "12"}, {"kpi", "0x1.8p-1"}};
  return state;
}

TEST(LaunchStateStore, ExistsOnlyAfterCommit) {
  const LaunchStateStore store(temp_dir("exists"));
  EXPECT_FALSE(store.exists());
  store.save(sample_state());
  EXPECT_TRUE(store.exists());
  store.clear();
  EXPECT_FALSE(store.exists());
}

TEST(LaunchStateStore, RoundTripsEveryField) {
  const LaunchStateStore store(temp_dir("roundtrip"));
  const LaunchState saved = sample_state();
  store.save(saved);
  const LaunchState loaded = store.load();

  EXPECT_EQ(loaded.journal, saved.journal);
  EXPECT_EQ(loaded.deferred, saved.deferred);
  EXPECT_EQ(loaded.quarantine, saved.quarantine);
  EXPECT_EQ(loaded.breaker.state, saved.breaker.state);
  EXPECT_EQ(loaded.breaker.consecutive_failures, saved.breaker.consecutive_failures);
  EXPECT_EQ(loaded.breaker.cooldown_remaining, saved.breaker.cooldown_remaining);
  EXPECT_EQ(loaded.breaker.trips, saved.breaker.trips);
  EXPECT_EQ(loaded.breaker.refusals, saved.breaker.refusals);
  EXPECT_EQ(loaded.ems.pushes_executed, saved.ems.pushes_executed);
  EXPECT_EQ(loaded.ems.fault_stream, saved.ems.fault_stream);
  EXPECT_EQ(loaded.ems.flap_stream, saved.ems.flap_stream);
  EXPECT_EQ(loaded.ems.burst_stream, saved.ems.burst_stream);
  EXPECT_EQ(loaded.ems.unlocked, saved.ems.unlocked);
  EXPECT_EQ(loaded.ems.repaired, saved.ems.repaired);
  ASSERT_EQ(loaded.applied_slots.size(), saved.applied_slots.size());
  for (std::size_t i = 0; i < saved.applied_slots.size(); ++i) {
    EXPECT_EQ(loaded.applied_slots[i].pairwise, saved.applied_slots[i].pairwise);
    EXPECT_EQ(loaded.applied_slots[i].param_pos, saved.applied_slots[i].param_pos);
    EXPECT_EQ(loaded.applied_slots[i].entity, saved.applied_slots[i].entity);
    EXPECT_EQ(loaded.applied_slots[i].value, saved.applied_slots[i].value);
  }
  EXPECT_EQ(loaded.relearn_applied_slots.size(), saved.relearn_applied_slots.size());
  EXPECT_EQ(loaded.progress, saved.progress);
  ASSERT_NE(loaded.find_progress("kpi"), nullptr);
  EXPECT_EQ(*loaded.find_progress("kpi"), "0x1.8p-1");
  EXPECT_EQ(loaded.find_progress("missing"), nullptr);
}

TEST(LaunchStateStore, SaveOverwritesPreviousCheckpoint) {
  const LaunchStateStore store(temp_dir("overwrite"));
  store.save(sample_state());
  LaunchState second;  // mostly empty
  second.progress = {{"day", "13"}};
  store.save(second);
  const LaunchState loaded = store.load();
  EXPECT_TRUE(loaded.journal.empty());
  EXPECT_TRUE(loaded.deferred.empty());
  ASSERT_NE(loaded.find_progress("day"), nullptr);
  EXPECT_EQ(*loaded.find_progress("day"), "13");
}

void corrupt(const std::string& dir, const char* file, const std::string& content) {
  std::ofstream out(std::filesystem::path(dir) / file);
  out << content;
}

TEST(LaunchStateStore, MalformedJournalNamesFileAndLine) {
  const LaunchStateStore store(temp_dir("bad_journal"), rewrite_options());
  store.save(sample_state());
  corrupt(store.dir(), "journal.csv", "carrier,applied\n3,17\nxyz,2\n");
  const std::string msg = thrown_message([&] { (void)store.load(); });
  EXPECT_NE(msg.find("journal.csv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
}

TEST(LaunchStateStore, DuplicateJournalCarrierRejected) {
  const LaunchStateStore store(temp_dir("dup_journal"), rewrite_options());
  store.save(sample_state());
  corrupt(store.dir(), "journal.csv", "carrier,applied\n3,17\n3,4\n");
  const std::string msg = thrown_message([&] { (void)store.load(); });
  EXPECT_NE(msg.find("duplicate journal entry"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
}

TEST(LaunchStateStore, UnknownBreakerStateNamesFileAndLine) {
  const LaunchStateStore store(temp_dir("bad_breaker"), rewrite_options());
  store.save(sample_state());
  corrupt(store.dir(), "breaker.csv",
          "state,consecutive_failures,cooldown_remaining,trips,refusals\nwedged,0,0,0,0\n");
  const std::string msg = thrown_message([&] { (void)store.load(); });
  EXPECT_NE(msg.find("breaker.csv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("wedged"), std::string::npos) << msg;
}

TEST(LaunchStateStore, UnknownEmsKeyNamesFileAndLine) {
  const LaunchStateStore store(temp_dir("bad_ems"), rewrite_options());
  store.save(sample_state());
  corrupt(store.dir(), "ems.csv", "key,value\npushes_executed,5\nwarp_factor,9\n");
  const std::string msg = thrown_message([&] { (void)store.load(); });
  EXPECT_NE(msg.find("ems.csv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("warp_factor"), std::string::npos) << msg;
}

TEST(LaunchStateStore, SlotWritePairwiseFlagValidated) {
  const LaunchStateStore store(temp_dir("bad_applied"), rewrite_options());
  store.save(sample_state());
  corrupt(store.dir(), "applied.csv", "pairwise,param_pos,entity,value\n2,0,0,1\n");
  const std::string msg = thrown_message([&] { (void)store.load(); });
  EXPECT_NE(msg.find("applied.csv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(LaunchStateStore, DuplicateProgressKeyRejected) {
  const LaunchStateStore store(temp_dir("dup_progress"));
  store.save(sample_state());
  corrupt(store.dir(), "progress.csv", "key,value\nday,1\nday,2\n");
  const std::string msg = thrown_message([&] { (void)store.load(); });
  EXPECT_NE(msg.find("progress.csv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicate progress key"), std::string::npos) << msg;
}

TEST(LaunchStateStore, MissingFileFailsLoudly) {
  const LaunchStateStore store(temp_dir("missing_file"), rewrite_options());
  store.save(sample_state());
  std::filesystem::remove(std::filesystem::path(store.dir()) / "ems.csv");
  EXPECT_THROW((void)store.load(), std::runtime_error);
}

LaunchState sharded_state() {
  LaunchState state;
  // Shard 0 and shard 1 carry deliberately different content so a swapped
  // or merged load would be caught.
  LaunchState::ShardState shard0;
  shard0.journal = {{3, 17}};
  shard0.deferred = {4};
  shard0.quarantine = {{2, 1}};
  shard0.breaker.state = util::CircuitBreaker::State::kOpen;
  shard0.breaker.trips = 1;
  shard0.ems.pushes_executed = 10;
  shard0.ems.fault_stream = 0xAAAA;
  shard0.ems.unlocked = {1};
  LaunchState::ShardState shard1;
  shard1.journal = {{9, 2}, {11, 5}};
  shard1.deferred = {};
  shard1.quarantine = {};
  shard1.breaker.state = util::CircuitBreaker::State::kClosed;
  shard1.ems.pushes_executed = 99;
  shard1.ems.fault_stream = 0xBBBB;
  shard1.ems.repaired = {6};
  state.shards = {shard0, shard1};
  state.applied_slots = {{false, 2, 11, 5}};
  state.progress = {{"day", "3"}, {"shards_note", "two"}};
  return state;
}

TEST(LaunchStateStore, ShardedStateRoundTripsPerShard) {
  const LaunchStateStore store(temp_dir("sharded_roundtrip"));
  const LaunchState saved = sharded_state();
  store.save(saved);
  const LaunchState loaded = store.load();

  ASSERT_EQ(loaded.shards.size(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(loaded.shards[k].journal, saved.shards[k].journal) << "shard " << k;
    EXPECT_EQ(loaded.shards[k].deferred, saved.shards[k].deferred) << "shard " << k;
    EXPECT_EQ(loaded.shards[k].quarantine, saved.shards[k].quarantine) << "shard " << k;
    EXPECT_EQ(loaded.shards[k].breaker.state, saved.shards[k].breaker.state) << "shard " << k;
    EXPECT_EQ(loaded.shards[k].breaker.trips, saved.shards[k].breaker.trips) << "shard " << k;
    EXPECT_EQ(loaded.shards[k].ems.pushes_executed, saved.shards[k].ems.pushes_executed);
    EXPECT_EQ(loaded.shards[k].ems.fault_stream, saved.shards[k].ems.fault_stream);
    EXPECT_EQ(loaded.shards[k].ems.unlocked, saved.shards[k].ems.unlocked);
    EXPECT_EQ(loaded.shards[k].ems.repaired, saved.shards[k].ems.repaired);
  }
  // The reserved layout marker is store-internal, never caller progress.
  EXPECT_EQ(loaded.progress, saved.progress);
  EXPECT_EQ(loaded.find_progress("__shards"), nullptr);
}

TEST(LaunchStateStore, ShardedLayoutUsesSuffixedFiles) {
  const LaunchStateStore store(temp_dir("sharded_files"), rewrite_options());
  store.save(sharded_state());
  const std::filesystem::path dir(store.dir());
  for (const char* base : {"journal", "deferred", "quarantine", "breaker", "ems"}) {
    EXPECT_TRUE(std::filesystem::exists(dir / (std::string(base) + ".0.csv"))) << base;
    EXPECT_TRUE(std::filesystem::exists(dir / (std::string(base) + ".1.csv"))) << base;
    EXPECT_FALSE(std::filesystem::exists(dir / (std::string(base) + ".csv")))
        << base << " flat file must not be written in sharded mode";
  }
}

TEST(LaunchStateStore, SingleShardLegacyLayoutHasNoMarker) {
  const LaunchStateStore store(temp_dir("legacy_marker"));
  store.save(sample_state());  // shards empty -> legacy flat layout
  std::ifstream progress(std::filesystem::path(store.dir()) / "progress.csv");
  std::string contents((std::istreambuf_iterator<char>(progress)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents.find("__shards"), std::string::npos);
  const LaunchState loaded = store.load();
  EXPECT_TRUE(loaded.shards.empty());
}

TEST(LaunchStateStore, ReservedProgressKeyRejected) {
  const LaunchStateStore store(temp_dir("reserved_key"));
  LaunchState state = sample_state();
  state.progress.emplace_back("__shards", "4");
  EXPECT_THROW(store.save(state), std::invalid_argument);
}

TEST(LaunchStateStore, MissingShardFileFailsLoudly) {
  const LaunchStateStore store(temp_dir("missing_shard_file"), rewrite_options());
  store.save(sharded_state());
  std::filesystem::remove(std::filesystem::path(store.dir()) / "ems.1.csv");
  EXPECT_THROW((void)store.load(), std::runtime_error);
}

// --- Journal-layout behavior ----------------------------------------------

std::vector<std::filesystem::path> log_files(const std::string& dir, const std::string& id) {
  std::vector<std::filesystem::path> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(id + ".log", 0) == 0 && name.find(".csv") != std::string::npos) {
      out.push_back(entry.path());
    }
  }
  return out;
}

std::uint64_t checkpoint_bytes_total() {
  return obs::MetricsRegistry::global().counter("auric_checkpoint_bytes_total").value();
}

TEST(LaunchStateStore, JournalLayoutAppendsDeltasInsideCommit) {
  const LaunchStateStore store(temp_dir("journal_appends"));
  LaunchState state = sample_state();
  store.save(state);
  ASSERT_EQ(log_files(store.dir(), "journal").size(), 1u);
  const auto log_path = log_files(store.dir(), "journal")[0];
  const auto snapshot_size = std::filesystem::file_size(log_path);

  state.journal.push_back({12, 1});
  state.progress = {{"day", "13"}, {"kpi", "0x1.8p-1"}};
  store.save(state);
  // Same generation file, grown by one op record — not rewritten.
  ASSERT_TRUE(std::filesystem::exists(log_path));
  EXPECT_GT(std::filesystem::file_size(log_path), snapshot_size);

  // The seal in progress.csv is part of the commit.
  std::ifstream progress(std::filesystem::path(store.dir()) / "progress.csv");
  const std::string contents((std::istreambuf_iterator<char>(progress)),
                             std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("__log.journal"), std::string::npos);

  const LaunchState loaded = store.load();
  EXPECT_EQ(loaded.journal, state.journal);
  EXPECT_EQ(loaded.progress, state.progress);
}

TEST(LaunchStateStore, JournalCheckpointBytesAreFiveTimesBelowRewrite) {
  // A grown state image (the "400K carriers after a month" shape, scaled
  // down) with a one-launch delta: the journal checkpoint must write at
  // least 5x fewer bytes than the rewrite-every-file checkpoint.
  LaunchState grown;
  for (netsim::CarrierId c = 0; c < 2000; ++c) grown.journal.push_back({c, 64});
  for (netsim::CarrierId c = 0; c < 500; ++c) grown.quarantine.push_back({c * 3, 1});
  for (std::uint32_t p = 0; p < 1500; ++p) grown.applied_slots.push_back({false, p, 77, 3});
  grown.ems.pushes_executed = 123456;
  grown.progress = {{"day", "29"}, {"kpi", "0x1.8p-1"}};

  LaunchState next = grown;
  next.journal.push_back({5000, 7});
  next.applied_slots.push_back({true, 0, 9, 2});
  next.ems.pushes_executed += 3;
  next.progress = {{"day", "30"}, {"kpi", "0x1.9p-1"}};

  const LaunchStateStore journal_store(temp_dir("bytes_journal"));
  journal_store.save(grown);
  const std::uint64_t journal_before = checkpoint_bytes_total();
  journal_store.save(next);
  const std::uint64_t journal_delta = checkpoint_bytes_total() - journal_before;

  const LaunchStateStore rewrite_store(temp_dir("bytes_rewrite"), rewrite_options());
  rewrite_store.save(grown);
  const std::uint64_t rewrite_before = checkpoint_bytes_total();
  rewrite_store.save(next);
  const std::uint64_t rewrite_delta = checkpoint_bytes_total() - rewrite_before;

  ASSERT_GT(journal_delta, 0u);
  EXPECT_GE(rewrite_delta, 5 * journal_delta)
      << "journal wrote " << journal_delta << " bytes, rewrite wrote " << rewrite_delta;
  EXPECT_EQ(journal_store.load().journal, rewrite_store.load().journal);
}

TEST(LaunchStateStore, CompactionAdvancesGenerationAndDropsOldLog) {
  LaunchStateStore::Options options;
  options.compact_min_bytes = 1;  // any appended tail beyond one byte compacts
  options.compact_factor = 0.0;
  const LaunchStateStore store(temp_dir("compaction"), options);
  LaunchState state = sample_state();
  store.save(state);
  const auto gen1 = log_files(store.dir(), "journal");
  ASSERT_EQ(gen1.size(), 1u);

  state.journal.push_back({21, 9});
  store.save(state);
  const auto gen2 = log_files(store.dir(), "journal");
  ASSERT_EQ(gen2.size(), 1u);
  EXPECT_NE(gen1[0], gen2[0]) << "compaction must move to a fresh generation";
  EXPECT_FALSE(std::filesystem::exists(gen1[0])) << "old generation must be cleaned up";

  const LaunchState loaded = store.load();
  EXPECT_EQ(loaded.journal, state.journal);
}

TEST(LaunchStateStore, TornJournalTailTruncatedOnLoad) {
  const LaunchStateStore store(temp_dir("torn_tail"));
  LaunchState state = sample_state();
  store.save(state);

  // A crash after the append but before the commit leaves bytes past the
  // seal; recovery must cut them off and replay only the committed region.
  const auto logs = log_files(store.dir(), "journal");
  ASSERT_EQ(logs.size(), 1u);
  const auto sealed_size = std::filesystem::file_size(logs[0]);
  {
    std::ofstream out(logs[0], std::ios::app);
    out << "u,999,1\nu,10";  // one whole uncommitted record + a torn one
  }

  const LaunchStateStore reopened(store.dir());
  const LaunchState loaded = reopened.load();
  EXPECT_EQ(loaded.journal, state.journal);
  EXPECT_EQ(reopened.load_stats().torn_tails_truncated, 1u);
  EXPECT_EQ(std::filesystem::file_size(logs[0]), sealed_size) << "tail must be cut off on disk";
}

TEST(LaunchStateStore, LegacyCheckpointMigratesToJournalOnSave) {
  const std::string dir = temp_dir("legacy_migrate");
  LaunchState state = sample_state();
  {
    const LaunchStateStore legacy(dir, rewrite_options());
    legacy.save(state);
  }

  const LaunchStateStore store(dir);  // journal mode over a legacy checkpoint
  const LaunchState loaded = store.load();
  EXPECT_TRUE(store.load_stats().legacy_layout);
  EXPECT_EQ(loaded.journal, state.journal);

  state.journal.push_back({30, 1});
  store.save(state);  // re-baselines into journal logs
  EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(dir) / "journal.csv"))
      << "superseded legacy files must be cleaned up after the journal commit";
  ASSERT_EQ(log_files(dir, "journal").size(), 1u);

  const LaunchStateStore reopened(dir);
  EXPECT_EQ(reopened.load().journal, state.journal);
  EXPECT_FALSE(reopened.load_stats().legacy_layout);
}

TEST(LaunchStateStore, FreshStoreOverExistingJournalRebaselines) {
  const std::string dir = temp_dir("rebaseline");
  LaunchState state = sample_state();
  {
    const LaunchStateStore first(dir);
    first.save(state);
    state.journal.push_back({40, 2});
    first.save(state);
  }
  // A restarted process saves without loading: the store must not trust any
  // stale in-memory image, and the result must still round-trip.
  const LaunchStateStore second(dir);
  state.journal.push_back({41, 3});
  second.save(state);
  EXPECT_EQ(second.load().journal, state.journal);
}

TEST(LaunchStateStore, UnsortedJournalRejectedInJournalMode) {
  const LaunchStateStore store(temp_dir("unsorted"));
  LaunchState state = sample_state();
  state.journal = {{9, 2}, {3, 17}};
  EXPECT_THROW(store.save(state), std::invalid_argument);
}

TEST(LaunchStateStore, TornLegacyCsvTailDroppedWithWarning) {
  const LaunchStateStore store(temp_dir("legacy_torn"), rewrite_options());
  LaunchState state = sample_state();
  store.save(state);
  // Simulate a torn final sector in the flat layout: the last row of
  // journal.csv is cut mid-field, no trailing newline.
  corrupt(store.dir(), "journal.csv", "carrier,applied\n3,17\n9,");
  const LaunchState loaded = store.load();
  ASSERT_EQ(loaded.journal.size(), 1u);
  EXPECT_EQ(loaded.journal[0].first, 3);
}

TEST(LaunchStateStore, CrashPointCatalogIsStable) {
  const auto& catalog = LaunchStateStore::crash_point_catalog();
  EXPECT_GE(catalog.size(), 12u);
  for (const std::string& point : catalog) {
    EXPECT_TRUE(point.find('.') != std::string::npos) << point;
  }
}

TEST(LaunchStateStore, ClearRemovesShardFiles) {
  const LaunchStateStore store(temp_dir("sharded_clear"), rewrite_options());
  store.save(sharded_state());
  store.clear();
  EXPECT_FALSE(store.exists());
  const std::filesystem::path dir(store.dir());
  for (const char* base : {"journal", "deferred", "quarantine", "breaker", "ems"}) {
    EXPECT_FALSE(std::filesystem::exists(dir / (std::string(base) + ".0.csv"))) << base;
    EXPECT_FALSE(std::filesystem::exists(dir / (std::string(base) + ".1.csv"))) << base;
  }
}

}  // namespace
}  // namespace auric::io
