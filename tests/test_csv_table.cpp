#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/table.h"

namespace auric::util {
namespace {

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "auric_csv_test.csv").string();
  {
    CsvWriter csv(path, {"name", "value"});
    csv.add_row({"a", "1"});
    csv.add_row({"b,c", "2"});
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "name,value\na,1\n\"b,c\",2\n");
  std::filesystem::remove(path);
}

TEST(CsvWriter, RejectsArityMismatch) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "auric_csv_test2.csv").string();
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), std::invalid_argument);
  csv.close();
  std::filesystem::remove(path);
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

TEST(Table, AlignsColumns) {
  Table table({"name", "v"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22 |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, NumericRowFormatting) {
  Table table({"", "a", "b"});
  table.add_row_numeric("row", {1.234, 5.0}, 2);
  EXPECT_NE(table.render().find("1.23"), std::string::npos);
  EXPECT_NE(table.render().find("5.00"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), std::invalid_argument);
}

}  // namespace
}  // namespace auric::util
