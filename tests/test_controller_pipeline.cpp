#include <gtest/gtest.h>

#include "config/rulebook.h"
#include "core/engine.h"
#include "smartlaunch/controller.h"
#include "smartlaunch/pipeline.h"
#include "test_helpers.h"

namespace auric::smartlaunch {
namespace {

// End-to-end smartlaunch fixture over a small generated network with real
// ground truth (so vendor/intent/auric configs are all meaningful).
struct Fixture {
  netsim::Topology topo = test::small_generated_topology(11, 2, 16);
  netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  config::ParamCatalog catalog = config::ParamCatalog::standard();
  config::GroundTruthModel ground_truth{topo, schema, catalog, make_gt()};
  config::ConfigAssignment assignment = ground_truth.assign();
  core::AuricEngine engine{topo, schema, catalog, assignment};
  config::Rulebook rulebook{ground_truth, catalog};

  static config::GroundTruthParams make_gt() {
    config::GroundTruthParams params;
    params.seed = 21;
    return params;
  }
};

TEST(ApplicableSlots, EnumeratesConfiguredSlotsWithPaths) {
  Fixture f;
  const auto slots = applicable_slots(f.topo, f.catalog, f.assignment, 0);
  EXPECT_GT(slots.size(), 10u);
  for (const SlotRef& slot : slots) {
    EXPECT_FALSE(slot.mo_path.empty());
    const bool pairwise = f.catalog.at(slot.param).kind == config::ParamKind::kPairwise;
    EXPECT_EQ(pairwise, slot.neighbor != netsim::kInvalidCarrier);
    if (pairwise) {
      EXPECT_NE(slot.mo_path.find("EUtranFreqRelation"), std::string::npos);
    }
  }
}

TEST(Controller, IntentConfigMatchesGroundTruthIntent) {
  Fixture f;
  const LaunchController controller(f.engine, f.rulebook, f.assignment);
  const config::CarrierConfig intent = controller.intent_config(0);
  EXPECT_EQ(intent.size(), applicable_slots(f.topo, f.catalog, f.assignment, 0).size());
}

TEST(Controller, CleanVendorNeedsFewChanges) {
  Fixture f;
  VendorFaultOptions no_faults;
  no_faults.stale_template_prob = 0.0;
  no_faults.typo_prob = 0.0;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, no_faults);
  // Vendor == intent; Auric pushes only where its high-confidence vote
  // disagrees with intent, which is rare.
  std::size_t total_changes = 0;
  std::size_t total_slots = 0;
  for (netsim::CarrierId c = 0; c < 40; ++c) {
    total_changes += controller.plan_changes(c).size();
    total_slots += applicable_slots(f.topo, f.catalog, f.assignment, c).size();
  }
  EXPECT_LT(static_cast<double>(total_changes), 0.02 * static_cast<double>(total_slots));
}

TEST(Controller, StaleTemplatesTriggerPushes) {
  Fixture f;
  VendorFaultOptions always_stale;
  always_stale.stale_template_prob = 1.0;
  always_stale.stale_slot_frac = 1.0;
  always_stale.typo_prob = 0.0;
  const LaunchController stale(f.engine, f.rulebook, f.assignment, always_stale);
  VendorFaultOptions clean;
  clean.stale_template_prob = 0.0;
  clean.typo_prob = 0.0;
  const LaunchController good(f.engine, f.rulebook, f.assignment, clean);
  std::size_t stale_changes = 0;
  std::size_t clean_changes = 0;
  for (netsim::CarrierId c = 0; c < 40; ++c) {
    stale_changes += stale.plan_changes(c).size();
    clean_changes += good.plan_changes(c).size();
  }
  EXPECT_GT(stale_changes, clean_changes);
}

TEST(Controller, VendorConfigIsDeterministic) {
  Fixture f;
  const LaunchController controller(f.engine, f.rulebook, f.assignment);
  EXPECT_EQ(controller.vendor_config(5).settings, controller.vendor_config(5).settings);
}

TEST(Pipeline, NoChangeLaunchesLeaveCarrierUntouched) {
  Fixture f;
  VendorFaultOptions no_faults;
  no_faults.stale_template_prob = 0.0;
  no_faults.typo_prob = 0.0;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, no_faults);
  EmsOptions reliable;
  reliable.flaky_timeout_prob = 0.0;
  EmsSimulator ems(f.topo.carrier_count(), reliable);
  const KpiModel kpi(f.topo, f.catalog, f.assignment);
  PipelineOptions options;
  options.premature_unlock_prob = 0.0;
  SmartLaunchPipeline pipeline(controller, ems, kpi, options);

  netsim::CarrierId no_change_carrier = netsim::kInvalidCarrier;
  for (netsim::CarrierId c = 0; c < 40; ++c) {
    if (controller.plan_changes(c).empty()) {
      no_change_carrier = c;
      break;
    }
  }
  ASSERT_NE(no_change_carrier, netsim::kInvalidCarrier);
  const LaunchRecord record = pipeline.launch(no_change_carrier);
  EXPECT_EQ(record.outcome, LaunchOutcome::kNoChangeNeeded);
  EXPECT_EQ(record.changes_applied, 0u);
  EXPECT_EQ(ems.state(no_change_carrier), CarrierState::kUnlocked);  // launched
}

TEST(Pipeline, PrematureUnlockBecomesFallout) {
  Fixture f;
  VendorFaultOptions always_stale;
  always_stale.stale_template_prob = 1.0;
  always_stale.stale_slot_frac = 1.0;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, always_stale);
  EmsOptions reliable;
  reliable.flaky_timeout_prob = 0.0;
  EmsSimulator ems(f.topo.carrier_count(), reliable);
  const KpiModel kpi(f.topo, f.catalog, f.assignment);
  PipelineOptions options;
  options.premature_unlock_prob = 1.0;  // every engineer jumps the gun
  SmartLaunchPipeline pipeline(controller, ems, kpi, options);

  std::vector<netsim::CarrierId> cohort{0, 1, 2, 3, 4, 5, 6, 7};
  const SmartLaunchReport report = pipeline.run(cohort);
  EXPECT_EQ(report.launches, cohort.size());
  EXPECT_EQ(report.fallout_unlocked, report.change_recommended);
  EXPECT_EQ(report.implemented, 0u);
  EXPECT_EQ(report.parameters_changed, 0u);
}

TEST(Pipeline, UnlockBetweenPlanAndPushRejectsThePush) {
  // The race the paper's fall-outs come from: an engineer unlocks the
  // carrier out-of-band after the diff is planned but before the push
  // lands. The EMS must refuse the push and leave the config untouched.
  Fixture f;
  VendorFaultOptions always_stale;
  always_stale.stale_template_prob = 1.0;
  always_stale.stale_slot_frac = 1.0;
  const LaunchController controller(f.engine, f.rulebook, f.assignment, always_stale);
  EmsOptions reliable;
  reliable.flaky_timeout_prob = 0.0;
  EmsSimulator ems(f.topo.carrier_count(), reliable);

  netsim::CarrierId carrier = netsim::kInvalidCarrier;
  for (netsim::CarrierId c = 0; c < 40; ++c) {
    if (!controller.plan_changes(c).empty()) {
      carrier = c;
      break;
    }
  }
  ASSERT_NE(carrier, netsim::kInvalidCarrier);

  ems.lock(carrier);
  const std::vector<config::MoSetting> changes = controller.plan_changes(carrier);
  ems.unlock_out_of_band(carrier);
  const PushResult push = ems.push(carrier, changes);
  EXPECT_EQ(push.status, PushStatus::kRejectedUnlocked);
  EXPECT_EQ(push.applied, 0u);
  EXPECT_FALSE(push.transient);
  EXPECT_EQ(ems.state(carrier), CarrierState::kUnlocked);
  EXPECT_EQ(ems.pushes_executed(), 0u);  // the push never reached execution
}

TEST(Pipeline, ReportCountersAreConsistent) {
  Fixture f;
  const LaunchController controller(f.engine, f.rulebook, f.assignment);
  EmsSimulator ems(f.topo.carrier_count());
  const KpiModel kpi(f.topo, f.catalog, f.assignment);
  SmartLaunchPipeline pipeline(controller, ems, kpi);
  std::vector<netsim::CarrierId> cohort;
  for (netsim::CarrierId c = 0; c < 60; ++c) cohort.push_back(c);
  const SmartLaunchReport report = pipeline.run(cohort);
  EXPECT_EQ(report.launches, 60u);
  EXPECT_EQ(report.records.size(), 60u);
  EXPECT_EQ(report.implemented + report.fallout_unlocked + report.fallout_timeout,
            report.change_recommended);
  for (const LaunchRecord& record : report.records) {
    EXPECT_GE(record.post_quality, 0.0);
    EXPECT_LE(record.post_quality, 1.0);
    if (record.outcome == LaunchOutcome::kNoChangeNeeded) {
      EXPECT_EQ(record.changes_planned, 0u);
    }
  }
}

TEST(LaunchOutcomeNames, Stable) {
  EXPECT_STREQ(launch_outcome_name(LaunchOutcome::kImplemented), "implemented");
  EXPECT_STREQ(launch_outcome_name(LaunchOutcome::kFalloutTimeout), "fallout-timeout");
}

}  // namespace
}  // namespace auric::smartlaunch
