#include "netsim/topology.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace auric::netsim {
namespace {

TEST(TinyTopology, PassesInvariants) {
  const Topology topo = test::tiny_topology();
  EXPECT_EQ(topo.carrier_count(), 6u);
  EXPECT_EQ(topo.enodebs.size(), 3u);
  EXPECT_NO_THROW(topo.check_invariants());
}

TEST(TinyTopology, NeighborhoodsAreAsConstructed) {
  const Topology topo = test::tiny_topology();
  EXPECT_EQ(topo.neighborhood(0), (std::vector<CarrierId>{1, 2}));
  EXPECT_EQ(topo.neighborhood(4), (std::vector<CarrierId>{5}));
}

TEST(TinyTopology, TwoHopNeighborhoodExpands) {
  const Topology topo = test::tiny_topology();
  // 1 hop from carrier 0: {1, 2}; 2 hops add {3} (via both) but not 0.
  EXPECT_EQ(topo.neighborhood_hops(0, 1), (std::vector<CarrierId>{1, 2}));
  EXPECT_EQ(topo.neighborhood_hops(0, 2), (std::vector<CarrierId>{1, 2, 3}));
  EXPECT_THROW(topo.neighborhood_hops(0, 0), std::invalid_argument);
}

TEST(TinyTopology, EdgeOffsetsIndexDirectedEdges) {
  const Topology topo = test::tiny_topology();
  for (std::size_t c = 0; c < topo.carrier_count(); ++c) {
    const auto id = static_cast<CarrierId>(c);
    EXPECT_EQ(topo.edge_offsets[c + 1] - topo.edge_offsets[c], topo.neighborhood(id).size());
    for (std::size_t e = topo.edge_offsets[c]; e < topo.edge_offsets[c + 1]; ++e) {
      EXPECT_EQ(topo.edges[e].from, id);
    }
  }
  // Directed edges = sum of neighbor list sizes = 2 * undirected links (5).
  EXPECT_EQ(topo.edge_count(), 10u);
}

TEST(TinyTopology, MarketQueries) {
  const Topology topo = test::tiny_topology();
  EXPECT_EQ(topo.carriers_in_market(0), (std::vector<CarrierId>{0, 1, 2, 3}));
  EXPECT_EQ(topo.carriers_in_market(1), (std::vector<CarrierId>{4, 5}));
  EXPECT_EQ(topo.enodeb_count_in_market(0), 2u);
  EXPECT_EQ(topo.enodeb_count_in_market(1), 1u);
}

TEST(TinyTopology, SameENodeBNeighborCountMaintained) {
  const Topology topo = test::tiny_topology();
  // Each carrier has exactly one same-site neighbor in the tiny fixture.
  for (const Carrier& c : topo.carriers) EXPECT_EQ(c.neighbors_same_enodeb, 1);
}

TEST(Invariants, DetectAsymmetricGraph) {
  Topology topo = test::tiny_topology();
  topo.neighbors[0].push_back(5);  // one-directional edge
  std::sort(topo.neighbors[0].begin(), topo.neighbors[0].end());
  topo.edge_offsets.clear();
  topo.finalize_edges();
  EXPECT_THROW(topo.check_invariants(), std::logic_error);
}

TEST(Invariants, DetectSelfLoop) {
  Topology topo = test::tiny_topology();
  topo.neighbors[2].push_back(2);
  topo.finalize_edges();
  EXPECT_THROW(topo.check_invariants(), std::logic_error);
}

TEST(Names, EnumLabels) {
  EXPECT_STREQ(band_name(Band::kLow), "LB");
  EXPECT_STREQ(morphology_name(Morphology::kRural), "rural");
  EXPECT_STREQ(carrier_type_name(CarrierType::kFirstNet), "FirstNet");
  EXPECT_STREQ(mimo_mode_name(MimoMode::k4x4), "4x4");
  EXPECT_STREQ(terrain_name(Terrain::kMountain), "mountain");
  EXPECT_STREQ(timezone_name(Timezone::kPacific), "Pacific");
}

}  // namespace
}  // namespace auric::netsim
