#include "util/strings.h"

#include <gtest/gtest.h>

namespace auric::util {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Join, RoundTripsSplit) {
  const std::vector<std::string> parts{"rf", "knn", "cf"};
  EXPECT_EQ(join(parts, ","), "rf,knn,cf");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
  EXPECT_EQ(join({}, ","), "");
}

TEST(Trim, RemovesOuterWhitespaceOnly) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-f", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

TEST(ToLower, AsciiOnly) { EXPECT_EQ(to_lower("AbC-9"), "abc-9"); }

TEST(Format, PrintfSemantics) {
  EXPECT_EQ(format("%d/%s", 3, "x"), "3/x");
  EXPECT_EQ(format_fixed(95.478, 2), "95.48");
  EXPECT_EQ(format_fixed(-0.5, 0), "-0");  // printf rounding semantics
}

TEST(WithCommas, GroupsThousands) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(4528139), "4,528,139");
  EXPECT_EQ(with_commas(-12345), "-12,345");
}

}  // namespace
}  // namespace auric::util
