#include "eval/model_eval.h"

#include <gtest/gtest.h>

#include "learner_test_util.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"

namespace auric::eval {
namespace {

ClassifierFactory tree_factory() {
  return [] { return std::make_unique<ml::DecisionTree>(); };
}

TEST(EvaluateModel, LearnableRuleScoresHigh) {
  const ml::CategoricalDataset data = test::rule_dataset(600, 0.0, 1);
  const ModelEvalResult result = evaluate_model(tree_factory(), data, {});
  EXPECT_GT(result.accuracy(), 0.97);
  EXPECT_GT(result.evaluated_rows, 0u);
}

TEST(EvaluateModel, SingleClassShortCircuits) {
  ml::CategoricalDataset data = test::rule_dataset(50, 0.0, 2);
  for (auto& label : data.labels) label = 0;
  data.class_values = {42};
  const ModelEvalResult result = evaluate_model(tree_factory(), data, {});
  EXPECT_EQ(result.evaluated_rows, 50u);
  EXPECT_DOUBLE_EQ(result.accuracy(), 1.0);
}

TEST(EvaluateModel, EmptyDatasetScoresZeroRows) {
  ml::CategoricalDataset data;
  const ModelEvalResult result = evaluate_model(tree_factory(), data, {});
  EXPECT_EQ(result.evaluated_rows, 0u);
}

TEST(EvaluateModel, TinyDatasetUsesTwoFolds) {
  const ml::CategoricalDataset data = test::rule_dataset(5, 0.0, 3);
  ModelEvalOptions options;
  options.folds = 5;  // more folds than sensible for 5 rows
  const ModelEvalResult result = evaluate_model(tree_factory(), data, options);
  EXPECT_EQ(result.evaluated_rows, 5u);  // every row tested exactly once
}

TEST(EvaluateModel, TrainCapBoundsCost) {
  const ml::CategoricalDataset data = test::rule_dataset(2000, 0.0, 4);
  ModelEvalOptions options;
  options.train_cap = 50;
  options.test_cap = 100;
  options.folds = 2;
  const ModelEvalResult result = evaluate_model(tree_factory(), data, options);
  EXPECT_LE(result.evaluated_rows, 200u);
  EXPECT_GT(result.accuracy(), 0.8);  // the rule is easy even from 50 rows
}

TEST(EvaluateModel, RejectsBadFolds) {
  const ml::CategoricalDataset data = test::rule_dataset(20, 0.0, 5);
  ModelEvalOptions options;
  options.folds = 1;
  EXPECT_THROW(evaluate_model(tree_factory(), data, options), std::invalid_argument);
}

TEST(EvaluateModel, WorksAcrossLearnerFamilies) {
  const ml::CategoricalDataset data = test::rule_dataset(400, 0.05, 6);
  const ModelEvalResult knn = evaluate_model(
      [] { return std::make_unique<ml::KNearestNeighbors>(); }, data, {});
  EXPECT_GT(knn.accuracy(), 0.85);
}

}  // namespace
}  // namespace auric::eval
