#include "core/engine.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace auric::core {
namespace {

struct Fixture {
  netsim::Topology topo = test::chain_topology();
  config::ParamCatalog catalog = test::tiny_catalog();
  config::ConfigAssignment assignment = test::tiny_assignment(topo);
  netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
};

AuricOptions relaxed() {
  AuricOptions options;
  options.backoff_levels = 2;
  return options;
}

TEST(AuricEngine, RecommendsTheBandRuleForEveryCarrier) {
  Fixture f;
  const AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, relaxed());
  for (const netsim::Carrier& c : f.topo.carriers) {
    const Recommendation rec = engine.recommend(0, c.id);
    EXPECT_EQ(rec.value, c.band == netsim::Band::kLow ? 3 : 7) << "carrier " << c.id;
    EXPECT_NE(rec.source, RecommendationSource::kRulebookDefault);
  }
}

TEST(AuricEngine, PairwiseRecommendationNeedsNeighbor) {
  Fixture f;
  const AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, relaxed());
  EXPECT_THROW(engine.recommend(1, 0), std::invalid_argument);
  EXPECT_THROW(engine.recommend(0, 0, 2), std::invalid_argument);
  const Recommendation rec = engine.recommend(1, 0, 2);  // intra-frequency edge
  EXPECT_EQ(rec.value, 2);
}

TEST(AuricEngine, LocalSourcePreferredWhenProximityOn) {
  Fixture f;
  AuricOptions options = relaxed();
  options.use_proximity = true;
  const AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, options);
  // Carrier 0's neighborhood {1, 2} contains matching carrier 2 only; the
  // quorum (3) cannot be met locally, so the decision comes from the global
  // vote.
  const Recommendation rec = engine.recommend(0, 0);
  EXPECT_EQ(rec.source, RecommendationSource::kGlobalVote);
  EXPECT_EQ(rec.value, 3);
}

TEST(AuricEngine, GlobalOnlyWhenProximityOff) {
  Fixture f;
  AuricOptions options = relaxed();
  options.use_proximity = false;
  const AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, options);
  const Recommendation rec = engine.recommend(0, 0);
  EXPECT_EQ(rec.source, RecommendationSource::kGlobalVote);
}

TEST(AuricEngine, FallsBackToRulebookDefaultWithoutEvidence) {
  Fixture f;
  // Scatter the values so no peer group reaches a 75% vote anywhere.
  for (std::size_t c = 0; c < f.topo.carrier_count(); ++c) {
    f.assignment.singular[0].value[c] = static_cast<config::ValueIndex>(c % 11);
    f.assignment.singular[0].intended[c] = static_cast<config::ValueIndex>(c % 11);
  }
  const AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, relaxed());
  const Recommendation rec = engine.recommend(0, 0);
  EXPECT_EQ(rec.source, RecommendationSource::kRulebookDefault);
  EXPECT_EQ(rec.value, f.catalog.at(0).default_index);  // default = 5
}

TEST(AuricEngine, BatchHelpersCoverEveryParameter) {
  Fixture f;
  const AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, relaxed());
  EXPECT_EQ(engine.recommend_singular(0).size(), f.catalog.singular_ids().size());
  EXPECT_EQ(engine.recommend_pairwise(0, 2).size(), f.catalog.pairwise_ids().size());
}

TEST(AuricEngine, ExplainNamesTheEvidence) {
  Fixture f;
  const AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, relaxed());
  const Recommendation rec = engine.recommend(0, 0);
  const std::string explanation = engine.explain(rec, 0);
  EXPECT_NE(explanation.find("toySingular"), std::string::npos);
  EXPECT_NE(explanation.find("support"), std::string::npos);
  EXPECT_NE(explanation.find("global-vote"), std::string::npos);
}

TEST(AuricEngine, ExcludeSelfChangesThinVotes) {
  Fixture f;
  // Give one 700 MHz carrier a unique value; with exclude_self its own
  // observation cannot vote for itself.
  f.assignment.singular[0].value[4] = 10;
  AuricOptions options = relaxed();
  options.max_dependent = 6;
  const AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, options);
  const Recommendation with_self = engine.recommend(0, 4, netsim::kInvalidCarrier, false);
  const Recommendation without_self = engine.recommend(0, 4, netsim::kInvalidCarrier, true);
  EXPECT_EQ(without_self.value, 3);  // the other 700 MHz carriers
  // Including self, the own unique value forms part of the evidence; the
  // recommendation may differ (or the vote may fail) but must never be both
  // identical in value AND in evidence counts.
  EXPECT_TRUE(with_self.value != without_self.value ||
              with_self.group_size != without_self.group_size);
}

TEST(AuricEngine, ColdStartRecommendsFromAttributes) {
  Fixture f;
  const AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, relaxed());
  // A brand-new 700 MHz carrier, not in the inventory, planned next to
  // site 0: its attributes match the low-band peer group.
  netsim::Carrier planned = f.topo.carriers[0];
  planned.id = static_cast<netsim::CarrierId>(f.topo.carrier_count() + 100);
  const std::vector<netsim::CarrierId> x2{0, 2};
  const Recommendation rec = engine.recommend_for(planned, x2, 0);
  EXPECT_EQ(rec.value, 3);
  EXPECT_NE(rec.source, RecommendationSource::kRulebookDefault);
  // The full-batch helper covers every singular parameter.
  EXPECT_EQ(engine.recommend_for_all_singular(planned, x2).size(),
            f.catalog.singular_ids().size());
}

TEST(AuricEngine, ColdStartUnseenAttributeFallsToDefault) {
  Fixture f;
  const AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, relaxed());
  netsim::Carrier alien = f.topo.carriers[0];
  alien.frequency_mhz = 2600;  // never observed in the chain fixture
  const Recommendation rec = engine.recommend_for(alien, {}, 0);
  // §6 "bootstrapping the unobserved": stick with the default.
  EXPECT_EQ(rec.source, RecommendationSource::kRulebookDefault);
  EXPECT_EQ(rec.value, f.catalog.at(0).default_index);
}

TEST(AuricEngine, ColdStartPairwiseNeedsNeighbor) {
  Fixture f;
  const AuricEngine engine(f.topo, f.schema, f.catalog, f.assignment, relaxed());
  const netsim::Carrier planned = f.topo.carriers[0];
  EXPECT_THROW(engine.recommend_for(planned, {}, 1), std::invalid_argument);
  const Recommendation rec = engine.recommend_for(planned, {}, 1, /*neighbor=*/2);
  EXPECT_EQ(rec.value, 2);
}

TEST(RecommendationSourceNames, Stable) {
  EXPECT_STREQ(recommendation_source_name(RecommendationSource::kLocalVote), "local-vote");
  EXPECT_STREQ(recommendation_source_name(RecommendationSource::kRulebookDefault),
               "rulebook-default");
}

}  // namespace
}  // namespace auric::core
