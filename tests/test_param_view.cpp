#include "core/param_view.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace auric::core {
namespace {

struct Fixture {
  netsim::Topology topo = test::tiny_topology();
  config::ParamCatalog catalog = test::tiny_catalog();
  config::ConfigAssignment assignment = test::tiny_assignment(topo);
  netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
};

TEST(ParamView, SingularCoversAllConfiguredCarriers) {
  Fixture f;
  const ParamView view = build_param_view(f.topo, f.catalog, f.assignment, 0);
  EXPECT_FALSE(view.pairwise);
  EXPECT_EQ(view.rows(), 6u);
  // Two distinct values: 3 (low band) and 7 (mid band).
  EXPECT_EQ(view.labels.size(), 2u);
  for (std::size_t r = 0; r < view.rows(); ++r) {
    const auto band = f.topo.carrier(view.carrier[r]).band;
    EXPECT_EQ(view.value[r], band == netsim::Band::kLow ? 3 : 7);
    EXPECT_EQ(view.neighbor[r], netsim::kInvalidCarrier);
    EXPECT_EQ(view.entity[r], static_cast<std::size_t>(view.carrier[r]));
  }
}

TEST(ParamView, MarketFilterRestrictsRows) {
  Fixture f;
  const ParamView view = build_param_view(f.topo, f.catalog, f.assignment, 0, netsim::MarketId{1});
  EXPECT_EQ(view.rows(), 2u);
  for (std::size_t r = 0; r < view.rows(); ++r) {
    EXPECT_EQ(f.topo.carrier(view.carrier[r]).market, 1);
  }
}

TEST(ParamView, PairwiseOnlyIntraFrequencyEdges) {
  Fixture f;
  const ParamView view = build_param_view(f.topo, f.catalog, f.assignment, 1);
  EXPECT_TRUE(view.pairwise);
  // Intra-frequency edges in the fixture: 0<->2 and 1<->3 (both directions).
  EXPECT_EQ(view.rows(), 4u);
  for (std::size_t r = 0; r < view.rows(); ++r) {
    EXPECT_EQ(f.topo.carrier(view.carrier[r]).frequency_mhz,
              f.topo.carrier(view.neighbor[r]).frequency_mhz);
    EXPECT_EQ(view.value[r], 2);
  }
}

TEST(ParamView, RowsOfIndexIsConsistent) {
  Fixture f;
  const ParamView view = build_param_view(f.topo, f.catalog, f.assignment, 1);
  std::size_t total = 0;
  for (std::size_t c = 0; c < f.topo.carrier_count(); ++c) {
    for (std::uint32_t row : view.rows_of(static_cast<netsim::CarrierId>(c))) {
      EXPECT_EQ(view.carrier[row], static_cast<netsim::CarrierId>(c));
      ++total;
    }
  }
  EXPECT_EQ(total, view.rows());
}

TEST(ParamView, LabelsRoundTripValues) {
  Fixture f;
  const ParamView view = build_param_view(f.topo, f.catalog, f.assignment, 0);
  for (std::size_t r = 0; r < view.rows(); ++r) {
    EXPECT_EQ(view.labels.values[static_cast<std::size_t>(view.label[r])], view.value[r]);
  }
}

TEST(ToCategoricalDataset, SingularHasOneColumnPerAttribute) {
  Fixture f;
  const auto codes = f.schema.encode_all(f.topo);
  const ParamView view = build_param_view(f.topo, f.catalog, f.assignment, 0);
  const ml::CategoricalDataset data = to_categorical_dataset(view, f.schema, codes);
  EXPECT_EQ(data.num_attributes(), f.schema.attribute_count());
  EXPECT_EQ(data.rows(), view.rows());
  data.check();
}

TEST(ToCategoricalDataset, PairwiseAddsNeighborColumns) {
  Fixture f;
  const auto codes = f.schema.encode_all(f.topo);
  const ParamView view = build_param_view(f.topo, f.catalog, f.assignment, 1);
  const ml::CategoricalDataset data = to_categorical_dataset(view, f.schema, codes);
  EXPECT_EQ(data.num_attributes(), 2 * f.schema.attribute_count());
  EXPECT_EQ(data.column_names[f.schema.attribute_count()], "nbr_carrier_frequency");
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const std::size_t freq = f.schema.index_of("carrier_frequency");
    // Intra-frequency relation: carrier and neighbor share the frequency code.
    EXPECT_EQ(data.columns[freq][r], data.columns[f.schema.attribute_count() + freq][r]);
  }
  data.check();
}

}  // namespace
}  // namespace auric::core
