#include "core/dependency.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_helpers.h"
#include "util/rng.h"

namespace auric::core {
namespace {

struct Fixture {
  netsim::Topology topo = test::small_generated_topology(5, 2, 25);
  netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  std::vector<std::vector<netsim::AttrCode>> codes = schema.encode_all(topo);
  config::ParamCatalog catalog = test::tiny_catalog();
};

/// Builds a singular view whose value is a pure function of one attribute.
ParamView planted_view(const Fixture& f, const std::string& attr_name) {
  const std::size_t attr = f.schema.index_of(attr_name);
  config::ConfigAssignment assignment;
  assignment.singular.resize(1);
  auto& col = assignment.singular[0];
  col.value.resize(f.topo.carrier_count());
  col.intended.resize(f.topo.carrier_count());
  col.cause.assign(f.topo.carrier_count(), config::Cause::kAttributeRule);
  for (std::size_t c = 0; c < f.topo.carrier_count(); ++c) {
    col.value[c] = f.codes[attr][c] % 11;
    col.intended[c] = col.value[c];
  }
  assignment.pairwise.resize(1);
  assignment.pairwise[0].value.assign(f.topo.edge_count(), config::kUnset);
  assignment.pairwise[0].intended.assign(f.topo.edge_count(), config::kUnset);
  assignment.pairwise[0].cause.assign(f.topo.edge_count(), config::Cause::kDefault);
  return build_param_view(f.topo, f.catalog, assignment, 0);
}

TEST(Dependency, DiscoversPlantedAttribute) {
  Fixture f;
  const ParamView view = planted_view(f, "morphology");
  const DependencyModel model = learn_dependencies(view, f.codes, f.schema, {});
  ASSERT_FALSE(model.dependent.empty());
  // The causal attribute must be the top-ranked dependent.
  EXPECT_EQ(model.dependent.front().attr, f.schema.index_of("morphology"));
  EXPECT_FALSE(model.dependent.front().neighbor_side);
}

TEST(Dependency, IndependentLabelsFlagNothing) {
  Fixture f;
  ParamView view = planted_view(f, "morphology");
  // Replace labels by a hash of the carrier id: independent of every attr.
  for (std::size_t r = 0; r < view.rows(); ++r) {
    view.value[r] = static_cast<config::ValueIndex>(
        util::hash_combine({99, static_cast<std::uint64_t>(view.carrier[r])}) % 5);
  }
  view.labels = ml::LabelDictionary::build(view.value);
  for (std::size_t r = 0; r < view.rows(); ++r) {
    view.label[r] = view.labels.code_of(view.value[r]);
  }
  const DependencyModel model = learn_dependencies(view, f.codes, f.schema, {});
  // At p=0.01 over 14 tests, allow at most one false positive.
  EXPECT_LE(model.dependent.size(), 1u);
}

TEST(Dependency, MaxDependentCapsStrongestFirst) {
  Fixture f;
  const ParamView view = planted_view(f, "carrier_frequency");
  DependencyOptions tight;
  tight.max_dependent = 2;
  const DependencyModel capped = learn_dependencies(view, f.codes, f.schema, tight);
  EXPECT_LE(capped.dependent.size(), 2u);
  DependencyOptions loose;
  loose.max_dependent = 0;  // unlimited
  const DependencyModel full = learn_dependencies(view, f.codes, f.schema, loose);
  EXPECT_GE(full.dependent.size(), capped.dependent.size());
  // The capped set must be a prefix of the full ranked set.
  for (std::size_t i = 0; i < capped.dependent.size(); ++i) {
    EXPECT_EQ(capped.dependent[i], full.dependent[i]);
  }
}

TEST(Dependency, TestsEveryAttributeOnce) {
  Fixture f;
  const ParamView view = planted_view(f, "vendor");
  const DependencyModel model = learn_dependencies(view, f.codes, f.schema, {});
  EXPECT_EQ(model.tests.size(), f.schema.attribute_count());  // singular: carrier side only
  for (const DependencyTest& test : model.tests) EXPECT_FALSE(test.ref.neighbor_side);
}

TEST(Dependency, PairwiseTestsNeighborSideToo) {
  Fixture f;
  config::ConfigAssignment assignment;
  assignment.singular.resize(1);
  assignment.singular[0].value.assign(f.topo.carrier_count(), config::kUnset);
  assignment.singular[0].intended.assign(f.topo.carrier_count(), config::kUnset);
  assignment.singular[0].cause.assign(f.topo.carrier_count(), config::Cause::kDefault);
  assignment.pairwise.resize(1);
  auto& col = assignment.pairwise[0];
  col.value.resize(f.topo.edge_count());
  col.intended.resize(f.topo.edge_count());
  col.cause.assign(f.topo.edge_count(), config::Cause::kAttributeRule);
  const std::size_t freq = f.schema.index_of("carrier_frequency");
  for (std::size_t e = 0; e < f.topo.edge_count(); ++e) {
    const auto& edge = f.topo.edges[e];
    const bool intra = f.topo.carrier(edge.from).frequency_mhz ==
                       f.topo.carrier(edge.to).frequency_mhz;
    if (!intra) {
      col.value[e] = col.intended[e] = config::kUnset;
      continue;
    }
    // Value keyed on the NEIGHBOR's frequency code.
    col.value[e] = f.codes[freq][static_cast<std::size_t>(edge.to)] % 11;
    col.intended[e] = col.value[e];
  }
  const ParamView view = build_param_view(f.topo, f.catalog, assignment, 1);
  const DependencyModel model = learn_dependencies(view, f.codes, f.schema, {});
  EXPECT_EQ(model.tests.size(), 2 * f.schema.attribute_count());
  ASSERT_FALSE(model.dependent.empty());
}

TEST(Dependency, AttrRefNames) {
  Fixture f;
  EXPECT_EQ(attr_ref_name({false, f.schema.index_of("morphology")}, f.schema), "morphology");
  EXPECT_EQ(attr_ref_name({true, f.schema.index_of("morphology")}, f.schema), "nbr_morphology");
}

}  // namespace
}  // namespace auric::core
