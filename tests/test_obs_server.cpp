#include "obs/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/http_listener.h"
#include "obs/log_buffer.h"
#include "obs/profiler.h"
#include "obs/rules.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace auric::obs {
namespace {

// Minimal HTTP client: one raw request, read to connection close.
std::string http_request(std::uint16_t port, const std::string& raw) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("client socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("client connect() failed");
  }
  size_t sent = 0;
  while (sent < raw.size()) {
    ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) {
      break;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& target) {
  return http_request(port, "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

TEST(MetricsServer, HandleRoutesEveryEndpoint) {
  MetricsRegistry reg;
  reg.counter("req_total", "requests").inc(7);
  MetricsServer server(reg);

  MetricsServer::Response metrics = server.handle("GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.body.find("req_total 7"), std::string::npos);

  MetricsServer::Response varz = server.handle("GET", "/varz");
  EXPECT_EQ(varz.status, 200);
  EXPECT_EQ(varz.content_type, "application/json");
  EXPECT_EQ(varz.body.front(), '[');
  EXPECT_NE(varz.body.find("\"name\":\"req_total\""), std::string::npos);

  // Query strings are stripped; endpoints take no parameters.
  EXPECT_EQ(server.handle("GET", "/metrics?format=json").status, 200);
  // The index lists the endpoints; unknown paths are 404, non-GET is 405.
  EXPECT_NE(server.handle("GET", "/").body.find("/healthz"), std::string::npos);
  EXPECT_EQ(server.handle("GET", "/nope").status, 404);
  EXPECT_EQ(server.handle("POST", "/metrics").status, 405);
  EXPECT_EQ(server.handle("HEAD", "/metrics").status, 405);
}

TEST(MetricsServer, OptionalSourcesGateTheirEndpoints) {
  MetricsRegistry reg;
  MetricsServer server(reg);
  // Nothing wired: healthz degrades to "alive == healthy", the rest 404.
  MetricsServer::Response healthz = server.handle("GET", "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(server.handle("GET", "/tracez").status, 404);
  EXPECT_EQ(server.handle("GET", "/logz").status, 404);

  TraceRecorder traces(8);
  { ScopedSpan span("test.span", traces); }
  LogBuffer logs(8);
  logs.append("hello from the ring");
  server.set_trace_recorder(&traces);
  server.set_log_buffer(&logs);
  MetricsServer::Response tracez = server.handle("GET", "/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_EQ(tracez.content_type, "application/x-ndjson");
  EXPECT_NE(tracez.body.find("\"name\":\"test.span\""), std::string::npos);
  MetricsServer::Response logz = server.handle("GET", "/logz");
  EXPECT_EQ(logz.status, 200);
  EXPECT_EQ(logz.body, "hello from the ring\n");
}

TEST(MetricsServer, HealthzFollowsTheRuleEngineVerdict) {
  MetricsRegistry reg;
  RuleEngine engine(reg);
  AlertRule rule;
  rule.name = "must_fire";
  rule.kind = AlertRule::Kind::kAbsence;
  rule.metric = SeriesSelector::parse("no_such_metric");
  engine.add_rule(rule);
  engine.set_log([](const std::string&) {});
  MetricsServer server(reg);
  server.set_rule_engine(&engine);

  EXPECT_EQ(server.handle("GET", "/healthz").status, 200);  // not yet evaluated
  Sampler sampler(reg);
  sampler.tick_with(1.0, {});
  engine.evaluate(sampler, 1.0);
  MetricsServer::Response firing = server.handle("GET", "/healthz");
  EXPECT_EQ(firing.status, 503);
  EXPECT_NE(firing.body.find("\"status\":\"alerting\""), std::string::npos);
  EXPECT_NE(firing.body.find("must_fire"), std::string::npos);
}

TEST(MetricsServer, ServesOverAnEphemeralPort) {
  MetricsRegistry reg;
  reg.counter("live_total", "liveness probe").inc(3);
  MetricsServer server(reg);
  EXPECT_EQ(server.port(), 0);
  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.port(), 0);

  const std::string response = http_get(server.port(), "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(response.find("Content-Length: "), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("live_total 3"), std::string::npos);

  EXPECT_NE(http_get(server.port(), "/nope").rfind("HTTP/1.1 404", 0), std::string::npos);
  EXPECT_GE(server.requests_served(), 2u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
  EXPECT_THROW(http_get(server.port(), "/metrics"), std::runtime_error);
}

TEST(MetricsServer, RejectsMalformedAndOversizedRequests) {
  MetricsRegistry reg;
  MetricsServerOptions options;
  options.max_request_bytes = 256;
  MetricsServer server(reg, options);
  server.start();

  EXPECT_EQ(http_request(server.port(), "GARBAGE\r\n\r\n").rfind("HTTP/1.1 400", 0), 0u);
  EXPECT_EQ(http_request(server.port(), "GET /metrics\r\n\r\n").rfind("HTTP/1.1 400", 0), 0u);
  EXPECT_EQ(http_request(server.port(), "POST /metrics HTTP/1.1\r\n\r\n").rfind("HTTP/1.1 405", 0),
            0u);
  const std::string oversized =
      "GET /metrics HTTP/1.1\r\nX-Padding: " + std::string(512, 'x') + "\r\n\r\n";
  EXPECT_EQ(http_request(server.port(), oversized).rfind("HTTP/1.1 413", 0), 0u);
  server.stop();
}

TEST(MetricsServer, ConcurrentScrapesAllSucceed) {
  MetricsRegistry reg;
  reg.counter("scrape_total").inc(1);
  MetricsServer server(reg);
  server.start();
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 5;
  std::vector<std::thread> clients;
  std::vector<int> ok(kClients, 0);
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsEach; ++i) {
        const std::string response = http_get(server.port(), "/metrics");
        if (response.rfind("HTTP/1.1 200", 0) == 0 &&
            response.find("scrape_total 1") != std::string::npos) {
          ++ok[c];
        }
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  int total = 0;
  for (int n : ok) {
    total += n;
  }
  EXPECT_EQ(total, kClients * kRequestsEach);
  EXPECT_GE(server.requests_served(), static_cast<std::uint64_t>(kClients * kRequestsEach));
  server.stop();
}

TEST(MetricsServer, RebindingAFixedPortAfterStopWorks) {
  MetricsRegistry reg;
  MetricsServer first(reg);
  first.start();
  const std::uint16_t port = first.port();
  first.stop();

  MetricsServerOptions options;
  options.port = port;  // freed by stop(); SO_REUSEADDR covers TIME_WAIT
  MetricsServer second(reg, options);
  second.start();
  EXPECT_EQ(second.port(), port);
  EXPECT_EQ(http_get(port, "/healthz").rfind("HTTP/1.1 200", 0), 0u);
  second.stop();
}

TEST(MetricsServer, BadBindAddressThrows) {
  MetricsRegistry reg;
  MetricsServerOptions options;
  options.bind_address = "not-an-address";
  MetricsServer server(reg, options);
  EXPECT_THROW(server.start(), std::runtime_error);
  EXPECT_FALSE(server.running());
}

// --- shared HttpListener hardening (the machinery under MetricsServer and
// --- the serve daemon) ---

int connect_to(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("client socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("client connect() failed");
  }
  return fd;
}

std::string read_all(int fd) {
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  return response;
}

TEST(HttpListener, SlowClientGets408AndDoesNotWedgeTheWorker) {
  HttpListenerOptions options;
  options.read_deadline_ms = 200;
  options.threads = 1;  // the single worker must not be wedged by the staller
  HttpListener listener([](const HttpRequest&) { return HttpResponse{200, "text/plain", "ok\n", {}}; },
                        options);
  listener.start();

  // The slow client sends half a request and stalls.
  int slow_fd = connect_to(listener.port());
  const std::string half = "GET /slow HTTP/1.1\r\nHost: local";
  ASSERT_EQ(::send(slow_fd, half.data(), half.size(), 0),
            static_cast<ssize_t>(half.size()));

  // A well-behaved client arriving behind it is served once the read
  // deadline reaps the staller — bounded delay, not a wedge.
  const auto t0 = std::chrono::steady_clock::now();
  int good_fd = connect_to(listener.port());
  const std::string full = "GET /good HTTP/1.1\r\nHost: local\r\n\r\n";
  ASSERT_EQ(::send(good_fd, full.data(), full.size(), 0), static_cast<ssize_t>(full.size()));
  const std::string good_response = read_all(good_fd);
  ::close(good_fd);
  const auto waited =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(good_response.rfind("HTTP/1.1 200", 0), 0u);
  EXPECT_LT(waited.count(), 2000);  // reaped at ~200ms, not the 2s default

  // The staller itself got a terminal 408 before its connection closed.
  const std::string slow_response = read_all(slow_fd);
  ::close(slow_fd);
  EXPECT_EQ(slow_response.rfind("HTTP/1.1 408", 0), 0u);
  listener.stop();
}

TEST(HttpListener, HalfRequestThenCloseGetsA400NotAHang) {
  HttpListenerOptions options;
  options.threads = 1;
  HttpListener listener([](const HttpRequest&) { return HttpResponse{200, "text/plain", "ok\n", {}}; },
                        options);
  listener.start();

  int fd = connect_to(listener.port());
  const std::string half = "GET /x HTTP/1.1\r\nHost:";
  ASSERT_EQ(::send(fd, half.data(), half.size(), 0), static_cast<ssize_t>(half.size()));
  ::shutdown(fd, SHUT_WR);  // EOF before the request completed
  const std::string response = read_all(fd);
  ::close(fd);
  EXPECT_EQ(response.rfind("HTTP/1.1 400", 0), 0u);
  listener.stop();
}

TEST(HttpListener, ShedsConnectionsPastThePendingBound) {
  HttpListenerOptions options;
  options.pending_connections = 0;  // everything accepted is over the bound
  HttpListener listener([](const HttpRequest&) { return HttpResponse{200, "text/plain", "ok\n", {}}; },
                        options);
  listener.start();

  int fd = connect_to(listener.port());
  const std::string full = "GET /x HTTP/1.1\r\n\r\n";
  ::send(fd, full.data(), full.size(), 0);
  const std::string response = read_all(fd);
  ::close(fd);
  EXPECT_EQ(response.rfind("HTTP/1.1 503", 0), 0u);
  EXPECT_NE(response.find("Retry-After"), std::string::npos);
  EXPECT_GE(listener.connections_shed(), 1u);
  listener.stop();
}

TEST(HttpListener, ClientAbortAfterResponseStartsDoesNotKillTheProcess) {
  // A client that slams the connection mid-write would deliver SIGPIPE
  // without MSG_NOSIGNAL; surviving this loop proves the suppression.
  MetricsRegistry reg;
  reg.counter("big_total").inc(1);
  HttpListenerOptions options;
  HttpListener listener(
      [](const HttpRequest&) {
        return HttpResponse{200, "text/plain", std::string(1 << 20, 'x'), {}};
      },
      options);
  listener.start();
  for (int i = 0; i < 5; ++i) {
    int fd = connect_to(listener.port());
    const std::string full = "GET /big HTTP/1.1\r\n\r\n";
    ::send(fd, full.data(), full.size(), 0);
    char buf[128];
    (void)::recv(fd, buf, sizeof(buf), 0);  // read a sliver of the 1 MiB body
    ::close(fd);                            // then slam the door
  }
  // The listener survived and still serves.
  int fd = connect_to(listener.port());
  const std::string full = "GET /big HTTP/1.1\r\n\r\n";
  ::send(fd, full.data(), full.size(), 0);
  EXPECT_EQ(read_all(fd).rfind("HTTP/1.1 200", 0), 0u);
  ::close(fd);
  listener.stop();
}

TEST(MetricsServer, TracezRoutesTraceIdAndMinMsQueries) {
  MetricsRegistry reg;
  MetricsServer server(reg);
  TraceRecorder traces(16);
  TailOptions tail;
  tail.min_ms = 0.0;
  traces.set_tail_options(tail);
  TraceId id;
  {
    ScopedSpan span("kept.span", traces);
    id = span.trace();
  }
  server.set_trace_recorder(&traces);
  MetricsServer::Response by_id =
      server.handle("GET", "/tracez?trace_id=" + trace_id_hex(id));
  EXPECT_EQ(by_id.status, 200);
  EXPECT_NE(by_id.body.find("\"name\":\"kept.span\""), std::string::npos);
  MetricsServer::Response miss =
      server.handle("GET", "/tracez?trace_id=" + std::string(32, 'e'));
  EXPECT_EQ(miss.status, 200);
  EXPECT_TRUE(miss.body.empty());
  MetricsServer::Response slow = server.handle("GET", "/tracez?min_ms=0");
  EXPECT_NE(slow.body.find("\"dur_ms\":"), std::string::npos);
}

TEST(MetricsServer, ProfilezReportsSupportBusyAndBadParams) {
  MetricsRegistry reg;
  MetricsServer server(reg);
  if (!Profiler::supported()) {
    // Sanitizer / non-Linux builds: the route must say so, not 404.
    EXPECT_EQ(server.handle("GET", "/profilez").status, 501);
    return;
  }
  EXPECT_EQ(server.handle("GET", "/profilez?seconds=abc").status, 400);

  // Keep a core busy so SIGPROF has CPU time to sample.
  std::atomic<bool> stop{false};
  std::thread burner([&stop] {
    volatile std::uint64_t sink = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      sink = sink * 31 + 1;
    }
  });
  MetricsServer::Response profile = server.handle("GET", "/profilez?seconds=1");
  stop.store(true);
  burner.join();
  EXPECT_EQ(profile.status, 200);
  EXPECT_EQ(profile.body.rfind("# samples=", 0), 0u);
  EXPECT_NE(profile.body.find(" dropped="), std::string::npos);
}

TEST(HttpListener, AdoptsTraceparentAndEchoesTheTraceInTheResponse) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.clear();
  TailOptions tail;
  tail.min_ms = 0.0;  // keep every finalized trace for the assertions
  rec.set_tail_options(tail);

  HttpListener listener(
      [](const HttpRequest& request) {
        const int status = request.path() == "/boom" ? 500 : 200;
        return HttpResponse{status, "text/plain", "done\n", {}};
      },
      HttpListenerOptions{});
  listener.start();

  const std::string client_header = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
  int fd = connect_to(listener.port());
  const std::string request =
      "GET /hello HTTP/1.1\r\nTraceparent: " + client_header + "\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  const std::string response = read_all(fd);
  ::close(fd);

  // The response carries the SAME trace id with the server's span id.
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u);
  EXPECT_NE(response.find("\r\nTraceparent: 00-0af7651916cd43dd8448eb211c80319c-"),
            std::string::npos);
  EXPECT_EQ(response.find("Traceparent: " + client_header), std::string::npos);

  // The adopted trace was finalized server-side and is queryable by its id.
  const TraceId id = *parse_trace_id_hex("0af7651916cd43dd8448eb211c80319c");
  const std::vector<KeptTrace> kept = rec.kept_traces();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].trace, id);
  EXPECT_FALSE(kept[0].error);
  ASSERT_EQ(kept[0].spans.size(), 1u);
  EXPECT_EQ(kept[0].spans[0].name, "http./hello");
  // The remote parent id is recorded verbatim on the server's root span.
  EXPECT_EQ(kept[0].spans[0].parent, 0xb7ad6b7169203331ULL);

  // A 5xx response marks its trace as an error.
  fd = connect_to(listener.port());
  const std::string boom =
      "GET /boom HTTP/1.1\r\nTraceparent: 00-0af7651916cd43dd8448eb211c80319d-"
      "b7ad6b7169203331-01\r\n\r\n";
  ::send(fd, boom.data(), boom.size(), 0);
  const std::string boom_response = read_all(fd);
  ::close(fd);
  EXPECT_EQ(boom_response.rfind("HTTP/1.1 500", 0), 0u);
  const std::vector<KeptTrace> kept_after = rec.kept_traces();
  ASSERT_EQ(kept_after.size(), 2u);
  EXPECT_TRUE(kept_after[1].error);

  // A request WITHOUT a traceparent still gets a trace of its own.
  fd = connect_to(listener.port());
  const std::string bare = "GET /hello HTTP/1.1\r\n\r\n";
  ::send(fd, bare.data(), bare.size(), 0);
  const std::string bare_response = read_all(fd);
  ::close(fd);
  EXPECT_NE(bare_response.find("\r\nTraceparent: 00-"), std::string::npos);

  listener.stop();
  rec.clear();
  rec.set_tail_options(TailOptions{});  // restore defaults for later tests
}

}  // namespace
}  // namespace auric::obs
