#include "smartlaunch/ems.h"

#include <gtest/gtest.h>

namespace auric::smartlaunch {
namespace {

std::vector<config::MoSetting> settings(std::size_t n) {
  std::vector<config::MoSetting> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back({"MO=" + std::to_string(i), 0, 1});
  return out;
}

EmsOptions reliable() {
  EmsOptions options;
  options.flaky_timeout_prob = 0.0;
  return options;
}

TEST(Ems, CarriersStartLocked) {
  const EmsSimulator ems(4, reliable());
  for (netsim::CarrierId c = 0; c < 4; ++c) EXPECT_EQ(ems.state(c), CarrierState::kLocked);
}

TEST(Ems, PushAppliesWhileLocked) {
  EmsSimulator ems(2, reliable());
  const PushResult result = ems.push(0, settings(8));
  EXPECT_EQ(result.status, PushStatus::kApplied);
  EXPECT_EQ(result.applied, 8u);
  // 8 settings at concurrency 4 = 2 waves of 180 ms.
  EXPECT_DOUBLE_EQ(result.elapsed_ms, 360.0);
}

TEST(Ems, PushRefusedWhenUnlocked) {
  EmsSimulator ems(2, reliable());
  ems.unlock(0);
  const PushResult result = ems.push(0, settings(3));
  EXPECT_EQ(result.status, PushStatus::kRejectedUnlocked);
  EXPECT_EQ(result.applied, 0u);
}

TEST(Ems, OutOfBandUnlockAlsoBlocksPushes) {
  EmsSimulator ems(2, reliable());
  ems.unlock_out_of_band(1);
  EXPECT_EQ(ems.push(1, settings(1)).status, PushStatus::kRejectedUnlocked);
  EXPECT_EQ(ems.push(0, settings(1)).status, PushStatus::kApplied);
}

TEST(Ems, OversizedBatchTimesOutWithPartialApplication) {
  EmsSimulator ems(1, reliable());
  // deadline 1500 ms / 180 ms = 8 waves x concurrency 4 = 32 settings max.
  const PushResult result = ems.push(0, settings(200));
  EXPECT_EQ(result.status, PushStatus::kTimeout);
  EXPECT_EQ(result.applied, 32u);
  EXPECT_DOUBLE_EQ(result.elapsed_ms, 1500.0);
}

TEST(Ems, EmptyPushIsTrivialSuccess) {
  EmsSimulator ems(1, reliable());
  const PushResult result = ems.push(0, {});
  EXPECT_EQ(result.status, PushStatus::kApplied);
  EXPECT_EQ(result.applied, 0u);
}

TEST(Ems, LockCyclesCountReLocks) {
  EmsSimulator ems(1, reliable());
  EXPECT_EQ(ems.lock_cycles(), 0u);
  ems.lock(0);  // already locked: no cycle
  EXPECT_EQ(ems.lock_cycles(), 0u);
  ems.unlock(0);
  ems.lock(0);  // off-air transition: the disruptive operation
  EXPECT_EQ(ems.lock_cycles(), 1u);
}

TEST(Ems, FlakyFaultsEventuallyTimeout) {
  EmsOptions flaky;
  flaky.flaky_timeout_prob = 1.0;
  EmsSimulator ems(1, flaky);
  EXPECT_EQ(ems.push(0, settings(2)).status, PushStatus::kTimeout);
}

TEST(Ems, AlwaysFaultStreamTimesOutEveryPush) {
  EmsOptions flaky;
  flaky.flaky_timeout_prob = 1.0;
  EmsSimulator ems(1, flaky);
  for (int i = 0; i < 50; ++i) {
    const PushResult result = ems.push(0, settings(8));
    EXPECT_EQ(result.status, PushStatus::kTimeout);
    EXPECT_TRUE(result.transient);  // flaky faults are retryable by contract
    EXPECT_LT(result.applied, 8u);  // the fault aborts before completion
  }
}

TEST(Ems, PartialApplyNeverExceedsChangeSet) {
  EmsOptions flaky;
  flaky.flaky_timeout_prob = 0.5;
  flaky.seed = 7;
  EmsSimulator ems(1, flaky);
  std::size_t timeouts = 0;
  for (int i = 0; i < 200; ++i) {
    const PushResult result = ems.push(0, settings(20));
    if (result.status == PushStatus::kTimeout) {
      ++timeouts;
      EXPECT_LT(result.applied, 20u);  // partial: some settings lost
    } else {
      EXPECT_EQ(result.applied, 20u);
    }
  }
  EXPECT_GT(timeouts, 50u);  // at prob 0.5 the stream must fault often
}

TEST(Ems, StructuralTimeoutIsNotTransient) {
  EmsSimulator ems(1, reliable());
  const PushResult result = ems.push(0, settings(200));
  EXPECT_EQ(result.status, PushStatus::kTimeout);
  EXPECT_FALSE(result.transient);  // retrying the same set cannot succeed
}

TEST(Ems, MaxSettingsPerPushMatchesDeadline) {
  EmsSimulator ems(1, reliable());
  // deadline 1500 ms / 180 ms = 8 waves x concurrency 4.
  EXPECT_EQ(ems.max_settings_per_push(), 32u);
  EXPECT_EQ(ems.push(0, settings(32)).status, PushStatus::kApplied);
  EXPECT_EQ(ems.push(0, settings(33)).status, PushStatus::kTimeout);
}

TEST(Ems, PersistentFaultsAreDeterministicAndRepairable) {
  EmsOptions options = reliable();
  options.faults.persistent_fault_prob = 0.3;
  options.seed = 11;
  EmsSimulator ems(64, options);
  std::size_t sick = 0;
  for (netsim::CarrierId c = 0; c < 64; ++c) {
    if (!ems.persistent_fault(c)) continue;
    ++sick;
    for (int attempt = 0; attempt < 3; ++attempt) {
      const PushResult result = ems.push(c, settings(4));
      EXPECT_EQ(result.status, PushStatus::kTimeout);
      EXPECT_FALSE(result.transient);  // retries cannot help
      EXPECT_EQ(result.applied, 0u);
    }
    ems.repair_carrier(c);
    EXPECT_FALSE(ems.persistent_fault(c));
    EXPECT_EQ(ems.push(c, settings(4)).status, PushStatus::kApplied);
  }
  EXPECT_GT(sick, 5u);
  EXPECT_LT(sick, 40u);
}

TEST(Ems, LockFlapAbortsPartiallyAndUnlocks) {
  EmsOptions options = reliable();
  options.faults.lock_flap_prob = 1.0;
  EmsSimulator ems(1, options);
  const PushResult result = ems.push(0, settings(16));  // 4 waves
  EXPECT_EQ(result.status, PushStatus::kAbortedLockFlap);
  EXPECT_EQ(result.applied, 8u);  // half the waves landed
  EXPECT_EQ(ems.state(0), CarrierState::kUnlocked);
  // The carrier is now unlocked; a follow-up push is refused until re-lock.
  EXPECT_EQ(ems.push(0, settings(4)).status, PushStatus::kRejectedUnlocked);
  ems.lock(0);
  EXPECT_EQ(ems.push(0, settings(4)).status, PushStatus::kAbortedLockFlap);
}

TEST(Ems, BurstWindowsConcentrateFaults) {
  EmsOptions options = reliable();
  options.faults.burst_every = 10;
  options.faults.burst_length = 3;
  options.faults.burst_timeout_prob = 1.0;
  EmsSimulator ems(1, options);
  // Push indices 0,1,2 (mod 10) are inside the burst window.
  for (int i = 0; i < 30; ++i) {
    const PushResult result = ems.push(0, settings(4));
    const bool in_burst = i % 10 < 3;
    EXPECT_EQ(result.status, in_burst ? PushStatus::kTimeout : PushStatus::kApplied) << i;
    if (in_burst) {
      EXPECT_TRUE(result.transient);
    }
  }
  EXPECT_EQ(ems.pushes_executed(), 30u);
}

TEST(Ems, FaultStreamsAreDeterministicUnderSeed) {
  EmsOptions options;
  options.flaky_timeout_prob = 0.2;
  options.faults.lock_flap_prob = 0.1;
  options.faults.burst_every = 7;
  options.faults.burst_length = 2;
  options.seed = 1234;
  EmsSimulator a(4, options);
  EmsSimulator b(4, options);
  for (int i = 0; i < 100; ++i) {
    const auto carrier = static_cast<netsim::CarrierId>(i % 4);
    const PushResult ra = a.push(carrier, settings(6));
    const PushResult rb = b.push(carrier, settings(6));
    EXPECT_EQ(ra.status, rb.status) << i;
    EXPECT_EQ(ra.applied, rb.applied) << i;
    EXPECT_EQ(a.state(carrier), b.state(carrier)) << i;
    if (a.state(carrier) == CarrierState::kUnlocked) {
      a.lock(carrier);
      b.lock(carrier);
    }
  }
}

TEST(Ems, NewFaultClassesDefaultOff) {
  // The expanded fault model must not perturb the legacy behavior when its
  // knobs are zero: same seed, same statuses as a legacy-only configuration.
  EmsOptions options;
  options.flaky_timeout_prob = 0.06;
  EmsSimulator ems(8, options);
  std::size_t timeouts = 0;
  for (int i = 0; i < 400; ++i) {
    const PushResult result = ems.push(static_cast<netsim::CarrierId>(i % 8), settings(8));
    EXPECT_NE(result.status, PushStatus::kAbortedLockFlap);
    if (result.status == PushStatus::kTimeout) ++timeouts;
  }
  EXPECT_GT(timeouts, 5u);   // ~24 expected at 6%
  EXPECT_LT(timeouts, 70u);
}

TEST(Ems, SnapshotRestoreReproducesFaultSequence) {
  EmsOptions options;
  options.flaky_timeout_prob = 0.2;
  options.faults.lock_flap_prob = 0.1;
  options.faults.burst_every = 7;
  options.faults.burst_length = 2;
  options.seed = 77;
  EmsSimulator original(6, options);
  for (int i = 0; i < 40; ++i) {
    const auto carrier = static_cast<netsim::CarrierId>(i % 6);
    original.lock(carrier);
    original.push(carrier, settings(6));
  }
  original.unlock(2);
  original.repair_carrier(4);

  // A fresh simulator restored from the snapshot must continue with the
  // exact fault sequence the original sees — counters, streams and lock
  // states all carry over.
  EmsSimulator resumed(6, options);
  resumed.restore(original.snapshot());
  EXPECT_EQ(resumed.pushes_executed(), original.pushes_executed());
  EXPECT_EQ(resumed.lock_cycles(), original.lock_cycles());
  EXPECT_EQ(resumed.state(2), CarrierState::kUnlocked);
  for (int i = 0; i < 60; ++i) {
    const auto carrier = static_cast<netsim::CarrierId>(i % 6);
    original.lock(carrier);
    resumed.lock(carrier);
    const PushResult a = original.push(carrier, settings(5));
    const PushResult b = resumed.push(carrier, settings(5));
    EXPECT_EQ(a.status, b.status) << i;
    EXPECT_EQ(a.applied, b.applied) << i;
    EXPECT_EQ(a.transient, b.transient) << i;
  }
  EXPECT_EQ(resumed.snapshot().fault_stream, original.snapshot().fault_stream);
  EXPECT_EQ(resumed.snapshot().burst_stream, original.snapshot().burst_stream);
}

TEST(Ems, RestoreRejectsUnknownCarriers) {
  EmsSimulator ems(3);
  EmsSimulator::Snapshot snapshot = ems.snapshot();
  snapshot.unlocked.push_back(9);
  EXPECT_THROW(ems.restore(snapshot), std::invalid_argument);
  snapshot.unlocked.clear();
  snapshot.repaired.push_back(-1);
  EXPECT_THROW(ems.restore(snapshot), std::invalid_argument);
}

TEST(PushStatusNames, Stable) {
  EXPECT_STREQ(push_status_name(PushStatus::kApplied), "applied");
  EXPECT_STREQ(push_status_name(PushStatus::kTimeout), "timeout");
  EXPECT_STREQ(push_status_name(PushStatus::kAbortedLockFlap), "aborted-lock-flap");
}

}  // namespace
}  // namespace auric::smartlaunch
