#include "smartlaunch/ems.h"

#include <gtest/gtest.h>

namespace auric::smartlaunch {
namespace {

std::vector<config::MoSetting> settings(std::size_t n) {
  std::vector<config::MoSetting> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back({"MO=" + std::to_string(i), 0, 1});
  return out;
}

EmsOptions reliable() {
  EmsOptions options;
  options.flaky_timeout_prob = 0.0;
  return options;
}

TEST(Ems, CarriersStartLocked) {
  const EmsSimulator ems(4, reliable());
  for (netsim::CarrierId c = 0; c < 4; ++c) EXPECT_EQ(ems.state(c), CarrierState::kLocked);
}

TEST(Ems, PushAppliesWhileLocked) {
  EmsSimulator ems(2, reliable());
  const PushResult result = ems.push(0, settings(8));
  EXPECT_EQ(result.status, PushStatus::kApplied);
  EXPECT_EQ(result.applied, 8u);
  // 8 settings at concurrency 4 = 2 waves of 180 ms.
  EXPECT_DOUBLE_EQ(result.elapsed_ms, 360.0);
}

TEST(Ems, PushRefusedWhenUnlocked) {
  EmsSimulator ems(2, reliable());
  ems.unlock(0);
  const PushResult result = ems.push(0, settings(3));
  EXPECT_EQ(result.status, PushStatus::kRejectedUnlocked);
  EXPECT_EQ(result.applied, 0u);
}

TEST(Ems, OutOfBandUnlockAlsoBlocksPushes) {
  EmsSimulator ems(2, reliable());
  ems.unlock_out_of_band(1);
  EXPECT_EQ(ems.push(1, settings(1)).status, PushStatus::kRejectedUnlocked);
  EXPECT_EQ(ems.push(0, settings(1)).status, PushStatus::kApplied);
}

TEST(Ems, OversizedBatchTimesOutWithPartialApplication) {
  EmsSimulator ems(1, reliable());
  // deadline 1500 ms / 180 ms = 8 waves x concurrency 4 = 32 settings max.
  const PushResult result = ems.push(0, settings(200));
  EXPECT_EQ(result.status, PushStatus::kTimeout);
  EXPECT_EQ(result.applied, 32u);
  EXPECT_DOUBLE_EQ(result.elapsed_ms, 1500.0);
}

TEST(Ems, EmptyPushIsTrivialSuccess) {
  EmsSimulator ems(1, reliable());
  const PushResult result = ems.push(0, {});
  EXPECT_EQ(result.status, PushStatus::kApplied);
  EXPECT_EQ(result.applied, 0u);
}

TEST(Ems, LockCyclesCountReLocks) {
  EmsSimulator ems(1, reliable());
  EXPECT_EQ(ems.lock_cycles(), 0u);
  ems.lock(0);  // already locked: no cycle
  EXPECT_EQ(ems.lock_cycles(), 0u);
  ems.unlock(0);
  ems.lock(0);  // off-air transition: the disruptive operation
  EXPECT_EQ(ems.lock_cycles(), 1u);
}

TEST(Ems, FlakyFaultsEventuallyTimeout) {
  EmsOptions flaky;
  flaky.flaky_timeout_prob = 1.0;
  EmsSimulator ems(1, flaky);
  EXPECT_EQ(ems.push(0, settings(2)).status, PushStatus::kTimeout);
}

TEST(PushStatusNames, Stable) {
  EXPECT_STREQ(push_status_name(PushStatus::kApplied), "applied");
  EXPECT_STREQ(push_status_name(PushStatus::kTimeout), "timeout");
}

}  // namespace
}  // namespace auric::smartlaunch
