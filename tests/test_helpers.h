// Shared fixtures for the Auric test suite.
#pragma once

#include <vector>

#include "config/assignment.h"
#include "config/catalog.h"
#include "netsim/attributes.h"
#include "netsim/generator.h"
#include "netsim/topology.h"

namespace auric::test {

/// A hand-built 2-eNodeB / 2-market topology with deterministic attributes,
/// used by tests that need to reason about exact neighbor sets and codes.
/// Layout: eNodeB 0 (market 0) carriers {0: 700 MHz, 1: 1900 MHz} on face 0;
/// eNodeB 1 (market 0) carriers {2: 700 MHz, 3: 1900 MHz} on face 0;
/// eNodeB 2 (market 1) carriers {4: 700 MHz, 5: 1900 MHz} on face 0.
/// X2: complete within eNodeBs; same-frequency between eNodeBs 0 and 1.
inline netsim::Topology tiny_topology() {
  using namespace netsim;
  Topology topo;
  topo.markets.resize(2);
  topo.markets[0] = {0, "Market 1", Timezone::kEastern, {40.0, -75.0}, 1.0};
  topo.markets[1] = {1, "Market 2", Timezone::kCentral, {41.0, -90.0}, 1.0};

  const auto add_enodeb = [&](MarketId market, GeoPoint where) {
    ENodeB e;
    e.id = static_cast<ENodeBId>(topo.enodebs.size());
    e.market = market;
    e.location = where;
    e.morphology = Morphology::kUrban;
    e.faces.resize(3);
    topo.enodebs.push_back(e);
    return e.id;
  };
  const auto add_carrier = [&](ENodeBId enodeb, int mhz) {
    Carrier c;
    c.id = static_cast<CarrierId>(topo.carriers.size());
    c.enodeb = enodeb;
    c.market = topo.enodebs[static_cast<std::size_t>(enodeb)].market;
    c.face = 0;
    c.frequency_mhz = mhz;
    c.band = mhz < 1000 ? Band::kLow : Band::kMid;
    c.morphology = Morphology::kUrban;
    c.bandwidth_mhz = mhz < 1000 ? 10 : 20;
    c.location = topo.enodebs[static_cast<std::size_t>(enodeb)].location;
    c.cell_size_miles = 1;
    c.neighbor_channel = 444;
    topo.enodebs[static_cast<std::size_t>(enodeb)].faces[0].push_back(c.id);
    topo.enodebs[static_cast<std::size_t>(enodeb)].carriers.push_back(c.id);
    topo.carriers.push_back(c);
    return c.id;
  };

  const ENodeBId e0 = add_enodeb(0, {40.00, -75.00});
  const ENodeBId e1 = add_enodeb(0, {40.02, -75.00});
  const ENodeBId e2 = add_enodeb(1, {41.00, -90.00});
  add_carrier(e0, 700);   // 0
  add_carrier(e0, 1900);  // 1
  add_carrier(e1, 700);   // 2
  add_carrier(e1, 1900);  // 3
  add_carrier(e2, 700);   // 4
  add_carrier(e2, 1900);  // 5

  topo.neighbors.assign(6, {});
  const auto connect = [&](CarrierId a, CarrierId b) {
    topo.neighbors[static_cast<std::size_t>(a)].push_back(b);
    topo.neighbors[static_cast<std::size_t>(b)].push_back(a);
  };
  connect(0, 1);  // intra-site
  connect(2, 3);
  connect(4, 5);
  connect(0, 2);  // inter-site same frequency
  connect(1, 3);
  topo.site_neighbors.assign(3, {});
  topo.site_neighbors[0] = {1};
  topo.site_neighbors[1] = {0};
  topo.finalize_edges();
  topo.check_invariants();
  return topo;
}

/// A chain-of-sites topology with enough carriers for chi-square power at
/// p = 0.01. Market 0 has `m0_sites` sites, market 1 has `m1_sites`; every
/// site carries a 700 MHz carrier (id 2*site) and a 1900 MHz carrier
/// (id 2*site + 1) on face 0. X2: intra-site pair + same-frequency links
/// between consecutive sites of the same market.
inline netsim::Topology chain_topology(int m0_sites = 5, int m1_sites = 3) {
  using namespace netsim;
  Topology topo;
  topo.markets.resize(2);
  topo.markets[0] = {0, "Market 1", Timezone::kEastern, {40.0, -75.0}, 1.0};
  topo.markets[1] = {1, "Market 2", Timezone::kCentral, {41.0, -90.0}, 1.0};

  const auto add_site = [&](MarketId market, double lat) {
    ENodeB e;
    e.id = static_cast<ENodeBId>(topo.enodebs.size());
    e.market = market;
    e.location = {lat, market == 0 ? -75.0 : -90.0};
    e.morphology = Morphology::kSuburban;
    e.faces.resize(3);
    for (int mhz : {700, 1900}) {
      Carrier c;
      c.id = static_cast<CarrierId>(topo.carriers.size());
      c.enodeb = e.id;
      c.market = market;
      c.face = 0;
      c.frequency_mhz = mhz;
      c.band = mhz < 1000 ? Band::kLow : Band::kMid;
      c.morphology = e.morphology;
      c.bandwidth_mhz = mhz < 1000 ? 10 : 20;
      c.location = e.location;
      c.cell_size_miles = 2;
      c.neighbor_channel = 444;
      c.tracking_area_code = market * 16;
      e.faces[0].push_back(c.id);
      e.carriers.push_back(c.id);
      topo.carriers.push_back(c);
    }
    topo.enodebs.push_back(e);
    return topo.enodebs.back().id;
  };

  std::vector<ENodeBId> m0;
  std::vector<ENodeBId> m1;
  for (int s = 0; s < m0_sites; ++s) m0.push_back(add_site(0, 40.0 + 0.02 * s));
  for (int s = 0; s < m1_sites; ++s) m1.push_back(add_site(1, 41.0 + 0.02 * s));

  topo.neighbors.assign(topo.carriers.size(), {});
  topo.site_neighbors.assign(topo.enodebs.size(), {});
  const auto connect = [&](CarrierId a, CarrierId b) {
    topo.neighbors[static_cast<std::size_t>(a)].push_back(b);
    topo.neighbors[static_cast<std::size_t>(b)].push_back(a);
  };
  const auto chain = [&](const std::vector<ENodeBId>& sites) {
    for (std::size_t s = 0; s < sites.size(); ++s) {
      const auto& carriers = topo.enodebs[static_cast<std::size_t>(sites[s])].carriers;
      connect(carriers[0], carriers[1]);  // intra-site
      if (s + 1 < sites.size()) {
        const auto& next = topo.enodebs[static_cast<std::size_t>(sites[s + 1])].carriers;
        connect(carriers[0], next[0]);  // 700 <-> 700
        connect(carriers[1], next[1]);  // 1900 <-> 1900
        topo.site_neighbors[static_cast<std::size_t>(sites[s])].push_back(sites[s + 1]);
        topo.site_neighbors[static_cast<std::size_t>(sites[s + 1])].push_back(sites[s]);
      }
    }
  };
  chain(m0);
  chain(m1);
  topo.finalize_edges();
  topo.check_invariants();
  return topo;
}

/// A small generated network for statistical tests (deterministic).
inline netsim::Topology small_generated_topology(std::uint64_t seed = 3, int markets = 3,
                                                 int scale = 20) {
  netsim::TopologyParams params;
  params.seed = seed;
  params.num_markets = markets;
  params.base_enodebs_per_market = scale;
  return netsim::generate_topology(params);
}

/// A 2-parameter catalog (1 singular with a small domain, 1 pair-wise on
/// intra-frequency relations) for hand-built assignments.
inline config::ParamCatalog tiny_catalog() {
  using namespace config;
  std::vector<ParamDef> defs;
  ParamDef singular;
  singular.name = "toySingular";
  singular.kind = ParamKind::kSingular;
  singular.domain = ValueDomain(0, 1, 11);
  singular.default_index = 5;
  defs.push_back(singular);
  ParamDef pairwise;
  pairwise.name = "toyPairwise";
  pairwise.kind = ParamKind::kPairwise;
  pairwise.relation = RelationClass::kIntraFrequency;
  pairwise.scope = PairScope::kPerEdge;
  pairwise.domain = ValueDomain(0, 0.5, 21);
  pairwise.default_index = 4;
  defs.push_back(pairwise);
  return ParamCatalog(std::move(defs));
}

/// An assignment over tiny_topology() + tiny_catalog() where the singular
/// parameter equals 3 on low-band carriers and 7 on mid-band carriers, and
/// the pair-wise parameter equals 2 on every intra-frequency edge.
inline config::ConfigAssignment tiny_assignment(const netsim::Topology& topo) {
  using namespace config;
  ConfigAssignment assignment;
  assignment.singular.resize(1);
  auto& s = assignment.singular[0];
  s.value.resize(topo.carrier_count());
  s.intended.resize(topo.carrier_count());
  s.cause.assign(topo.carrier_count(), Cause::kAttributeRule);
  for (const netsim::Carrier& c : topo.carriers) {
    const ValueIndex v = c.band == netsim::Band::kLow ? 3 : 7;
    s.value[static_cast<std::size_t>(c.id)] = v;
    s.intended[static_cast<std::size_t>(c.id)] = v;
  }
  assignment.pairwise.resize(1);
  auto& p = assignment.pairwise[0];
  p.value.assign(topo.edge_count(), kUnset);
  p.intended.assign(topo.edge_count(), kUnset);
  p.cause.assign(topo.edge_count(), Cause::kDefault);
  for (std::size_t e = 0; e < topo.edge_count(); ++e) {
    const auto& edge = topo.edges[e];
    if (topo.carrier(edge.from).frequency_mhz == topo.carrier(edge.to).frequency_mhz) {
      p.value[e] = 2;
      p.intended[e] = 2;
    }
  }
  return assignment;
}

}  // namespace auric::test
