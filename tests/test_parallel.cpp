#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace auric::util {
namespace {

class WorkerCountTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { set_worker_count(GetParam()); }
  void TearDown() override { set_worker_count(0); }
};

TEST_P(WorkerCountTest, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(WorkerCountTest, EmptyRangeIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST_P(WorkerCountTest, PropagatesExceptions) {
  EXPECT_THROW(parallel_for(16,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST_P(WorkerCountTest, ResultsMatchSerialComputation) {
  std::vector<long> out(100);
  parallel_for(out.size(), [&](std::size_t i) { out[i] = static_cast<long>(i * i); });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<long>(i * i));
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerCountTest, ::testing::Values(1u, 2u, 4u));

TEST_P(WorkerCountTest, HandlesFewerItemsThanWorkers) {
  // n < workers: only n runners are spun up; every index still runs once.
  std::vector<std::atomic<int>> hits(2);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(WorkerCountTest, NestedCallRunsSerially) {
  // The nested-call guard: a parallel_for from inside a pool task must not
  // re-enter the pool (deadlock/oversubscription), it runs inline instead.
  std::atomic<int> total{0};
  parallel_for(8, [&](std::size_t) {
    parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(WorkerCount, DefaultAtLeastOne) {
  set_worker_count(0);
  EXPECT_GE(worker_count(), 1u);
}

class TaskPoolTest : public ::testing::Test {
 protected:
  void TearDown() override { set_worker_count(0); }
};

TEST_F(TaskPoolTest, RunsEveryTaskOnce) {
  TaskPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::vector<std::atomic<int>> hits(57);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.run(std::move(tasks));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(TaskPoolTest, EmptyBatchIsNoop) {
  TaskPool pool(2);
  pool.run({});
}

TEST_F(TaskPoolTest, ZeroWorkersRunsInline) {
  TaskPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  int hits = 0;
  pool.run({[&] { ++hits; }, [&] { ++hits; }});
  EXPECT_EQ(hits, 2);
}

TEST_F(TaskPoolTest, PropagatesFirstExceptionByTaskIndex) {
  TaskPool pool(4);
  // All tasks run to completion even when siblings throw, and the first
  // exception *by task index* (not completion order) is rethrown.
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&completed, i] {
      completed.fetch_add(1);
      if (i == 5) throw std::runtime_error("late");
      if (i == 2) throw std::logic_error("early");
    });
  }
  try {
    pool.run(std::move(tasks));
    FAIL() << "expected an exception";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "early");
  }
  EXPECT_EQ(completed.load(), 8);
}

TEST_F(TaskPoolTest, NestedRunExecutesInline) {
  TaskPool pool(2);
  std::atomic<int> inner{0};
  std::atomic<bool> saw_guard{false};
  pool.run({[&] {
    EXPECT_TRUE(TaskPool::on_worker_thread());
    saw_guard.store(true);
    // Nested batch must run inline on this thread, not deadlock the pool.
    pool.run({[&] { inner.fetch_add(1); }, [&] { inner.fetch_add(1); }});
  }});
  EXPECT_TRUE(saw_guard.load());
  EXPECT_EQ(inner.load(), 2);
  EXPECT_FALSE(TaskPool::on_worker_thread());
}

TEST_F(TaskPoolTest, ReserveGrowsButNeverShrinks) {
  TaskPool pool(1);
  pool.reserve(3);
  EXPECT_EQ(pool.size(), 3u);
  pool.reserve(2);
  EXPECT_EQ(pool.size(), 3u);
}

TEST_F(TaskPoolTest, SequentialBatchesReuseWorkers) {
  TaskPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> hits{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 5; ++i) tasks.push_back([&] { hits.fetch_add(1); });
    pool.run(std::move(tasks));
    EXPECT_EQ(hits.load(), 5);
  }
}

TEST_F(TaskPoolTest, TrySubmitRunsDetachedTasksToCompletion) {
  TaskPool pool(2);
  std::atomic<int> hits{0};
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(pool.try_submit([&] { hits.fetch_add(1); }));
  }
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 64);
  EXPECT_EQ(pool.pending_count(), 0u);
}

TEST_F(TaskPoolTest, TrySubmitRunsInlineOnAThreadlessPool) {
  // On a 1-core host the shared pool has no workers; detached work must
  // still execute (inline, in the caller) instead of stranding forever.
  TaskPool pool(0);
  int hits = 0;
  EXPECT_TRUE(pool.try_submit([&] { ++hits; }));
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(pool.pending_count(), 0u);
}

TEST_F(TaskPoolTest, TrySubmitShedsAtThePendingLimit) {
  // Saturation: one worker wedged on a gate, a pending limit of 3. The
  // fourth detached submit must be refused, not queued without bound —
  // this is the backpressure signal the serve daemon turns into a 503.
  TaskPool pool(1);
  pool.set_pending_limit(3);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(pool.try_submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));
  // Give the worker a moment to pick up the gate task so the queue is empty.
  while (pool.pending_count() > 0) std::this_thread::yield();

  std::atomic<int> hits{0};
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(pool.try_submit([&] { hits.fetch_add(1); })) << i;
  }
  EXPECT_EQ(pool.pending_count(), 3u);
  EXPECT_FALSE(pool.try_submit([&] { hits.fetch_add(1); }));  // full: shed
  EXPECT_FALSE(pool.try_submit([&] { hits.fetch_add(1); }));  // still full

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 3);  // the shed tasks never ran
  // The queue drained: capacity is available again.
  EXPECT_TRUE(pool.try_submit([&] { hits.fetch_add(1); }));
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 4);
}

TEST_F(TaskPoolTest, TrySubmitSwallowsExceptionsAndKeepsTheWorkerAlive) {
  // A throwing detached task must not poison its worker: later tasks on
  // the same (only) worker still run.
  TaskPool pool(1);
  ASSERT_TRUE(pool.try_submit([] { throw std::runtime_error("detached boom"); }));
  pool.wait_idle();
  std::atomic<int> hits{0};
  ASSERT_TRUE(pool.try_submit([&] { hits.fetch_add(1); }));
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 1);
}

TEST_F(TaskPoolTest, WaitIdleBlocksUntilInFlightDetachedTasksFinish) {
  TaskPool pool(2);
  std::atomic<bool> finished{false};
  ASSERT_TRUE(pool.try_submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    finished.store(true);
  }));
  pool.wait_idle();
  EXPECT_TRUE(finished.load());
}

TEST_F(TaskPoolTest, DestructionDrainsAdmittedDetachedTasks) {
  // Once try_submit said "yes" the task is admitted work: stopping the pool
  // (the serve daemon's drain) must run it, not drop it on the floor.
  std::atomic<int> hits{0};
  {
    TaskPool pool(1);
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    ASSERT_TRUE(pool.try_submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }));
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(pool.try_submit([&] { hits.fetch_add(1); }));
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
  }  // ~TaskPool joins the worker
  EXPECT_EQ(hits.load(), 8);
}

TEST_F(TaskPoolTest, RunPropagatesTheSubmittersTraceContext) {
  TaskPool pool(3);
  obs::TraceRecorder rec(256);
  obs::TraceId trace;
  std::uint64_t root_id = 0;
  std::atomic<int> mismatches{0};
  {
    obs::ScopedSpan root("root", rec);
    trace = root.trace();
    root_id = root.id();
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back([&] {
        if (obs::current_trace_context().trace_id != trace) mismatches.fetch_add(1);
        obs::ScopedSpan task_span("task", rec);
        if (task_span.trace() != trace) mismatches.fetch_add(1);
      });
    }
    pool.run(std::move(tasks));
  }
  EXPECT_EQ(mismatches.load(), 0);
  const std::vector<obs::SpanRecord> spans = rec.records();
  ASSERT_EQ(spans.size(), 17u);
  for (const obs::SpanRecord& s : spans) {
    EXPECT_EQ(s.trace, trace) << s.name;
    if (s.name == "task") {
      EXPECT_EQ(s.parent, root_id);
    }
  }
}

TEST_F(TaskPoolTest, NestedParallelForReestablishesTheSubmittersContext) {
  // The acceptance shape for one sharded replay day: a root span, a
  // parallel_for fan-out, and a nested parallel_for inside each task (runs
  // inline under the guard). Every span on every thread must land in the
  // root's trace, parented under the submitting span.
  set_worker_count(4);
  obs::TraceRecorder rec(1024);
  obs::TraceId trace;
  std::atomic<int> mismatches{0};
  {
    obs::ScopedSpan root("root", rec);
    trace = root.trace();
    parallel_for(8, [&](std::size_t) {
      if (obs::current_trace_context().trace_id != trace) mismatches.fetch_add(1);
      obs::ScopedSpan outer("task.outer", rec);
      parallel_for(4, [&](std::size_t) {
        if (obs::current_trace_context().trace_id != trace) mismatches.fetch_add(1);
        obs::ScopedSpan inner("task.inner", rec);
        if (inner.trace() != trace) mismatches.fetch_add(1);
      });
    });
  }
  EXPECT_EQ(mismatches.load(), 0);
  const std::vector<obs::SpanRecord> spans = rec.records();
  ASSERT_EQ(spans.size(), 1u + 8u + 32u);
  std::size_t inner_count = 0;
  for (const obs::SpanRecord& s : spans) {
    EXPECT_EQ(s.trace, trace) << s.name;
    if (s.name == "task.inner") {
      ++inner_count;
      // The inner span's parent is a task.outer span (same trace tree).
      const auto parent =
          std::find_if(spans.begin(), spans.end(),
                       [&](const obs::SpanRecord& p) { return p.id == s.parent; });
      ASSERT_NE(parent, spans.end());
      EXPECT_EQ(parent->name, "task.outer");
    }
  }
  EXPECT_EQ(inner_count, 32u);
}

TEST_F(TaskPoolTest, TrySubmitPropagatesContextAndObservesQueueWait) {
  TaskPool pool(2);
  obs::TraceRecorder rec(64);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Histogram& wait = reg.histogram("auric_pool_submit_wait_ms",
                                       obs::default_latency_bounds_ms(),
                                       "submit-to-start wait of TaskPool tasks");
  const std::uint64_t wait0 = wait.count();
  obs::TraceId trace;
  {
    obs::ScopedSpan root("root", rec);
    trace = root.trace();
    ASSERT_TRUE(pool.try_submit([&] {
      obs::ScopedSpan detached("detached", rec);
      (void)detached;
    }));
    pool.wait_idle();
  }
  const std::vector<obs::SpanRecord> spans = rec.records();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "detached");
  EXPECT_EQ(spans[0].trace, trace);
  EXPECT_GT(wait.count(), wait0);  // the queue wait was observed
}

TEST_F(TaskPoolTest, BatchesStillRunWhileDetachedTasksAreQueued) {
  // run() batches and try_submit tasks share the workers; a saturated
  // detached queue must not deadlock or starve a synchronous batch.
  TaskPool pool(2);
  pool.set_pending_limit(256);
  std::atomic<int> detached{0};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.try_submit([&] { detached.fetch_add(1); }));
  }
  std::atomic<int> batched{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 32; ++i) tasks.push_back([&] { batched.fetch_add(1); });
  pool.run(std::move(tasks));
  EXPECT_EQ(batched.load(), 32);
  pool.wait_idle();
  EXPECT_EQ(detached.load(), 200);
}

}  // namespace
}  // namespace auric::util
