#include "util/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace auric::util {
namespace {

class WorkerCountTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { set_worker_count(GetParam()); }
  void TearDown() override { set_worker_count(0); }
};

TEST_P(WorkerCountTest, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(WorkerCountTest, EmptyRangeIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST_P(WorkerCountTest, PropagatesExceptions) {
  EXPECT_THROW(parallel_for(16,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST_P(WorkerCountTest, ResultsMatchSerialComputation) {
  std::vector<long> out(100);
  parallel_for(out.size(), [&](std::size_t i) { out[i] = static_cast<long>(i * i); });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<long>(i * i));
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerCountTest, ::testing::Values(1u, 2u, 4u));

TEST(WorkerCount, DefaultAtLeastOne) {
  set_worker_count(0);
  EXPECT_GE(worker_count(), 1u);
}

}  // namespace
}  // namespace auric::util
