// Crash-matrix suite for the journal checkpoint (DESIGN.md §14).
//
// Strategy: record the FaultFs operation trace of an uninterrupted save
// sequence, then replay the identical sequence once per operation index,
// crashing at that index with a rotating fault flavor (die-before,
// die-after, short write, torn tail). After every crash the store is
// reopened like a restarted process: the loaded state must be EXACTLY one
// of the states the sequence committed — never a blend — and finishing the
// sequence must converge to the final state bit for bit. A replay-level
// matrix does the same at every named crash point of the store's catalog
// during a multi-day sharded window, asserting the resumed run's weekly
// report is identical to an uninterrupted baseline.
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "config/ground_truth.h"
#include "io/fault_fs.h"
#include "io/launch_state.h"
#include "smartlaunch/replay.h"
#include "test_helpers.h"

namespace auric {
namespace {

using io::CrashInjected;
using io::FaultFs;
using io::LaunchState;
using io::LaunchStateStore;

constexpr FaultFs::Fault kCrashFaults[] = {
    FaultFs::Fault::kCrashBefore, FaultFs::Fault::kCrashAfter,
    FaultFs::Fault::kShortWrite, FaultFs::Fault::kTornTail};

std::string temp_dir(const std::string& tag) {
  const auto path = std::filesystem::temp_directory_path() / ("auric_crash_" + tag);
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path.string();
}

// --- Deterministic evolving state -----------------------------------------

void fill_block(int salt, int step, std::vector<std::pair<netsim::CarrierId, std::uint64_t>>& journal,
                std::vector<netsim::CarrierId>& deferred,
                std::vector<std::pair<netsim::CarrierId, int>>& quarantine,
                util::CircuitBreaker::Snapshot& breaker, LaunchState::EmsState& ems) {
  journal.clear();
  for (int k = 0; k < 3 + step; ++k) {
    journal.emplace_back(static_cast<netsim::CarrierId>(k * 3 + salt),
                         static_cast<std::uint64_t>(100 + step * 11 + k + salt));
  }
  deferred.clear();
  for (int i = 0; i <= step % 3; ++i) {
    deferred.push_back(static_cast<netsim::CarrierId>((salt + step + i * 5) % 17));
  }
  quarantine.clear();
  for (int k = 0; k < step % 3; ++k) {
    quarantine.emplace_back(static_cast<netsim::CarrierId>(40 + salt + k * 4),
                            1 + (step + k) % 3);
  }
  using State = util::CircuitBreaker::State;
  constexpr State kStates[] = {State::kClosed, State::kOpen, State::kHalfOpen};
  breaker.state = kStates[(step + salt) % 3];
  breaker.consecutive_failures = step % 4;
  breaker.cooldown_remaining = (step * 2 + salt) % 5;
  breaker.trips = step / 2;
  breaker.refusals = step + salt;
  ems.pushes_executed = static_cast<std::uint64_t>(10 * step + salt);
  ems.lock_cycles = static_cast<std::uint64_t>(step);
  ems.fault_stream = static_cast<std::uint64_t>(3 * step + salt);
  ems.flap_stream = static_cast<std::uint64_t>(step + 1);
  ems.burst_stream = static_cast<std::uint64_t>(2 * step);
  ems.unlocked.clear();
  ems.repaired.clear();
  for (int i = 0; i <= step % 3; ++i) {
    ems.unlocked.push_back(static_cast<netsim::CarrierId>(step + salt + i * 2));
    if (i % 2 == 0) ems.repaired.push_back(static_cast<netsim::CarrierId>(salt + i));
  }
}

std::vector<LaunchState::SlotWrite> make_slots(int step) {
  std::vector<LaunchState::SlotWrite> slots;
  for (int pairwise = 0; pairwise < 2; ++pairwise) {
    const int params = pairwise ? 1 : 2;
    for (int p = 0; p < params; ++p) {
      const int entities = pairwise ? step % 4 : 2 + step;
      for (int e = 0; e < entities; ++e) {
        LaunchState::SlotWrite w;
        w.pairwise = pairwise != 0;
        w.param_pos = static_cast<std::uint32_t>(p);
        w.entity = static_cast<std::uint64_t>(e);
        w.value = step * 31 + e * 7 + p;
        slots.push_back(w);
      }
    }
  }
  return slots;
}

/// State `step` of the sequence; shard_count = 0 uses the flat layout.
LaunchState make_state(int step, int shard_count) {
  LaunchState s;
  if (shard_count == 0) {
    fill_block(0, step, s.journal, s.deferred, s.quarantine, s.breaker, s.ems);
  } else {
    s.shards.resize(static_cast<std::size_t>(shard_count));
    for (int k = 0; k < shard_count; ++k) {
      auto& block = s.shards[static_cast<std::size_t>(k)];
      fill_block(k + 1, step, block.journal, block.deferred, block.quarantine,
                 block.breaker, block.ems);
    }
  }
  s.applied_slots = make_slots(step);
  s.relearn_applied_slots = make_slots(step - step % 2);
  s.progress = {{"step", std::to_string(step)},
                {"launches", std::to_string(step * 5)},
                {"kpi", "0x1.8f4p-1"}};
  return s;
}

// A canonical text dump; string equality == full state equality, and the
// gtest diff on mismatch names the divergent field directly.
std::string dump(const LaunchState& s) {
  std::ostringstream out;
  const auto block = [&](const char* tag,
                         const std::vector<std::pair<netsim::CarrierId, std::uint64_t>>& journal,
                         const std::vector<netsim::CarrierId>& deferred,
                         const std::vector<std::pair<netsim::CarrierId, int>>& quarantine,
                         const util::CircuitBreaker::Snapshot& breaker,
                         const LaunchState::EmsState& ems) {
    out << tag << ".journal:";
    for (const auto& [c, o] : journal) out << ' ' << c << '=' << o;
    out << '\n' << tag << ".deferred:";
    for (netsim::CarrierId c : deferred) out << ' ' << c;
    out << '\n' << tag << ".quarantine:";
    for (const auto& [c, n] : quarantine) out << ' ' << c << '=' << n;
    out << '\n'
        << tag << ".breaker: " << static_cast<int>(breaker.state) << ' '
        << breaker.consecutive_failures << ' ' << breaker.cooldown_remaining << ' '
        << breaker.trips << ' ' << breaker.refusals << '\n'
        << tag << ".ems: " << ems.pushes_executed << ' ' << ems.lock_cycles << ' '
        << ems.fault_stream << ' ' << ems.flap_stream << ' ' << ems.burst_stream;
    out << " u:";
    for (netsim::CarrierId c : ems.unlocked) out << ' ' << c;
    out << " r:";
    for (netsim::CarrierId c : ems.repaired) out << ' ' << c;
    out << '\n';
  };
  block("flat", s.journal, s.deferred, s.quarantine, s.breaker, s.ems);
  for (std::size_t k = 0; k < s.shards.size(); ++k) {
    const auto& b = s.shards[k];
    block(("shard" + std::to_string(k)).c_str(), b.journal, b.deferred, b.quarantine,
          b.breaker, b.ems);
  }
  const auto slots = [&](const char* tag, const std::vector<LaunchState::SlotWrite>& list) {
    out << tag << ':';
    for (const auto& w : list) {
      out << ' ' << (w.pairwise ? 'p' : 's') << w.param_pos << '.' << w.entity << '='
          << w.value;
    }
    out << '\n';
  };
  slots("applied", s.applied_slots);
  slots("relearn", s.relearn_applied_slots);
  out << "progress:";
  for (const auto& [k, v] : s.progress) out << ' ' << k << '=' << v;
  out << '\n';
  return out.str();
}

int committed_step(const LaunchState& state) {
  const std::string* step = state.find_progress("step");
  return step ? std::stoi(*step) : -1;
}

// --- Store-level matrix ----------------------------------------------------

/// Crashes the save sequence at every FaultFs operation of its clean trace
/// and proves each crash recovers to a committed state and converges.
void run_crash_matrix(int shard_count, const std::string& tag,
                      LaunchStateStore::Options store_options) {
  constexpr int kSteps = 4;
  FaultFs& fs = FaultFs::global();
  fs.reset();

  // 1. Trace the uninterrupted sequence: the operation universe.
  fs.enable_trace(true);
  (void)fs.take_trace();
  {
    const LaunchStateStore store(temp_dir(tag + "_clean"), store_options);
    for (int t = 0; t < kSteps; ++t) store.save(make_state(t, shard_count));
  }
  const std::vector<std::string> trace = fs.take_trace();
  fs.enable_trace(false);
  ASSERT_GT(trace.size(), 20u);

  // 2. Re-run the sequence once per operation, crashing at that operation.
  for (std::size_t op = 0; op < trace.size(); ++op) {
    SCOPED_TRACE("crash at op " + std::to_string(op) + " (" + trace[op] + ")");
    const std::string dir = temp_dir(tag + "_run");
    FaultFs::FaultPlan plan;
    plan.fault = kCrashFaults[op % 4];
    plan.after_ops = op;
    plan.tear_fraction = 0.6;
    fs.install(plan);

    int crashed_during = -1;
    {
      const LaunchStateStore store(dir, store_options);
      try {
        for (int t = 0; t < kSteps; ++t) {
          crashed_during = t;
          store.save(make_state(t, shard_count));
        }
        crashed_during = -1;
      } catch (const CrashInjected&) {
        // Process death: the store object is abandoned.
      }
    }
    fs.reset();
    ASSERT_GE(crashed_during, 0) << "plan never fired";

    // 3. Restart: a fresh store over the directory, like a new process.
    const LaunchStateStore resumed(dir, store_options);
    int next = 0;
    if (resumed.exists()) {
      const LaunchState got = resumed.load();
      const int step = committed_step(got);
      ASSERT_TRUE(step == crashed_during || step == crashed_during - 1)
          << "loaded step " << step << " after crashing in save " << crashed_during;
      if (store_options.journal) {
        // Snapshot isolation: the loaded state is exactly the checkpoint of
        // one step — the one whose save crashed post-commit, or its
        // predecessor — never a blend of the two.
        EXPECT_EQ(dump(got), dump(make_state(step, shard_count)));
      }
      // Rewrite mode replaces the flat CSVs one rename at a time before the
      // progress commit, so a mid-save crash may expose newer data files
      // under older progress: each file loads intact, but only the journal
      // layout gives a cross-file atomic snapshot. (That gap is why journal
      // mode exists — and why it is the default.)
      next = step + 1;
    } else {
      EXPECT_EQ(crashed_during, 0) << "a committed checkpoint vanished";
    }
    for (int t = next; t < kSteps; ++t) resumed.save(make_state(t, shard_count));

    // 4. Convergence: yet another process sees the final state bit for bit.
    const LaunchStateStore verify(dir, store_options);
    EXPECT_EQ(dump(verify.load()), dump(make_state(kSteps - 1, shard_count)));
  }
}

TEST(LaunchStateCrashMatrix, EveryOperationFlatLayout) {
  run_crash_matrix(0, "flat", {});
}

TEST(LaunchStateCrashMatrix, EveryOperationShardedLayout) {
  run_crash_matrix(3, "sharded", {});
}

TEST(LaunchStateCrashMatrix, EveryOperationAggressiveCompaction) {
  // compact on every save: the snapshot/cleanup side of the journal path
  // becomes part of the operation universe at every step, not only step 0.
  LaunchStateStore::Options options;
  options.compact_min_bytes = 1;
  options.compact_factor = 0.0;
  run_crash_matrix(0, "compact", options);
}

TEST(LaunchStateCrashMatrix, EveryOperationRewriteLayout) {
  // The legacy rewrite-every-file mode now carries the same fsync-before-
  // rename durability claim; hold it to the same matrix.
  LaunchStateStore::Options options;
  options.journal = false;
  run_crash_matrix(2, "rewrite", options);
}

TEST(LaunchStateCrashMatrix, FailedOperationLeavesStoreRetryable) {
  // kFailOp is the soft flavor: the operation reports an I/O error instead
  // of killing the process. save() must surface it and leave the store
  // usable — the retry repairs any uncommitted tail and commits.
  FaultFs& fs = FaultFs::global();
  fs.reset();
  int fired = 0;
  for (const std::string& point : LaunchStateStore::crash_point_catalog()) {
    SCOPED_TRACE(point);
    const std::string dir = temp_dir("failop");
    const LaunchStateStore store(dir);
    FaultFs::FaultPlan plan;
    plan.fault = FaultFs::Fault::kFailOp;
    plan.point = point;
    fs.install(plan);
    int failed_at = -1;
    for (int t = 0; t < 3; ++t) {
      try {
        store.save(make_state(t, 2));
      } catch (const std::runtime_error&) {
        failed_at = t;
        break;
      }
    }
    fs.reset();
    if (failed_at < 0) continue;  // point unreachable in journal-mode saves
    ++fired;
    for (int t = failed_at; t < 3; ++t) store.save(make_state(t, 2));
    const LaunchStateStore verify(dir);
    EXPECT_EQ(dump(verify.load()), dump(make_state(2, 2)));
  }
  // Every point on the journal save path must have been exercised.
  EXPECT_GE(fired, 8);
}

TEST(LaunchStateCrashMatrix, CrashDuringRecoveryTruncateIsRecoverable) {
  // A crashed append leaves a torn tail; the NEXT load truncates it at
  // crash point recover.truncate. Crashing inside that repair must leave a
  // directory a third process still recovers from.
  FaultFs& fs = FaultFs::global();
  fs.reset();
  const std::string dir = temp_dir("recover_truncate");
  {
    const LaunchStateStore store(dir);
    store.save(make_state(0, 0));
    store.save(make_state(1, 0));
    FaultFs::FaultPlan plan;
    plan.fault = FaultFs::Fault::kTornTail;
    plan.point = "checkpoint.append";
    fs.install(plan);
    EXPECT_THROW(store.save(make_state(2, 0)), CrashInjected);
    fs.reset();
  }
  for (const FaultFs::Fault fault :
       {FaultFs::Fault::kCrashBefore, FaultFs::Fault::kCrashAfter}) {
    FaultFs::FaultPlan plan;
    plan.fault = fault;
    plan.point = "recover.truncate";
    fs.install(plan);
    const LaunchStateStore store(dir);
    EXPECT_THROW(store.load(), CrashInjected);
    fs.reset();
  }
  const LaunchStateStore store(dir);
  EXPECT_EQ(dump(store.load()), dump(make_state(1, 0)));
}

// --- Replay-level matrix ---------------------------------------------------

namespace replay_matrix {

using namespace smartlaunch;

struct Fixture {
  netsim::Topology topo = test::small_generated_topology(13, 2, 12);
  netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  config::ParamCatalog catalog = config::ParamCatalog::standard();
  config::GroundTruthModel ground_truth{topo, schema, catalog};
  config::ConfigAssignment assignment = ground_truth.assign();

  ReplayOptions options(int shards) const {
    ReplayOptions o;
    o.days = 10;
    o.launches_per_day = 4;
    o.relearn_every_days = 7;
    o.robust = true;
    o.ems.flaky_timeout_prob = 0.15;
    o.ems.faults.burst_every = 30;
    o.ems.faults.burst_length = 3;
    o.ems.faults.burst_timeout_prob = 1.0;
    o.shards = shards;
    return o;
  }

  ReplayReport run(const ReplayOptions& options) const {
    OperationReplay replay(topo, schema, catalog, ground_truth, assignment, options);
    return replay.run();
  }
};

void expect_reports_identical(const ReplayReport& a, const ReplayReport& b) {
  EXPECT_EQ(a.totals.launches, b.totals.launches);
  EXPECT_EQ(a.totals.change_recommended, b.totals.change_recommended);
  EXPECT_EQ(a.totals.implemented, b.totals.implemented);
  EXPECT_EQ(a.totals.parameters_changed, b.totals.parameters_changed);
  EXPECT_EQ(a.robust.recovered, b.robust.recovered);
  EXPECT_EQ(a.robust.drained, b.robust.drained);
  EXPECT_EQ(a.robust.still_queued, b.robust.still_queued);
  EXPECT_EQ(a.robust.retries, b.robust.retries);
  EXPECT_EQ(a.robust.breaker_trips, b.robust.breaker_trips);
  EXPECT_EQ(a.engine_relearns, b.engine_relearns);
  // Bit-identical, not approximately equal (doubles persist as hexfloats).
  EXPECT_EQ(a.initial_network_kpi, b.initial_network_kpi);
  EXPECT_EQ(a.final_network_kpi, b.final_network_kpi);
  ASSERT_EQ(a.weeks.size(), b.weeks.size());
  for (std::size_t w = 0; w < a.weeks.size(); ++w) {
    EXPECT_EQ(a.weeks[w].launches, b.weeks[w].launches) << w;
    EXPECT_EQ(a.weeks[w].implemented, b.weeks[w].implemented) << w;
    EXPECT_EQ(a.weeks[w].fallouts, b.weeks[w].fallouts) << w;
    EXPECT_EQ(a.weeks[w].parameters_changed, b.weeks[w].parameters_changed) << w;
    EXPECT_EQ(a.weeks[w].mean_launched_kpi, b.weeks[w].mean_launched_kpi) << w;
  }
}

/// Runs the window under `plan`, resumes after the injected crash (if it
/// fired) and returns the final report.
ReplayReport crash_and_resume(const Fixture& f, ReplayOptions options,
                              const FaultFs::FaultPlan& plan, bool* fired) {
  FaultFs& fs = FaultFs::global();
  fs.install(plan);
  try {
    const ReplayReport report = f.run(options);
    *fired = !fs.armed();  // a post-final-checkpoint crash cannot happen here
    fs.reset();
    return report;
  } catch (const CrashInjected&) {
    *fired = true;
  }
  fs.reset();
  options.resume = true;
  return f.run(options);
}

TEST(ReplayCrashMatrix, EveryCatalogPointConvergesSharded) {
  const Fixture f;
  const ReplayReport baseline = f.run(f.options(2));
  const auto& catalog = LaunchStateStore::crash_point_catalog();
  int fired_points = 0;
  std::string dark_points;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const std::string& point = catalog[i];
    SCOPED_TRACE(point);
    ReplayOptions options = f.options(2);
    options.state_dir = temp_dir("replay_point_" + std::to_string(i));
    // Compaction pre-empts the append for a stream, so aggressive
    // compaction (which makes the snapshot/cleanup side reachable on every
    // checkpoint) would starve the append points; flip it per target.
    if (point.find("snapshot") != std::string::npos || point == "checkpoint.cleanup" ||
        point == "checkpoint.predir_fsync") {
      options.checkpoint.compact_min_bytes = 1;
      options.checkpoint.compact_factor = 0.0;
    }
    FaultFs::FaultPlan plan;
    plan.fault = kCrashFaults[i % 4];
    plan.point = point;
    plan.after_ops = (i % 2) * 5;  // first or sixth visit to the point
    bool fired = false;
    const ReplayReport report = crash_and_resume(f, options, plan, &fired);
    expect_reports_identical(report, baseline);
    if (fired) {
      ++fired_points;
    } else {
      dark_points += " " + point;
    }
    std::filesystem::remove_all(options.state_dir);
  }
  // Most of the catalog must actually fire during a sharded window (the
  // rewrite.* points are legacy-mode-only and may stay dark).
  EXPECT_GE(fired_points, 10) << "dark points:" << dark_points;
}

TEST(ReplayCrashMatrix, SeededCrashSweepConvergesSerial) {
  const Fixture f;
  const ReplayReport baseline = f.run(f.options(1));
  int fired_runs = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ReplayOptions options = f.options(1);
    options.state_dir = temp_dir("replay_seed_" + std::to_string(seed));
    FaultFs::FaultPlan plan = FaultFs::seeded_plan(seed, 600);
    bool fired = false;
    const ReplayReport report = crash_and_resume(f, options, plan, &fired);
    expect_reports_identical(report, baseline);
    if (fired) ++fired_runs;
    std::filesystem::remove_all(options.state_dir);
  }
  EXPECT_GE(fired_runs, 3);
}

}  // namespace replay_matrix
}  // namespace
}  // namespace auric
