// ServeDaemon: admission control, deadlines, bulkheads, hot engine swap,
// graceful degradation and drain. Most tests drive handle() directly — the
// full request path minus the socket — against a private registry; the last
// ones start a real listener and run the seeded loadgen over loopback.
#include "serve/daemon.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "config/ground_truth.h"
#include "obs/rules.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "serve/loadgen.h"
#include "smartlaunch/sharded_ems.h"
#include "test_helpers.h"
#include "util/drain.h"

namespace auric::serve {
namespace {

struct Fixture {
  netsim::Topology topo = test::small_generated_topology(13, 2, 12);
  netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  config::ParamCatalog catalog = config::ParamCatalog::standard();
  config::GroundTruthModel ground_truth{topo, schema, catalog};
  config::ConfigAssignment assignment = ground_truth.assign();
  obs::MetricsRegistry registry;  // private: tests must not share counters

  ServeOptions options() const {
    ServeOptions o;
    o.workers = 2;
    return o;
  }

  ServeDaemon daemon(ServeOptions o) {
    return ServeDaemon(topo, schema, catalog, assignment, ground_truth, std::move(o), registry);
  }
};

obs::HttpRequest get(std::string target,
                     std::vector<std::pair<std::string, std::string>> headers = {}) {
  obs::HttpRequest request;
  request.method = "GET";
  request.target = std::move(target);
  request.headers = std::move(headers);
  return request;
}

TEST(ServeDaemon, RoutesTheControlAndDataPlane) {
  Fixture f;
  ServeDaemon daemon = f.daemon(f.options());
  daemon.warm_up();
  EXPECT_EQ(daemon.generation(), 1u);

  obs::HttpResponse health = daemon.handle(get("/healthz"));
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.body.find("\"generation\":1"), std::string::npos);

  obs::HttpResponse rec = daemon.handle(get("/recommend?carrier=0"));
  EXPECT_EQ(rec.status, 200) << rec.body;
  EXPECT_NE(rec.body.find("\"carrier\":0"), std::string::npos);
  EXPECT_NE(rec.body.find("\"recommendations\":["), std::string::npos);

  obs::HttpResponse diff = daemon.handle(get("/diff?carrier=1"));
  EXPECT_EQ(diff.status, 200) << diff.body;
  EXPECT_NE(diff.body.find("\"changes\":["), std::string::npos);
  EXPECT_NE(diff.body.find("\"slots\":"), std::string::npos);

  EXPECT_EQ(daemon.handle(get("/metrics")).status, 200);
  EXPECT_EQ(daemon.handle(get("/varz")).status, 200);
  EXPECT_EQ(daemon.handle(get("/")).status, 200);
  EXPECT_EQ(daemon.handle(get("/nope")).status, 404);
  EXPECT_EQ(daemon.handle(get("/recommend")).status, 400);  // no carrier
  EXPECT_EQ(daemon.handle(get("/recommend?carrier=999999")).status, 400);
  EXPECT_EQ(daemon.handle(get("/recommend?carrier=abc")).status, 400);
  obs::HttpRequest put = get("/recommend?carrier=0");
  put.method = "PUT";
  EXPECT_EQ(daemon.handle(put).status, 405);
  // After all that, nothing is stuck in the admission window.
  EXPECT_EQ(daemon.admitted(), 0u);
}

TEST(ServeDaemon, PairwiseRecommendationsNeedAValidNeighbor) {
  Fixture f;
  ServeDaemon daemon = f.daemon(f.options());
  daemon.warm_up();
  const auto neighbors = f.topo.neighborhood(0);
  ASSERT_FALSE(neighbors.empty());
  const std::string target =
      "/recommend?carrier=0&neighbor=" + std::to_string(neighbors.front());
  EXPECT_EQ(daemon.handle(get(target)).status, 200);
  EXPECT_EQ(daemon.handle(get("/recommend?carrier=0&neighbor=999999")).status, 400);
}

TEST(ServeDaemon, AdmissionShedsPastTheHighWaterMark) {
  Fixture f;
  ServeOptions o = f.options();
  o.queue_high_water = 0;  // every data request is past the mark
  ServeDaemon daemon = f.daemon(o);
  daemon.warm_up();

  obs::HttpResponse shed = daemon.handle(get("/recommend?carrier=0"));
  EXPECT_EQ(shed.status, 503);
  EXPECT_NE(shed.body.find("admission queue full"), std::string::npos);
  ASSERT_EQ(shed.extra_headers.size(), 1u);
  EXPECT_EQ(shed.extra_headers[0].first, "Retry-After");
  EXPECT_EQ(f.registry.counter("auric_serve_shed_total").value(), 1u);
  EXPECT_EQ(daemon.admitted(), 0u);  // the shed path released its slot

  // A recent shed flips /healthz to overloaded — the load balancer's cue.
  obs::HttpResponse health = daemon.handle(get("/healthz"));
  EXPECT_EQ(health.status, 503);
  EXPECT_NE(health.body.find("\"status\":\"overloaded\""), std::string::npos);
  // The control plane itself is never admission-gated.
  EXPECT_EQ(daemon.handle(get("/metrics")).status, 200);
}

TEST(ServeDaemon, MalformedDeadlineHeaderIsRejected) {
  Fixture f;
  ServeDaemon daemon = f.daemon(f.options());
  daemon.warm_up();
  EXPECT_EQ(daemon.handle(get("/recommend?carrier=0", {{"x-auric-deadline-ms", "abc"}})).status,
            400);
  EXPECT_EQ(daemon.handle(get("/recommend?carrier=0", {{"x-auric-deadline-ms", "-5"}})).status,
            400);
  EXPECT_EQ(daemon.handle(get("/recommend?carrier=0", {{"x-auric-deadline-ms", "250"}})).status,
            200);
}

TEST(ServeDaemon, DeadlineExpiryBeforeDispatchReturns504) {
  Fixture f;
  ServeOptions o = f.options();
  o.bulkhead_width = 0;  // no lane ever frees: every request expires waiting
  ServeDaemon daemon = f.daemon(o);
  daemon.warm_up();

  const auto t0 = std::chrono::steady_clock::now();
  obs::HttpResponse response =
      daemon.handle(get("/recommend?carrier=0", {{"x-auric-deadline-ms", "50"}}));
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(response.status, 504);
  EXPECT_NE(response.body.find("before dispatch"), std::string::npos);
  EXPECT_GE(waited.count(), 50);
  EXPECT_EQ(f.registry.counter("auric_serve_deadline_expired_total").value(), 1u);
  EXPECT_EQ(daemon.admitted(), 0u);
}

TEST(ServeDaemon, MidFlightTimeoutReturns504WithoutPoisoningTheWorker) {
  Fixture f;
  ServeOptions o = f.options();
  o.workers = 1;
  o.work_delay_ms = 150;
  ServeDaemon daemon = f.daemon(o);
  daemon.warm_up();

  obs::HttpResponse late =
      daemon.handle(get("/recommend?carrier=0", {{"x-auric-deadline-ms", "30"}}));
  EXPECT_EQ(late.status, 504);
  EXPECT_NE(late.body.find("in flight"), std::string::npos);
  EXPECT_EQ(f.registry.counter("auric_serve_timeouts_total").value(), 1u);

  // The abandoned job finishes in the background; the same worker then
  // serves a patient request normally.
  obs::HttpResponse ok =
      daemon.handle(get("/recommend?carrier=1", {{"x-auric-deadline-ms", "5000"}}));
  EXPECT_EQ(ok.status, 200) << ok.body;
  EXPECT_EQ(daemon.admitted(), 0u);
}

TEST(ServeDaemon, BulkheadsIsolateAHotMarketLane) {
  // One lane wedged at its width must not block a request routed to a
  // different lane. Requests run with work_delay to hold their lane briefly.
  Fixture f;
  // The market -> lane mapping is a hash; pick a bulkhead count that puts
  // the fixture's two markets on different lanes (one always exists unless
  // the 64-bit hashes collide outright).
  int bulkheads = 0;
  for (int candidate = 2; candidate <= 8; ++candidate) {
    if (smartlaunch::shard_of_market(0, candidate) !=
        smartlaunch::shard_of_market(1, candidate)) {
      bulkheads = candidate;
      break;
    }
  }
  ASSERT_GT(bulkheads, 0);

  ServeOptions o = f.options();
  o.workers = 4;
  o.bulkheads = bulkheads;
  o.bulkhead_width = 1;
  o.work_delay_ms = 200;
  ServeDaemon daemon = f.daemon(o);
  daemon.warm_up();

  // One carrier per market: by construction they sit on different lanes.
  int lane0_carrier = -1, lane1_carrier = -1;
  for (std::size_t c = 0; c < f.topo.carrier_count(); ++c) {
    if (f.topo.carriers[c].market == 0 && lane0_carrier < 0) lane0_carrier = static_cast<int>(c);
    if (f.topo.carriers[c].market == 1 && lane1_carrier < 0) lane1_carrier = static_cast<int>(c);
  }
  ASSERT_GE(lane0_carrier, 0);
  ASSERT_GE(lane1_carrier, 0);

  // Saturate lane 0 (width 1) from a background thread.
  std::thread hog([&] {
    daemon.handle(get("/recommend?carrier=" + std::to_string(lane0_carrier),
                      {{"x-auric-deadline-ms", "5000"}}));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // hog holds its lane

  // Lane 1 is free: a short-deadline request there completes despite the
  // saturated sibling lane.
  obs::HttpResponse other = daemon.handle(
      get("/recommend?carrier=" + std::to_string(lane1_carrier),
          {{"x-auric-deadline-ms", "5000"}}));
  EXPECT_EQ(other.status, 200) << other.body;
  hog.join();
}

TEST(ServeDaemon, RelearnHotSwapsWhileInFlightRequestsKeepTheirSnapshot) {
  Fixture f;
  ServeOptions o = f.options();
  o.workers = 2;
  o.work_delay_ms = 250;
  ServeDaemon daemon = f.daemon(o);
  daemon.warm_up();
  ASSERT_EQ(daemon.generation(), 1u);

  // A slow request pins generation 1 while the swap happens underneath it.
  std::atomic<int> in_flight_generation{0};
  std::thread slow([&] {
    obs::HttpResponse r = daemon.handle(
        get("/recommend?carrier=0", {{"x-auric-deadline-ms", "5000"}}));
    in_flight_generation.store(
        r.body.find("\"generation\":1") != std::string::npos ? 1 : -1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));  // it has snapshotted by now

  EXPECT_TRUE(daemon.relearn());
  EXPECT_EQ(daemon.generation(), 2u);
  slow.join();
  EXPECT_EQ(in_flight_generation.load(), 1);  // finished on the engine it started with

  // New requests see the swapped engine.
  obs::HttpResponse fresh =
      daemon.handle(get("/recommend?carrier=0", {{"x-auric-deadline-ms", "5000"}}));
  EXPECT_NE(fresh.body.find("\"generation\":2"), std::string::npos);
  EXPECT_EQ(f.registry.counter("auric_serve_engine_swaps_total").value(), 1u);
}

TEST(ServeDaemon, FailedRelearnKeepsServingTheLastGoodEngine) {
  Fixture f;
  ServeDaemon daemon = f.daemon(f.options());
  daemon.warm_up();
  ASSERT_EQ(daemon.generation(), 1u);

  daemon.set_engine_builder(
      []() -> std::unique_ptr<core::AuricEngine> { throw std::runtime_error("feed corrupt"); });
  EXPECT_FALSE(daemon.relearn());
  EXPECT_TRUE(daemon.degraded());
  EXPECT_EQ(daemon.generation(), 1u);  // last-good bundle still installed
  EXPECT_EQ(f.registry.counter("auric_serve_relearn_failures_total").value(), 1u);
  EXPECT_DOUBLE_EQ(f.registry.gauge("auric_serve_degraded").value(), 1.0);

  obs::HttpResponse health = daemon.handle(get("/healthz"));
  EXPECT_EQ(health.status, 503);
  EXPECT_NE(health.body.find("\"status\":\"degraded\""), std::string::npos);
  // Data plane keeps answering from the stale engine.
  EXPECT_EQ(daemon.handle(get("/recommend?carrier=0")).status, 200);

  // POST /relearn reports the degradation to the caller too.
  obs::HttpRequest relearn;
  relearn.method = "POST";
  relearn.target = "/relearn";
  EXPECT_EQ(daemon.handle(relearn).status, 503);

  // The feed recovers: the next relearn swaps and clears degraded.
  daemon.set_engine_builder([&f]() {
    return std::make_unique<core::AuricEngine>(f.topo, f.schema, f.catalog, f.assignment);
  });
  EXPECT_EQ(daemon.handle(relearn).status, 200);
  EXPECT_FALSE(daemon.degraded());
  EXPECT_GE(daemon.generation(), 2u);
  obs::HttpResponse healthy = daemon.handle(get("/healthz"));
  EXPECT_EQ(healthy.status, 200) << healthy.body;
}

TEST(ServeDaemon, RecommendCarriesProvenanceFields) {
  Fixture f;
  ServeDaemon daemon = f.daemon(f.options());
  daemon.warm_up();
  obs::HttpResponse rec = daemon.handle(get("/recommend?carrier=0"));
  ASSERT_EQ(rec.status, 200) << rec.body;
  EXPECT_NE(rec.body.find("\"source\":\""), std::string::npos);
  EXPECT_NE(rec.body.find("\"support\":"), std::string::npos);
  EXPECT_NE(rec.body.find("\"margin\":"), std::string::npos);
}

TEST(ServeDaemon, RelearnAuditRidesTheResponseAndModelz) {
  Fixture f;
  ServeDaemon daemon = f.daemon(f.options());
  daemon.warm_up();

  // Before any relearn /modelz exists but has no audit yet.
  obs::HttpResponse before = daemon.handle(get("/modelz"));
  ASSERT_EQ(before.status, 200);
  EXPECT_NE(before.body.find("\"audit\":null"), std::string::npos);
  EXPECT_NE(before.body.find("\"model\":{"), std::string::npos);

  obs::HttpRequest relearn;
  relearn.method = "POST";
  relearn.target = "/relearn";
  obs::HttpResponse swapped = daemon.handle(relearn);
  ASSERT_EQ(swapped.status, 200) << swapped.body;
  EXPECT_NE(swapped.body.find("\"status\":\"swapped\""), std::string::npos);
  // Same inventory, same builder: the audit must find a clean diff.
  EXPECT_NE(swapped.body.find("\"audit\":{"), std::string::npos);
  EXPECT_NE(swapped.body.find("\"flips\":0"), std::string::npos);
  EXPECT_DOUBLE_EQ(f.registry.gauge("auric_serve_relearn_flip_rate").value(), 0.0);

  // The audit is retained for /modelz, alongside the watch document.
  obs::HttpResponse modelz = daemon.handle(get("/modelz"));
  ASSERT_EQ(modelz.status, 200);
  EXPECT_NE(modelz.body.find("\"audit\":{"), std::string::npos);
  EXPECT_NE(modelz.body.find("\"flip_rate\":0"), std::string::npos);
  EXPECT_NE(modelz.body.find("\"params\":["), std::string::npos);
  // A swapped relearn rolls a ModelWatch drift day.
  EXPECT_EQ(daemon.model_watch().days_rolled(), 1);
}

TEST(ServeDaemon, ShadowAuditRefusesADegradedRelearn) {
  Fixture f;
  ServeOptions o = f.options();
  o.max_flip_rate = 0.0;  // any flip at all refuses the swap
  ServeDaemon daemon = f.daemon(o);
  daemon.warm_up();
  ASSERT_EQ(daemon.generation(), 1u);

  // A candidate whose vote threshold can never be met: every slot falls back
  // to the rule book, flipping every voted value — exactly the degenerate
  // relearn the audit exists to catch.
  daemon.set_engine_builder([&f]() {
    core::AuricOptions broken;
    broken.vote_threshold = 1.01;
    return std::make_unique<core::AuricEngine>(f.topo, f.schema, f.catalog, f.assignment,
                                               broken);
  });

  obs::HttpRequest relearn;
  relearn.method = "POST";
  relearn.target = "/relearn";
  obs::HttpResponse refused = daemon.handle(relearn);
  EXPECT_EQ(refused.status, 503);
  EXPECT_NE(refused.body.find("\"status\":\"refused\""), std::string::npos);
  EXPECT_NE(refused.body.find("\"audit\":{"), std::string::npos);

  // Last-good keeps serving; the refusal is accounted and surfaced.
  EXPECT_EQ(daemon.generation(), 1u);
  EXPECT_TRUE(daemon.degraded());
  EXPECT_EQ(f.registry.counter("auric_serve_relearn_refused_total").value(), 1u);
  EXPECT_EQ(f.registry.counter("auric_serve_engine_swaps_total").value(), 0u);
  EXPECT_GT(f.registry.gauge("auric_serve_relearn_flip_rate").value(), 0.0);
  EXPECT_EQ(daemon.handle(get("/recommend?carrier=0")).status, 200);
  EXPECT_EQ(daemon.handle(get("/healthz")).status, 503);

  // A healthy candidate passes the audit, swaps, and clears degraded.
  daemon.set_engine_builder([&f]() {
    return std::make_unique<core::AuricEngine>(f.topo, f.schema, f.catalog, f.assignment);
  });
  obs::HttpResponse recovered = daemon.handle(relearn);
  EXPECT_EQ(recovered.status, 200) << recovered.body;
  EXPECT_EQ(daemon.generation(), 2u);
  EXPECT_FALSE(daemon.degraded());
}

TEST(ServeDaemon, IncrementalRelearnRidesTheShadowAuditAndFlipRateCap) {
  Fixture f;
  ServeOptions o = f.options();
  o.max_flip_rate = 0.0;  // any flip at all refuses the swap
  o.relearn_mode = core::RelearnMode::kIncremental;
  ServeDaemon daemon = f.daemon(o);
  daemon.warm_up();
  ASSERT_EQ(daemon.generation(), 1u);

  obs::HttpRequest relearn;
  relearn.method = "POST";
  relearn.target = "/relearn";

  // Unchanged inventory: the clone delta-updates to an identical model, the
  // audit sees zero flips, and the swap clears the zero-tolerance cap.
  obs::HttpResponse swapped = daemon.handle(relearn);
  EXPECT_EQ(swapped.status, 200) << swapped.body;
  EXPECT_NE(swapped.body.find("\"mode\":\"incremental\""), std::string::npos);
  EXPECT_NE(swapped.body.find("\"flips\":0"), std::string::npos);
  EXPECT_EQ(daemon.generation(), 2u);

  // The inventory feed rewrites the network under the daemon (the owner may
  // refresh the resident assignment in place): the incremental clone absorbs
  // the deltas, the shadow-audit sees the disagreement, and the flip-rate cap
  // refuses the swap — incremental relearns get no bypass around the gate.
  const config::ConfigAssignment before = f.assignment;
  for (auto& column : f.assignment.singular) {
    for (auto& v : column.value) {
      if (v != config::kUnset) v = 0;
    }
  }
  obs::HttpResponse refused = daemon.handle(relearn);
  EXPECT_EQ(refused.status, 503);
  EXPECT_NE(refused.body.find("\"status\":\"refused\""), std::string::npos);
  EXPECT_NE(refused.body.find("\"mode\":\"incremental\""), std::string::npos);
  EXPECT_EQ(daemon.generation(), 2u);
  EXPECT_TRUE(daemon.degraded());
  EXPECT_EQ(f.registry.counter("auric_serve_relearn_refused_total").value(), 1u);
  EXPECT_GT(f.registry.gauge("auric_serve_relearn_flip_rate").value(), 0.0);

  // Per-request mode override: ?mode=full takes the builder path (same
  // refusal — the gate is mode-independent); garbage is a 400.
  obs::HttpRequest full = relearn;
  full.target = "/relearn?mode=full";
  obs::HttpResponse full_refused = daemon.handle(full);
  EXPECT_EQ(full_refused.status, 503);
  EXPECT_NE(full_refused.body.find("\"mode\":\"full\""), std::string::npos);
  obs::HttpRequest bogus = relearn;
  bogus.target = "/relearn?mode=sideways";
  EXPECT_EQ(daemon.handle(bogus).status, 400);

  // The feed settles back: the next incremental relearn swaps cleanly.
  f.assignment = before;
  obs::HttpResponse recovered = daemon.handle(relearn);
  EXPECT_EQ(recovered.status, 200) << recovered.body;
  EXPECT_EQ(daemon.generation(), 3u);
  EXPECT_FALSE(daemon.degraded());
}

TEST(ServeDaemon, FiringAlertRulesFlipHealthzToAlerting) {
  Fixture f;
  ServeDaemon daemon = f.daemon(f.options());
  obs::RuleEngine rules(f.registry);
  rules.set_log([](const std::string&) {});
  rules.load_text("depth,threshold,some_gauge,>,5\n");
  daemon.set_rule_engine(&rules);
  daemon.warm_up();

  EXPECT_EQ(daemon.handle(get("/healthz")).status, 200);
  obs::Sampler sampler(f.registry);
  f.registry.gauge("some_gauge").set(10.0);
  sampler.tick(1.0);
  rules.evaluate(sampler, 1.0);
  obs::HttpResponse health = daemon.handle(get("/healthz"));
  EXPECT_EQ(health.status, 503);
  EXPECT_NE(health.body.find("\"status\":\"alerting\""), std::string::npos);
}

TEST(ServeDaemon, DrainStopsAdmittingAndReportsDraining) {
  Fixture f;
  ServeDaemon daemon = f.daemon(f.options());
  daemon.warm_up();
  daemon.drain();
  EXPECT_TRUE(daemon.draining());

  obs::HttpResponse shed = daemon.handle(get("/recommend?carrier=0"));
  EXPECT_EQ(shed.status, 503);
  EXPECT_NE(shed.body.find("draining"), std::string::npos);
  obs::HttpResponse health = daemon.handle(get("/healthz"));
  EXPECT_EQ(health.status, 503);
  EXPECT_NE(health.body.find("\"status\":\"draining\""), std::string::npos);
  EXPECT_DOUBLE_EQ(f.registry.gauge("auric_serve_up").value(), 0.0);
}

TEST(ServeDaemon, PostQuitRequestsAProcessDrain) {
  util::reset_drain_flag();
  Fixture f;
  ServeDaemon daemon = f.daemon(f.options());
  daemon.warm_up();
  obs::HttpRequest quit;
  quit.method = "POST";
  quit.target = "/quit";
  EXPECT_EQ(daemon.handle(quit).status, 200);
  EXPECT_TRUE(util::drain_requested());
  util::reset_drain_flag();
}

TEST(ServeDaemon, ServesTheSeededLoadgenOverARealSocket) {
  Fixture f;
  ServeOptions o = f.options();
  o.http.threads = 4;
  ServeDaemon daemon = f.daemon(o);
  daemon.start();
  ASSERT_TRUE(daemon.running());
  ASSERT_NE(daemon.port(), 0);

  LoadGenOptions lg;
  lg.port = daemon.port();
  lg.clients = 3;
  lg.requests_per_client = 15;
  lg.carrier_universe = static_cast<int>(f.topo.carrier_count());
  LoadGenStats stats = run_loadgen(lg);
  EXPECT_EQ(stats.sent, 45u);
  EXPECT_GT(stats.ok, 0u);
  EXPECT_EQ(stats.lost(), 0u);
  EXPECT_EQ(stats.refused, 0u);
  EXPECT_EQ(stats.server_error, 0u);
  EXPECT_EQ(stats.ok + stats.shed + stats.expired + stats.client_error, stats.sent);

  // Identical seed, identical daemon state -> identical request stream.
  daemon.relearn();  // swap mid-life: the stream must still lose nothing
  LoadGenStats again = run_loadgen(lg);
  EXPECT_EQ(again.sent, 45u);
  EXPECT_EQ(again.lost(), 0u);

  daemon.drain();
  EXPECT_FALSE(daemon.running());
  EXPECT_GE(daemon.requests_served(), 90u);

  // After drain the port is closed: everything is refused, nothing is lost.
  LoadGenStats after = run_loadgen(lg);
  EXPECT_EQ(after.refused, after.sent);
  EXPECT_EQ(after.lost(), 0u);
}

TEST(ServeDaemon, OneTraceStitchesListenerAdmissionBulkheadAndEngineSpans) {
  // The observability acceptance shape: a client-chosen traceparent rides a
  // real /recommend over loopback, the response echoes the trace id, the
  // kept trace shows every hop, and the latency histogram's bucket carries
  // the trace id as an exemplar on /metrics.
  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  rec.clear();
  obs::TailOptions tail;
  tail.min_ms = 0.0;  // keep every finalized trace for the assertions
  rec.set_tail_options(tail);

  Fixture f;
  ServeOptions o = f.options();
  o.http.threads = 2;
  ServeDaemon daemon = f.daemon(o);
  daemon.start();
  ASSERT_NE(daemon.port(), 0);

  LoadGenOptions lg;
  lg.port = daemon.port();
  lg.clients = 2;
  lg.requests_per_client = 10;
  lg.healthz_weight = 0.0;  // every request is a traced data request
  lg.carrier_universe = static_cast<int>(f.topo.carrier_count());
  lg.slowest = 3;
  LoadGenStats stats = run_loadgen(lg);
  EXPECT_GT(stats.ok, 0u);
  EXPECT_EQ(stats.lost(), 0u);

  // Per-outcome quantiles and the slowest-N report came back filled in.
  ASSERT_FALSE(stats.by_outcome.empty());
  EXPECT_EQ(stats.by_outcome[0].outcome, "ok");
  EXPECT_GT(stats.by_outcome[0].count, 0u);
  ASSERT_FALSE(stats.slowest.empty());
  EXPECT_GE(stats.slowest[0].latency_ms, stats.slowest.back().latency_ms);

  // Every data response echoed the client's trace id (32 hex chars).
  const std::string& trace_id = stats.slowest[0].trace_id;
  ASSERT_EQ(trace_id.size(), 32u) << "no Traceparent came back on the slowest request";

  // The kept trace for that id contains every hop of the request path.
  const std::string endpoint =
      stats.slowest[0].target.rfind("/diff", 0) == 0 ? "diff" : "recommend";
  const obs::HttpResponse tracez = daemon.handle(get("/tracez?trace_id=" + trace_id));
  ASSERT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("\"trace\":\"" + trace_id + "\""), std::string::npos);
  EXPECT_NE(tracez.body.find("\"name\":\"http./" + endpoint + "\""), std::string::npos)
      << tracez.body;
  EXPECT_NE(tracez.body.find("\"name\":\"serve." + endpoint + "\""), std::string::npos);
  EXPECT_NE(tracez.body.find("\"name\":\"serve.admission\""), std::string::npos);
  EXPECT_NE(tracez.body.find("\"name\":\"serve.bulkhead\""), std::string::npos);
  EXPECT_NE(tracez.body.find("\"name\":\"serve.engine\""), std::string::npos);

  // The latency histogram exposes SOME trace id as an OpenMetrics exemplar.
  const obs::HttpResponse metrics = daemon.handle(get("/metrics"));
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# {trace_id=\""), std::string::npos);

  daemon.drain();
  rec.clear();
  rec.set_tail_options(obs::TailOptions{});  // restore defaults
}

TEST(ServeDaemon, OverloadShedsButAdmittedRequestsMeetTheirDeadline) {
  // The acceptance shape in miniature: more concurrent clients than the
  // admission window allows, a daemon slowed enough that overload is real.
  // The daemon must shed (503) rather than queue without bound, and every
  // admitted request must finish inside its deadline (no losses).
  Fixture f;
  ServeOptions o = f.options();
  o.http.threads = 8;
  o.workers = 2;
  o.queue_high_water = 2;
  o.work_delay_ms = 5;
  ServeDaemon daemon = f.daemon(o);
  daemon.start();

  LoadGenOptions lg;
  lg.port = daemon.port();
  lg.clients = 8;
  lg.requests_per_client = 25;
  lg.deadline_ms = 1000;
  lg.carrier_universe = static_cast<int>(f.topo.carrier_count());
  LoadGenStats stats = run_loadgen(lg);
  EXPECT_EQ(stats.sent, 200u);
  EXPECT_GT(stats.shed, 0u);  // overload produced real shedding
  EXPECT_GT(stats.ok, 0u);    // yet admitted work was served
  EXPECT_EQ(stats.lost(), 0u);
  EXPECT_LT(stats.p99_ms, 1000.0);  // admitted p99 under the deadline
  EXPECT_GT(f.registry.counter("auric_serve_shed_total").value(), 0u);
  daemon.drain();
}

}  // namespace
}  // namespace auric::serve
