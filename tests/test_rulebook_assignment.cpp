#include <gtest/gtest.h>

#include "config/rulebook.h"
#include "test_helpers.h"

namespace auric::config {
namespace {

struct Fixture {
  netsim::Topology topo = test::small_generated_topology(6, 2, 14);
  netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  ParamCatalog catalog = ParamCatalog::standard();
  GroundTruthModel model{topo, schema, catalog};
  Rulebook rulebook{model, catalog};
};

TEST(Rulebook, DefaultValuesComeFromTheCatalog) {
  Fixture f;
  for (std::size_t p = 0; p < f.catalog.size(); ++p) {
    EXPECT_EQ(f.rulebook.default_value(static_cast<ParamId>(p)),
              f.catalog[p].default_index);
  }
}

TEST(Rulebook, LookupsStayInsideDomains) {
  Fixture f;
  for (ParamId p : f.catalog.singular_ids()) {
    for (const netsim::Carrier& c : f.topo.carriers) {
      EXPECT_TRUE(f.catalog.at(p).domain.contains(f.rulebook.lookup(p, c)));
    }
  }
}

TEST(Rulebook, PairwiseLookupUsesNeighborAttributes) {
  Fixture f;
  // The rule-book value for a pair-wise parameter may differ by neighbor;
  // at minimum it must be deterministic and in-domain.
  const ParamId p = f.catalog.id_of("threshXHigh");
  const netsim::Carrier& c = f.topo.carriers[0];
  for (netsim::CarrierId n : f.topo.neighborhood(c.id)) {
    const ValueIndex v = f.rulebook.lookup(p, c, f.topo.carrier(n));
    EXPECT_TRUE(f.catalog.at(p).domain.contains(v));
    EXPECT_EQ(v, f.rulebook.lookup(p, c, f.topo.carrier(n)));
  }
}

TEST(Rulebook, CannotExpressMarketStyles) {
  // Two carriers with identical attributes in different markets get the SAME
  // rule-book value even when their intended values differ — that gap is
  // Auric's raison d'etre (§2.4). Verified statistically: across all
  // parameters, the rule-book matches intent strictly less often than the
  // ground truth deviates from defaults.
  Fixture f;
  const ConfigAssignment assignment = f.model.assign();
  std::size_t intent_matches = 0;
  std::size_t slots = 0;
  const auto& ids = f.catalog.singular_ids();
  for (std::size_t si = 0; si < ids.size(); ++si) {
    for (std::size_t c = 0; c < f.topo.carrier_count(); ++c) {
      if (assignment.singular[si].intended[c] == kUnset) continue;
      ++slots;
      const ValueIndex rb = f.rulebook.lookup(ids[si], f.topo.carriers[c]);
      intent_matches += rb == assignment.singular[si].intended[c] ? 1 : 0;
    }
  }
  const double match_rate = static_cast<double>(intent_matches) / static_cast<double>(slots);
  EXPECT_LT(match_rate, 0.95);  // rule-books are incomplete...
  EXPECT_GT(match_rate, 0.50);  // ...but far from useless
}

TEST(ParamColumn, ConfiguredCountSkipsUnset) {
  ParamColumn col;
  col.value = {1, kUnset, 3, kUnset};
  EXPECT_EQ(col.configured_count(), 2u);
  EXPECT_EQ(col.size(), 4u);
}

TEST(ConfigAssignment, TotalConfiguredSumsBothKinds) {
  ConfigAssignment assignment;
  assignment.singular.resize(2);
  assignment.singular[0].value = {1, 2, kUnset};
  assignment.singular[1].value = {kUnset, kUnset, kUnset};
  assignment.pairwise.resize(1);
  assignment.pairwise[0].value = {5, kUnset};
  EXPECT_EQ(assignment.total_configured(), 3u);
}

}  // namespace
}  // namespace auric::config
