// Unit and property tests for the deterministic RNG.
#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace auric::util {
namespace {

TEST(SplitMix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(a, splitmix64(state2));
  EXPECT_EQ(b, splitmix64(state2));
  EXPECT_NE(a, b);
}

TEST(HashCombine, OrderSensitiveAndStable) {
  const auto h1 = hash_combine({1, 2, 3});
  const auto h2 = hash_combine({3, 2, 1});
  EXPECT_NE(h1, h2);
  EXPECT_EQ(h1, hash_combine({1, 2, 3}));
  EXPECT_NE(hash_combine({1}), hash_combine({1, 0}));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 2);
}

class RngSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedTest, UniformIntStaysInBounds) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-7, 13);
    EXPECT_GE(v, -7);
    EXPECT_LE(v, 13);
  }
}

TEST_P(RngSeedTest, UniformIntCoversRange) {
  Rng rng(GetParam());
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST_P(RngSeedTest, UniformInUnitInterval) {
  Rng rng(GetParam());
  double sum = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 4000.0, 0.5, 0.03);
}

TEST_P(RngSeedTest, NormalHasZeroMeanUnitVariance) {
  Rng rng(GetParam());
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 8000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sq / kN, 1.0, 0.08);
}

TEST_P(RngSeedTest, ShuffleIsAPermutation) {
  Rng rng(GetParam());
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[static_cast<std::size_t>(i)] = i;
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::is_sorted(shuffled.begin(), shuffled.end()));  // astronomically unlikely
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST_P(RngSeedTest, SampleIndicesAreDistinctAndInRange) {
  Rng rng(GetParam());
  const auto sample = rng.sample_indices(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest, ::testing::Values(1u, 7u, 12345u, 0xDEADBEEFu));

TEST(Rng, SampleMoreThanAvailableReturnsAll) {
  Rng rng(1);
  const auto sample = rng.sample_indices(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(5);
  const std::vector<double> weights{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.45);
}

TEST(Rng, WeightedIndexThrowsOnAllZero) {
  Rng rng(1);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), std::invalid_argument);
}

TEST(Rng, ZipfFavorsSmallValues) {
  Rng rng(9);
  int low = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.zipf(10, 1.2);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 10);
    if (v <= 2) ++low;
  }
  EXPECT_GT(low, 1000);  // head-heavy
}

TEST(Rng, ForkWithDistinctTagsDiverges) {
  Rng parent(77);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace auric::util
