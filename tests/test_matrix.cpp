#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace auric::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.uniform(-1.0, 1.0);
  return m;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (double v : m.data()) EXPECT_EQ(v, 0.0);
  m.at(1, 2) = 5.0;
  EXPECT_EQ(m.at(1, 2), 5.0);
  EXPECT_EQ(m.row(1)[2], 5.0);
}

TEST(Matrix, RejectsBadDataSize) {
  EXPECT_THROW(Matrix(2, 2, {1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Matmul, KnownProduct) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = matmul(a, b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(Matmul, ShapeMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 3)), std::invalid_argument);
  EXPECT_THROW(matmul_transposed(Matrix(2, 3), Matrix(2, 4)), std::invalid_argument);
  EXPECT_THROW(matvec(Matrix(2, 3), std::vector<double>{1.0}), std::invalid_argument);
}

class MatmulPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatmulPropertyTest, TransposedVariantAgrees) {
  util::Rng rng(GetParam());
  const Matrix a = random_matrix(5, 7, rng);
  const Matrix b = random_matrix(7, 4, rng);
  const Matrix direct = matmul(a, b);
  const Matrix via_t = matmul_transposed(a, b.transposed());
  ASSERT_EQ(direct.rows(), via_t.rows());
  ASSERT_EQ(direct.cols(), via_t.cols());
  for (std::size_t i = 0; i < direct.data().size(); ++i) {
    EXPECT_NEAR(direct.data()[i], via_t.data()[i], 1e-12);
  }
}

TEST_P(MatmulPropertyTest, TransposeIsInvolution) {
  util::Rng rng(GetParam());
  const Matrix a = random_matrix(6, 3, rng);
  EXPECT_EQ(a.transposed().transposed(), a);
}

TEST_P(MatmulPropertyTest, MatvecMatchesMatmulColumn) {
  util::Rng rng(GetParam());
  const Matrix m = random_matrix(4, 6, rng);
  std::vector<double> x(6);
  for (double& v : x) v = rng.uniform(-2.0, 2.0);
  const auto y = matvec(m, x);
  const Matrix xs(6, 1, std::vector<double>(x));
  const Matrix prod = matmul(m, xs);
  for (std::size_t r = 0; r < 4; ++r) EXPECT_NEAR(y[r], prod.at(r, 0), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatmulPropertyTest, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Helpers, DotAndDistance) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 27.0);
}

TEST(Helpers, Axpy) {
  std::vector<double> a{1, 1};
  const std::vector<double> b{2, 3};
  axpy(a, 2.0, b);
  EXPECT_DOUBLE_EQ(a[0], 5.0);
  EXPECT_DOUBLE_EQ(a[1], 7.0);
}

TEST(Helpers, ColumnSumsAndRowVector) {
  Matrix m(2, 2, {1, 2, 3, 4});
  const auto sums = column_sums(m);
  EXPECT_DOUBLE_EQ(sums[0], 4.0);
  EXPECT_DOUBLE_EQ(sums[1], 6.0);
  add_row_vector(m, std::vector<double>{10, 20});
  EXPECT_DOUBLE_EQ(m.at(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 24.0);
}

TEST(Helpers, SelectRows) {
  const Matrix m(3, 2, {1, 2, 3, 4, 5, 6});
  const std::vector<std::size_t> idx{2, 0};
  const Matrix sel = m.select_rows(idx);
  EXPECT_DOUBLE_EQ(sel.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sel.at(1, 1), 2.0);
  const std::vector<std::size_t> bad{9};
  EXPECT_THROW(m.select_rows(bad), std::out_of_range);
}

TEST(Helpers, SquaredNorm) {
  const Matrix m(1, 3, {1, 2, 2});
  EXPECT_DOUBLE_EQ(m.squared_norm(), 9.0);
}

}  // namespace
}  // namespace auric::linalg
