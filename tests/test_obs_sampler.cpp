#include "obs/sampler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

namespace auric::obs {
namespace {

MetricSample counter_sample(const std::string& name, double value, Labels labels = {}) {
  MetricSample s;
  s.kind = MetricSample::Kind::kCounter;
  s.name = name;
  s.labels = std::move(labels);
  s.value = value;
  return s;
}

MetricSample gauge_sample(const std::string& name, double value, Labels labels = {}) {
  MetricSample s;
  s.kind = MetricSample::Kind::kGauge;
  s.name = name;
  s.labels = std::move(labels);
  s.value = value;
  return s;
}

MetricSample histogram_sample(const std::string& name, std::vector<double> bounds,
                              std::vector<std::uint64_t> buckets) {
  MetricSample s;
  s.kind = MetricSample::Kind::kHistogram;
  s.name = name;
  s.bounds = std::move(bounds);
  s.buckets = std::move(buckets);
  for (std::uint64_t b : s.buckets) s.count += b;
  return s;
}

TEST(SeriesSelector, ParsesBareNamesAndLabelSets) {
  SeriesSelector bare = SeriesSelector::parse("req_total");
  EXPECT_EQ(bare.name, "req_total");
  EXPECT_TRUE(bare.labels.empty());

  SeriesSelector labelled = SeriesSelector::parse("req_total{code=\"200\",zone=\"a,b\"}");
  EXPECT_EQ(labelled.name, "req_total");
  ASSERT_EQ(labelled.labels.size(), 2u);
  EXPECT_EQ(labelled.labels[0].first, "code");
  EXPECT_EQ(labelled.labels[0].second, "200");
  EXPECT_EQ(labelled.labels[1].second, "a,b");  // commas inside quotes survive

  SeriesSelector escaped = SeriesSelector::parse("m{k=\"va\\\"lue\"}");
  EXPECT_EQ(escaped.labels[0].second, "va\"lue");
}

TEST(SeriesSelector, RejectsMalformedSyntax) {
  EXPECT_THROW(SeriesSelector::parse(""), std::invalid_argument);
  EXPECT_THROW(SeriesSelector::parse("m{unclosed=\"v\""), std::invalid_argument);
  EXPECT_THROW(SeriesSelector::parse("m{k=unquoted}"), std::invalid_argument);
  EXPECT_THROW(SeriesSelector::parse("m{=\"v\"}"), std::invalid_argument);
}

TEST(SeriesSelector, MatchingIsASubsetMatch) {
  SeriesSelector sel = SeriesSelector::parse("req_total{code=\"200\"}");
  EXPECT_TRUE(sel.matches(counter_sample("req_total", 1, {{"code", "200"}, {"zone", "a"}})));
  EXPECT_FALSE(sel.matches(counter_sample("req_total", 1, {{"code", "500"}})));
  EXPECT_FALSE(sel.matches(counter_sample("req_total", 1)));
  EXPECT_FALSE(sel.matches(counter_sample("other", 1, {{"code", "200"}})));
  // str() round-trips through parse().
  SeriesSelector again = SeriesSelector::parse(sel.str());
  EXPECT_EQ(again.name, sel.name);
  EXPECT_EQ(again.labels, sel.labels);
}

TEST(Sampler, ValueSumsAcrossLabelMatches) {
  Sampler sampler;
  sampler.tick_with(0.0, {counter_sample("req_total", 3, {{"code", "200"}}),
                          counter_sample("req_total", 4, {{"code", "500"}}),
                          gauge_sample("depth", 7)});
  EXPECT_DOUBLE_EQ(*sampler.value(SeriesSelector::parse("req_total")), 7.0);
  EXPECT_DOUBLE_EQ(*sampler.value(SeriesSelector::parse("req_total{code=\"200\"}")), 3.0);
  EXPECT_DOUBLE_EQ(*sampler.value(SeriesSelector::parse("depth")), 7.0);
  EXPECT_FALSE(sampler.value(SeriesSelector::parse("missing")).has_value());
}

TEST(Sampler, RateUsesOldestPointInsideTheWindow) {
  Sampler sampler;
  sampler.tick_with(0.0, {counter_sample("c", 0)});
  sampler.tick_with(1.0, {counter_sample("c", 10)});
  sampler.tick_with(2.0, {counter_sample("c", 30)});
  const SeriesSelector c = SeriesSelector::parse("c");
  // Window covers everything: (30 - 0) / (2 - 0).
  EXPECT_DOUBLE_EQ(*sampler.rate(c, 10.0), 15.0);
  // Window [0.5, 2) only holds t=1: (30 - 10) / (2 - 1).
  EXPECT_DOUBLE_EQ(*sampler.rate(c, 1.5), 20.0);
  // Window [1.5, 2) holds nothing older; falls back to the previous point.
  EXPECT_DOUBLE_EQ(*sampler.rate(c, 0.5), 20.0);
}

TEST(Sampler, RateNeedsTwoPointsAndClampsCounterResets) {
  Sampler sampler;
  const SeriesSelector c = SeriesSelector::parse("c");
  EXPECT_FALSE(sampler.rate(c, 10.0).has_value());
  sampler.tick_with(0.0, {counter_sample("c", 30)});
  EXPECT_FALSE(sampler.rate(c, 10.0).has_value());  // one point is no rate
  sampler.tick_with(1.0, {counter_sample("c", 5)});  // process restarted
  EXPECT_DOUBLE_EQ(*sampler.rate(c, 10.0), 0.0);     // clamped, not negative
}

TEST(Sampler, TickTimesMustStrictlyIncrease) {
  Sampler sampler;
  sampler.tick_with(1.0, {});
  EXPECT_THROW(sampler.tick_with(1.0, {}), std::invalid_argument);
  EXPECT_THROW(sampler.tick_with(0.5, {}), std::invalid_argument);
  sampler.tick_with(1.5, {});
  EXPECT_EQ(sampler.ticks(), 2u);
}

TEST(Sampler, QuantileInterpolatesInsideBuckets) {
  Sampler sampler;
  sampler.tick_with(0.0, {histogram_sample("lat", {1.0, 2.0, 4.0}, {2, 2, 4, 2})});
  const SeriesSelector lat = SeriesSelector::parse("lat");
  // rank(0.5) = 5 of 10 -> bucket (2, 4], 1 of 4 into it: 2 + 2 * 0.25.
  EXPECT_DOUBLE_EQ(*sampler.quantile(lat, 0.5), 2.5);
  // rank(0.1) = 1 -> first bucket interpolates from 0: 0 + 1 * (1/2).
  EXPECT_DOUBLE_EQ(*sampler.quantile(lat, 0.1), 0.5);
  // rank(0.9) = 9 lands in the overflow bucket -> clamps to the last bound.
  EXPECT_DOUBLE_EQ(*sampler.quantile(lat, 0.9), 4.0);
  EXPECT_FALSE(sampler.quantile(SeriesSelector::parse("missing"), 0.5).has_value());
}

TEST(HistogramQuantile, NanOnNonHistogramOrEmpty) {
  EXPECT_TRUE(std::isnan(histogram_quantile(counter_sample("c", 1), 0.5)));
  EXPECT_TRUE(std::isnan(histogram_quantile(histogram_sample("h", {1.0}, {0, 0}), 0.5)));
  // A sample with mismatched bucket/bound arity is malformed, not a crash.
  MetricSample bad = histogram_sample("h", {1.0, 2.0}, {1, 1});
  EXPECT_TRUE(std::isnan(histogram_quantile(bad, 0.5)));
}

TEST(Sampler, RingOverwritesOldestAtCapacity) {
  SamplerOptions options;
  options.capacity = 3;
  Sampler sampler(MetricsRegistry::global(), options);
  for (int i = 0; i < 5; ++i) {
    sampler.tick_with(static_cast<double>(i), {counter_sample("c", i)});
  }
  EXPECT_EQ(sampler.size(), 3u);
  EXPECT_EQ(sampler.ticks(), 5u);
  const std::vector<SamplePoint> points = sampler.points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points.front().t, 2.0);  // oldest surviving
  EXPECT_DOUBLE_EQ(points.back().t, 4.0);
  EXPECT_DOUBLE_EQ(*sampler.last_time(), 4.0);
  sampler.clear();
  EXPECT_EQ(sampler.size(), 0u);
  EXPECT_FALSE(sampler.last_time().has_value());
}

TEST(Sampler, TickScrapesTheRegistryAndRunsHooks) {
  MetricsRegistry reg;
  Counter& c = reg.counter("scraped_total");
  Sampler sampler(reg);
  int pre = 0;
  std::vector<double> seen;
  sampler.set_pre_tick([&] {
    ++pre;
    c.inc(5);  // pre-tick mutations land IN the snapshot
  });
  sampler.set_on_tick([&](double t) {
    seen.push_back(t);
    // The hook runs outside the ring lock: derivations are safe here.
    EXPECT_TRUE(sampler.value(SeriesSelector::parse("scraped_total")).has_value());
  });
  sampler.tick(1.0);
  sampler.tick(2.0);
  EXPECT_EQ(pre, 2);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[1], 2.0);
  EXPECT_DOUBLE_EQ(*sampler.value(SeriesSelector::parse("scraped_total")), 10.0);
}

TEST(Sampler, BackgroundThreadTicksAndStops) {
  MetricsRegistry reg;
  reg.counter("bg_total").inc();
  SamplerOptions options;
  options.interval_ms = 1.0;
  Sampler sampler(reg, options);
  EXPECT_FALSE(sampler.running());
  sampler.start();
  EXPECT_TRUE(sampler.running());
  for (int i = 0; i < 2000 && sampler.ticks() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.ticks(), 3u);
  const std::uint64_t after_stop = sampler.ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(sampler.ticks(), after_stop);
  sampler.stop();  // idempotent
}

TEST(Sampler, SeriesCsvHasOneRowPerTickAndDerivedColumns) {
  Sampler sampler;
  sampler.tick_with(0.0, {counter_sample("c", 0, {{"k", "a"}}), gauge_sample("g", 1),
                          histogram_sample("h", {1.0, 2.0, 4.0}, {2, 2, 4, 2})});
  sampler.tick_with(2.0, {counter_sample("c", 10, {{"k", "a"}}), gauge_sample("g", 3),
                          histogram_sample("h", {1.0, 2.0, 4.0}, {2, 2, 4, 2})});
  const std::string csv = sampler.series_csv();
  std::istringstream lines(csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header.rfind("t_s,", 0), 0u);
  // Label sets contain commas, so the column name is CSV-quoted.
  EXPECT_NE(header.find("\"c{k=\"\"a\"\"}\""), std::string::npos);
  EXPECT_NE(header.find(":rate"), std::string::npos);  // counters get a rate column
  EXPECT_NE(header.find("h:count"), std::string::npos);
  EXPECT_NE(header.find("h:p50"), std::string::npos);
  EXPECT_NE(header.find("h:p99"), std::string::npos);
  std::string row1;
  std::string row2;
  ASSERT_TRUE(std::getline(lines, row1));
  ASSERT_TRUE(std::getline(lines, row2));
  std::string extra;
  EXPECT_FALSE(std::getline(lines, extra));
  EXPECT_EQ(row2.rfind("2,", 0), 0u);           // t_s column
  EXPECT_NE(row2.find('5'), std::string::npos);  // counter rate (10 - 0) / 2

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "auric_sampler_series_test.csv";
  sampler.write_series_csv(path.string());
  std::ifstream in(path);
  std::string first;
  ASSERT_TRUE(std::getline(in, first));
  EXPECT_EQ(first, header);
  std::filesystem::remove(path);
  EXPECT_THROW(sampler.write_series_csv((path / "nope" / "x.csv").string()),
               std::runtime_error);
}

}  // namespace
}  // namespace auric::obs
