#include <filesystem>
#include <fstream>
#include <functional>

#include <gtest/gtest.h>

#include "io/kpi_export.h"
#include "ml/dataset_io.h"

namespace auric {
namespace {

std::string temp_path(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() / "auric_export_io";
  std::filesystem::create_directories(dir);
  return (dir / tag).string();
}

std::string thrown_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

TEST(KpiExport, RoundTripsBitIdentically) {
  const std::string path = temp_path("kpi_roundtrip.csv");
  const std::vector<double> scores = {1.0, 0.0, 0.123456789012345678, 0x1.fffffffffffffp-1};
  io::save_kpi_scores(path, scores);
  const std::vector<double> loaded = io::load_kpi_scores(path);
  ASSERT_EQ(loaded.size(), scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    EXPECT_EQ(loaded[i], scores[i]) << i;  // exact, not approximate
  }
}

TEST(KpiExport, RejectsDuplicateCarrierWithFileAndLine) {
  const std::string path = temp_path("kpi_dup.csv");
  std::ofstream(path) << "carrier,quality\n0,0.5\n0,0.6\n";
  const std::string msg = thrown_message([&] { (void)io::load_kpi_scores(path); });
  EXPECT_NE(msg.find("kpi_dup.csv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicate carrier"), std::string::npos) << msg;
}

TEST(KpiExport, RejectsSparseCarrierIds) {
  const std::string path = temp_path("kpi_sparse.csv");
  std::ofstream(path) << "carrier,quality\n0,0.5\n2,0.6\n";
  const std::string msg = thrown_message([&] { (void)io::load_kpi_scores(path); });
  EXPECT_NE(msg.find("outside dense range"), std::string::npos) << msg;
}

TEST(KpiExport, RejectsOutOfRangeQualityIncludingNan) {
  const std::string bad = temp_path("kpi_range.csv");
  std::ofstream(bad) << "carrier,quality\n0,1.5\n";
  EXPECT_NE(thrown_message([&] { (void)io::load_kpi_scores(bad); }).find("outside [0, 1]"),
            std::string::npos);
  const std::string nan = temp_path("kpi_nan.csv");
  std::ofstream(nan) << "carrier,quality\n0,nan\n";
  const std::string msg = thrown_message([&] { (void)io::load_kpi_scores(nan); });
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

ml::CategoricalDataset sample_dataset() {
  ml::CategoricalDataset data;
  data.column_names = {"band", "morphology"};
  data.cardinality = {3, 2};
  data.columns = {{0, 1, 2, 0}, {1, 0, 1, 1}};
  data.labels = {0, 1, 0, 2};
  data.class_values = {4, 9, 17};
  return data;
}

TEST(DatasetIo, RoundTripsExactly) {
  const std::string stem = temp_path("ds_roundtrip");
  const ml::CategoricalDataset saved = sample_dataset();
  ml::save_dataset(stem, saved);
  const ml::CategoricalDataset loaded = ml::load_dataset(stem);
  EXPECT_EQ(loaded.column_names, saved.column_names);
  EXPECT_EQ(loaded.cardinality, saved.cardinality);
  EXPECT_EQ(loaded.columns, saved.columns);
  EXPECT_EQ(loaded.labels, saved.labels);
  EXPECT_EQ(loaded.class_values, saved.class_values);
  loaded.check();  // must still be internally consistent
}

TEST(DatasetIo, RejectsLabelColumnNameCollision) {
  ml::CategoricalDataset data = sample_dataset();
  data.column_names[0] = "label";
  EXPECT_THROW(ml::save_dataset(temp_path("ds_collision"), data), std::invalid_argument);
}

TEST(DatasetIo, OutOfRangeCodeNamesFileAndLine) {
  const std::string stem = temp_path("ds_badcode");
  ml::save_dataset(stem, sample_dataset());
  // Corrupt one attribute code beyond its cardinality (band has 3 values).
  std::ofstream(stem + ".csv") << "band,morphology,label\n0,1,0\n7,0,1\n";
  const std::string msg = thrown_message([&] { (void)ml::load_dataset(stem); });
  EXPECT_NE(msg.find("ds_badcode.csv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
}

TEST(DatasetIo, OutOfRangeLabelNamesFileAndLine) {
  const std::string stem = temp_path("ds_badlabel");
  ml::save_dataset(stem, sample_dataset());
  std::ofstream(stem + ".csv") << "band,morphology,label\n0,1,3\n";
  const std::string msg = thrown_message([&] { (void)ml::load_dataset(stem); });
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(DatasetIo, UnknownMetaKindNamesFileAndLine) {
  const std::string stem = temp_path("ds_badmeta");
  ml::save_dataset(stem, sample_dataset());
  std::ofstream(stem + "_meta.csv") << "kind,index,name,value\nwidget,0,x,1\n";
  const std::string msg = thrown_message([&] { (void)ml::load_dataset(stem); });
  EXPECT_NE(msg.find("ds_badmeta_meta.csv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown kind"), std::string::npos) << msg;
}

TEST(DatasetIo, DuplicateMetaIndexRejected) {
  const std::string stem = temp_path("ds_dupmeta");
  ml::save_dataset(stem, sample_dataset());
  std::ofstream(stem + "_meta.csv")
      << "kind,index,name,value\ncolumn,0,a,2\ncolumn,0,b,2\nclass,0,,1\n";
  const std::string msg = thrown_message([&] { (void)ml::load_dataset(stem); });
  EXPECT_NE(msg.find("duplicate column index"), std::string::npos) << msg;
}

}  // namespace
}  // namespace auric
