#include "smartlaunch/replay.h"

#include <set>

#include <gtest/gtest.h>

#include "config/ground_truth.h"
#include "test_helpers.h"

namespace auric::smartlaunch {
namespace {

struct Fixture {
  netsim::Topology topo = test::small_generated_topology(13, 2, 12);
  netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  config::ParamCatalog catalog = config::ParamCatalog::standard();
  config::GroundTruthModel ground_truth{topo, schema, catalog};
  config::ConfigAssignment assignment = ground_truth.assign();

  ReplayOptions options() const {
    ReplayOptions o;
    o.days = 14;
    o.launches_per_day = 5;
    o.relearn_every_days = 7;
    return o;
  }
};

TEST(OperationReplay, CountersAreConsistent) {
  Fixture f;
  OperationReplay replay(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment,
                         f.options());
  const ReplayReport report = replay.run();
  EXPECT_EQ(report.totals.launches, 70u);
  EXPECT_EQ(report.weeks.size(), 2u);
  std::size_t weekly_launches = 0;
  std::size_t weekly_flagged = 0;
  for (const WeeklySummary& week : report.weeks) {
    weekly_launches += week.launches;
    weekly_flagged += week.change_recommended;
    EXPECT_GE(week.mean_launched_kpi, 0.0);
    EXPECT_LE(week.mean_launched_kpi, 1.0);
  }
  EXPECT_EQ(weekly_launches, report.totals.launches);
  EXPECT_EQ(weekly_flagged, report.totals.change_recommended);
  EXPECT_EQ(report.totals.implemented + report.totals.fallout_unlocked +
                report.totals.fallout_timeout,
            report.totals.change_recommended);
  EXPECT_EQ(report.engine_relearns, 2);  // day 0 and day 7
}

TEST(OperationReplay, LaunchedCarriersLandNearIntent) {
  Fixture f;
  OperationReplay replay(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment,
                         f.options());
  const ReplayReport report = replay.run();
  // Launch configs are vendor values (mostly intent) plus Auric pushes; the
  // launched cohort must sit well above the pre-existing noise floor.
  for (const WeeklySummary& week : report.weeks) {
    EXPECT_GT(week.mean_launched_kpi, 0.9);
  }
  EXPECT_GE(report.final_network_kpi + 1e-9, report.initial_network_kpi * 0.98);
}

TEST(OperationReplay, StateEvolvesOnlyOnLaunchedCarriers) {
  Fixture f;
  ReplayOptions options = f.options();
  options.days = 1;
  options.launches_per_day = 3;  // exactly three carriers touched
  OperationReplay replay(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  replay.run();
  const config::ConfigAssignment& evolved = replay.network_state();
  // Count carriers whose singular configuration changed.
  std::set<netsim::CarrierId> touched;
  for (std::size_t si = 0; si < evolved.singular.size(); ++si) {
    for (std::size_t c = 0; c < evolved.singular[si].value.size(); ++c) {
      if (evolved.singular[si].value[c] != f.assignment.singular[si].value[c]) {
        touched.insert(static_cast<netsim::CarrierId>(c));
      }
    }
  }
  EXPECT_LE(touched.size(), 3u);
}

TEST(OperationReplay, DeterministicInSeed) {
  Fixture f;
  OperationReplay a(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, f.options());
  OperationReplay b(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, f.options());
  const ReplayReport ra = a.run();
  const ReplayReport rb = b.run();
  EXPECT_EQ(ra.totals.change_recommended, rb.totals.change_recommended);
  EXPECT_EQ(ra.totals.parameters_changed, rb.totals.parameters_changed);
  EXPECT_DOUBLE_EQ(ra.final_network_kpi, rb.final_network_kpi);
}

}  // namespace
}  // namespace auric::smartlaunch
