#include "smartlaunch/replay.h"

#include <filesystem>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "config/ground_truth.h"
#include "core/model_watch.h"
#include "test_helpers.h"
#include "util/drain.h"
#include "util/parallel.h"

namespace auric::smartlaunch {
namespace {

struct Fixture {
  netsim::Topology topo = test::small_generated_topology(13, 2, 12);
  netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  config::ParamCatalog catalog = config::ParamCatalog::standard();
  config::GroundTruthModel ground_truth{topo, schema, catalog};
  config::ConfigAssignment assignment = ground_truth.assign();

  ReplayOptions options() const {
    ReplayOptions o;
    o.days = 14;
    o.launches_per_day = 5;
    o.relearn_every_days = 7;
    return o;
  }
};

TEST(OperationReplay, CountersAreConsistent) {
  Fixture f;
  OperationReplay replay(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment,
                         f.options());
  const ReplayReport report = replay.run();
  EXPECT_EQ(report.totals.launches, 70u);
  EXPECT_EQ(report.weeks.size(), 2u);
  std::size_t weekly_launches = 0;
  std::size_t weekly_flagged = 0;
  for (const WeeklySummary& week : report.weeks) {
    weekly_launches += week.launches;
    weekly_flagged += week.change_recommended;
    EXPECT_GE(week.mean_launched_kpi, 0.0);
    EXPECT_LE(week.mean_launched_kpi, 1.0);
  }
  EXPECT_EQ(weekly_launches, report.totals.launches);
  EXPECT_EQ(weekly_flagged, report.totals.change_recommended);
  EXPECT_EQ(report.totals.implemented + report.totals.fallout_unlocked +
                report.totals.fallout_timeout,
            report.totals.change_recommended);
  EXPECT_EQ(report.engine_relearns, 2);  // day 0 and day 7
}

TEST(OperationReplay, LaunchedCarriersLandNearIntent) {
  Fixture f;
  OperationReplay replay(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment,
                         f.options());
  const ReplayReport report = replay.run();
  // Launch configs are vendor values (mostly intent) plus Auric pushes; the
  // launched cohort must sit well above the pre-existing noise floor.
  for (const WeeklySummary& week : report.weeks) {
    EXPECT_GT(week.mean_launched_kpi, 0.9);
  }
  EXPECT_GE(report.final_network_kpi + 1e-9, report.initial_network_kpi * 0.98);
}

TEST(OperationReplay, StateEvolvesOnlyOnLaunchedCarriers) {
  Fixture f;
  ReplayOptions options = f.options();
  options.days = 1;
  options.launches_per_day = 3;  // exactly three carriers touched
  OperationReplay replay(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  replay.run();
  const config::ConfigAssignment& evolved = replay.network_state();
  // Count carriers whose singular configuration changed.
  std::set<netsim::CarrierId> touched;
  for (std::size_t si = 0; si < evolved.singular.size(); ++si) {
    for (std::size_t c = 0; c < evolved.singular[si].value.size(); ++c) {
      if (evolved.singular[si].value[c] != f.assignment.singular[si].value[c]) {
        touched.insert(static_cast<netsim::CarrierId>(c));
      }
    }
  }
  EXPECT_LE(touched.size(), 3u);
}

void expect_reports_identical(const ReplayReport& a, const ReplayReport& b) {
  EXPECT_EQ(a.totals.launches, b.totals.launches);
  EXPECT_EQ(a.totals.change_recommended, b.totals.change_recommended);
  EXPECT_EQ(a.totals.implemented, b.totals.implemented);
  EXPECT_EQ(a.totals.fallout_unlocked, b.totals.fallout_unlocked);
  EXPECT_EQ(a.totals.fallout_timeout, b.totals.fallout_timeout);
  EXPECT_EQ(a.totals.parameters_changed, b.totals.parameters_changed);
  EXPECT_EQ(a.robust.recovered, b.robust.recovered);
  EXPECT_EQ(a.robust.chunked, b.robust.chunked);
  EXPECT_EQ(a.robust.queued_degraded, b.robust.queued_degraded);
  EXPECT_EQ(a.robust.drained, b.robust.drained);
  EXPECT_EQ(a.robust.still_queued, b.robust.still_queued);
  EXPECT_EQ(a.robust.aborted_unlocked, b.robust.aborted_unlocked);
  EXPECT_EQ(a.robust.fallout_terminal, b.robust.fallout_terminal);
  EXPECT_EQ(a.robust.retries, b.robust.retries);
  EXPECT_EQ(a.robust.breaker_trips, b.robust.breaker_trips);
  EXPECT_EQ(a.engine_relearns, b.engine_relearns);
  // Bit-identical, not approximately equal: the checkpoint stores doubles
  // as hexfloats precisely so a resumed run reproduces these exactly.
  EXPECT_EQ(a.initial_network_kpi, b.initial_network_kpi);
  EXPECT_EQ(a.final_network_kpi, b.final_network_kpi);
  ASSERT_EQ(a.weeks.size(), b.weeks.size());
  for (std::size_t w = 0; w < a.weeks.size(); ++w) {
    EXPECT_EQ(a.weeks[w].week, b.weeks[w].week) << w;
    EXPECT_EQ(a.weeks[w].launches, b.weeks[w].launches) << w;
    EXPECT_EQ(a.weeks[w].change_recommended, b.weeks[w].change_recommended) << w;
    EXPECT_EQ(a.weeks[w].implemented, b.weeks[w].implemented) << w;
    EXPECT_EQ(a.weeks[w].fallouts, b.weeks[w].fallouts) << w;
    EXPECT_EQ(a.weeks[w].parameters_changed, b.weeks[w].parameters_changed) << w;
    EXPECT_EQ(a.weeks[w].mean_launched_kpi, b.weeks[w].mean_launched_kpi) << w;
  }
}

TEST(OperationReplay, KilledAndResumedRunMatchesUninterruptedBitForBit) {
  Fixture f;
  ReplayOptions options = f.options();
  options.robust = true;
  options.ems.flaky_timeout_prob = 0.15;
  options.ems.faults.burst_every = 30;
  options.ems.faults.burst_length = 3;
  options.ems.faults.burst_timeout_prob = 1.0;

  // Baseline: the full window in one process, no persistence.
  OperationReplay uninterrupted(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment,
                                options);
  const ReplayReport baseline = uninterrupted.run();

  const std::string dir =
      (std::filesystem::temp_directory_path() / "auric_replay_resume").string();
  std::filesystem::remove_all(dir);
  options.state_dir = dir;

  // "Kill" the replay mid-week, mid-day (launch 33 of 70, not a boundary).
  options.stop_after_launches = 33;
  OperationReplay killed(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  const ReplayReport partial = killed.run();
  EXPECT_EQ(partial.totals.launches, 33u);

  // A fresh process resumes from the checkpoint and finishes the window.
  options.stop_after_launches = 0;
  options.resume = true;
  OperationReplay resumed(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  const ReplayReport report = resumed.run();

  expect_reports_identical(report, baseline);
  // The evolved network snapshots agree slot for slot.
  const config::ConfigAssignment& a = uninterrupted.network_state();
  const config::ConfigAssignment& b = resumed.network_state();
  for (std::size_t si = 0; si < a.singular.size(); ++si) {
    EXPECT_EQ(a.singular[si].value, b.singular[si].value) << si;
  }
  for (std::size_t pi = 0; pi < a.pairwise.size(); ++pi) {
    EXPECT_EQ(a.pairwise[pi].value, b.pairwise[pi].value) << pi;
  }
  std::filesystem::remove_all(dir);
}

TEST(OperationReplay, ResumeAtDayBoundaryReproducesRelearn) {
  Fixture f;
  ReplayOptions options = f.options();
  options.robust = true;

  OperationReplay uninterrupted(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment,
                                options);
  const ReplayReport baseline = uninterrupted.run();

  const std::string dir =
      (std::filesystem::temp_directory_path() / "auric_replay_resume_day").string();
  std::filesystem::remove_all(dir);
  options.state_dir = dir;
  // Stop exactly at the end of day 7's predecessor: launch 35 = 7 full days,
  // so the resume must re-run the day-7 engine re-learn deterministically.
  options.stop_after_launches = 35;
  OperationReplay killed(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  killed.run();

  options.stop_after_launches = 0;
  options.resume = true;
  OperationReplay resumed(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  const ReplayReport report = resumed.run();
  expect_reports_identical(report, baseline);
  std::filesystem::remove_all(dir);
}

TEST(OperationReplay, CheckpointingDoesNotPerturbTheRun) {
  Fixture f;
  ReplayOptions options = f.options();
  options.robust = true;
  OperationReplay plain(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  const ReplayReport a = plain.run();

  const std::string dir =
      (std::filesystem::temp_directory_path() / "auric_replay_persist").string();
  std::filesystem::remove_all(dir);
  options.state_dir = dir;
  OperationReplay persisted(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment,
                            options);
  const ReplayReport b = persisted.run();
  expect_reports_identical(a, b);
  std::filesystem::remove_all(dir);
}

TEST(OperationReplay, ModelWatchIsOutputNeutralSerialAndSharded) {
  // The watch only writes metrics: the report must be bit-identical with it
  // on or off, serial or sharded — the §17 determinism contract.
  Fixture f;
  ReplayOptions options = f.options();
  options.robust = true;
  options.ems.flaky_timeout_prob = 0.0;

  OperationReplay watched(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  ASSERT_NE(watched.model_watch(), nullptr);
  const ReplayReport a = watched.run();

  options.model_watch = false;
  OperationReplay bare(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  EXPECT_EQ(bare.model_watch(), nullptr);
  expect_reports_identical(a, bare.run());

  options.model_watch = true;
  options.shards = 3;
  OperationReplay sharded(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  expect_reports_identical(a, sharded.run());

  // The watch saw the whole window: one drift day per replay day, and a
  // /modelz document carrying the per-parameter series.
  const core::ModelWatch& watch = *watched.model_watch();
  EXPECT_EQ(watch.days_rolled(), options.days);
  const std::string json = watch.modelz_json();
  EXPECT_NE(json.find("\"params\":["), std::string::npos);
  EXPECT_NE(json.find("\"gate_accepted\":"), std::string::npos);
}

TEST(OperationReplay, WeeklySummariesInvariantInShardCount) {
  // With fault injection off, the only randomness left is stateless
  // per-carrier hashing, so the weekly summaries (and the evolved network)
  // must not depend on how carriers are partitioned across EMS shards.
  Fixture f;
  ReplayOptions options = f.options();
  options.robust = true;
  options.ems.flaky_timeout_prob = 0.0;

  OperationReplay serial(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  const ReplayReport base = serial.run();

  options.shards = 3;
  OperationReplay parallel(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment,
                           options);
  const ReplayReport sharded = parallel.run();

  expect_reports_identical(base, sharded);
  const config::ConfigAssignment& a = serial.network_state();
  const config::ConfigAssignment& b = parallel.network_state();
  for (std::size_t si = 0; si < a.singular.size(); ++si) {
    EXPECT_EQ(a.singular[si].value, b.singular[si].value) << si;
  }
  for (std::size_t pi = 0; pi < a.pairwise.size(); ++pi) {
    EXPECT_EQ(a.pairwise[pi].value, b.pairwise[pi].value) << pi;
  }
}

TEST(OperationReplay, ShardedRunIsDeterministic) {
  // Fault streams are shard-local, so a fault-enabled sharded run is not
  // comparable across shard counts — but for a fixed N it must reproduce
  // exactly, regardless of how the worker pool schedules the shards.
  Fixture f;
  ReplayOptions options = f.options();
  options.robust = true;
  options.shards = 4;
  options.ems.flaky_timeout_prob = 0.15;
  options.ems.faults.burst_every = 30;
  options.ems.faults.burst_length = 3;
  options.ems.faults.burst_timeout_prob = 1.0;
  OperationReplay a(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  OperationReplay b(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  expect_reports_identical(a.run(), b.run());
}

TEST(OperationReplay, ShardedRunMatchesUnderForcedThreadPool) {
  // The merge is ordered on the main thread, so the report must not depend
  // on whether shard tasks ran inline (1-core hosts) or on real pool
  // workers. Forcing the pool to four threads exercises the genuinely
  // concurrent path on any host (and under TSan in CI).
  Fixture f;
  ReplayOptions options = f.options();
  options.robust = true;
  options.shards = 4;
  options.ems.flaky_timeout_prob = 0.15;

  OperationReplay inline_run(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment,
                             options);
  const ReplayReport base = inline_run.run();

  util::set_worker_count(4);
  util::TaskPool::shared().reserve(4);
  OperationReplay threaded_run(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment,
                               options);
  const ReplayReport threaded = threaded_run.run();
  util::set_worker_count(0);

  expect_reports_identical(base, threaded);
}

TEST(OperationReplay, ShardedKilledAndResumedRunMatchesBitForBit) {
  Fixture f;
  ReplayOptions options = f.options();
  options.robust = true;
  options.shards = 4;
  options.ems.flaky_timeout_prob = 0.15;
  options.ems.faults.burst_every = 30;
  options.ems.faults.burst_length = 3;
  options.ems.faults.burst_timeout_prob = 1.0;

  OperationReplay uninterrupted(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment,
                                options);
  const ReplayReport baseline = uninterrupted.run();

  const std::string dir =
      (std::filesystem::temp_directory_path() / "auric_replay_shard_resume").string();
  std::filesystem::remove_all(dir);
  options.state_dir = dir;
  // Sharded checkpoints are day-granular: asking to stop after launch 33
  // rounds up to the end of that day (35 = 7 full days of 5).
  options.stop_after_launches = 33;
  OperationReplay killed(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  const ReplayReport partial = killed.run();
  EXPECT_EQ(partial.totals.launches, 35u);

  options.stop_after_launches = 0;
  options.resume = true;
  OperationReplay resumed(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  expect_reports_identical(resumed.run(), baseline);

  const config::ConfigAssignment& a = uninterrupted.network_state();
  const config::ConfigAssignment& b = resumed.network_state();
  for (std::size_t si = 0; si < a.singular.size(); ++si) {
    EXPECT_EQ(a.singular[si].value, b.singular[si].value) << si;
  }
  std::filesystem::remove_all(dir);
}

TEST(OperationReplay, DrainedAndResumedRunMatchesUninterruptedBitForBit) {
  // SIGTERM path minus the signal: util::request_drain() sets the same flag
  // the handler does. The replay must finish the in-progress day, seal its
  // checkpoint, report drained, and --resume must converge bit-identically
  // with an uninterrupted window.
  Fixture f;
  ReplayOptions options = f.options();
  options.robust = true;
  options.ems.flaky_timeout_prob = 0.15;

  OperationReplay uninterrupted(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment,
                                options);
  const ReplayReport baseline = uninterrupted.run();
  EXPECT_FALSE(baseline.drained);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "auric_replay_drain").string();
  std::filesystem::remove_all(dir);
  options.state_dir = dir;

  // The flag is already up when the window starts: day 0 still runs to
  // completion (drain is day-granular), then the run stops.
  util::request_drain();
  OperationReplay killed(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  const ReplayReport partial = killed.run();
  util::reset_drain_flag();
  EXPECT_TRUE(partial.drained);
  EXPECT_EQ(partial.totals.launches, 5u);  // exactly the first day's batch

  options.resume = true;
  OperationReplay resumed(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  const ReplayReport report = resumed.run();
  EXPECT_FALSE(report.drained);
  expect_reports_identical(report, baseline);
  std::filesystem::remove_all(dir);
}

TEST(OperationReplay, ShardedDrainStopsAtTheSameDayBoundary) {
  Fixture f;
  ReplayOptions options = f.options();
  options.robust = true;
  options.shards = 3;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "auric_replay_drain_shard").string();
  std::filesystem::remove_all(dir);
  options.state_dir = dir;

  util::request_drain();
  OperationReplay killed(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  const ReplayReport partial = killed.run();
  util::reset_drain_flag();
  EXPECT_TRUE(partial.drained);
  EXPECT_EQ(partial.totals.launches, 5u);

  options.resume = true;
  OperationReplay resumed(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  const ReplayReport full = resumed.run();
  EXPECT_EQ(full.totals.launches, 70u);
  EXPECT_FALSE(full.drained);
  std::filesystem::remove_all(dir);
}

TEST(OperationReplay, ResumeRejectsShardCountMismatch) {
  // Per-shard fault-stream positions cannot be re-partitioned, so resuming
  // a checkpoint under a different shard count must fail loudly instead of
  // silently diverging.
  Fixture f;
  ReplayOptions options = f.options();
  options.robust = true;
  options.shards = 4;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "auric_replay_shard_mismatch").string();
  std::filesystem::remove_all(dir);
  options.state_dir = dir;
  options.stop_after_launches = 10;
  OperationReplay killed(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  killed.run();

  options.stop_after_launches = 0;
  options.resume = true;
  options.shards = 1;
  OperationReplay wrong(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, options);
  EXPECT_THROW(wrong.run(), std::invalid_argument);
  std::filesystem::remove_all(dir);
}

TEST(OperationReplay, DeterministicInSeed) {
  Fixture f;
  OperationReplay a(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, f.options());
  OperationReplay b(f.topo, f.schema, f.catalog, f.ground_truth, f.assignment, f.options());
  const ReplayReport ra = a.run();
  const ReplayReport rb = b.run();
  EXPECT_EQ(ra.totals.change_recommended, rb.totals.change_recommended);
  EXPECT_EQ(ra.totals.parameters_changed, rb.totals.parameters_changed);
  EXPECT_DOUBLE_EQ(ra.final_network_kpi, rb.final_network_kpi);
}

}  // namespace
}  // namespace auric::smartlaunch
