#include "config/ground_truth.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace auric::config {
namespace {

struct Fixture {
  netsim::Topology topo = test::small_generated_topology();
  netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  ParamCatalog catalog = ParamCatalog::standard();
};

TEST(GroundTruth, AssignmentIsDeterministic) {
  Fixture f;
  const GroundTruthModel model_a(f.topo, f.schema, f.catalog);
  const GroundTruthModel model_b(f.topo, f.schema, f.catalog);
  const ConfigAssignment a = model_a.assign();
  const ConfigAssignment b = model_b.assign();
  ASSERT_EQ(a.singular.size(), b.singular.size());
  for (std::size_t si = 0; si < a.singular.size(); ++si) {
    EXPECT_EQ(a.singular[si].value, b.singular[si].value);
    EXPECT_EQ(a.singular[si].intended, b.singular[si].intended);
  }
  for (std::size_t pi = 0; pi < a.pairwise.size(); ++pi) {
    EXPECT_EQ(a.pairwise[pi].value, b.pairwise[pi].value);
  }
}

TEST(GroundTruth, SeedChangesAssignment) {
  Fixture f;
  GroundTruthParams p1;
  GroundTruthParams p2;
  p2.seed = p1.seed + 1;
  const ConfigAssignment a = GroundTruthModel(f.topo, f.schema, f.catalog, p1).assign();
  const ConfigAssignment b = GroundTruthModel(f.topo, f.schema, f.catalog, p2).assign();
  std::size_t diffs = 0;
  for (std::size_t si = 0; si < a.singular.size(); ++si) {
    for (std::size_t c = 0; c < a.singular[si].value.size(); ++c) {
      diffs += a.singular[si].value[c] != b.singular[si].value[c] ? 1 : 0;
    }
  }
  EXPECT_GT(diffs, 0u);
}

TEST(GroundTruth, ValuesStayInDomainsAndCausesAreConsistent) {
  Fixture f;
  const GroundTruthModel model(f.topo, f.schema, f.catalog);
  const ConfigAssignment assignment = model.assign();
  for (std::size_t si = 0; si < assignment.singular.size(); ++si) {
    const ParamDef& def = f.catalog.at(f.catalog.singular_ids()[si]);
    const ParamColumn& col = assignment.singular[si];
    for (std::size_t c = 0; c < col.value.size(); ++c) {
      if (col.value[c] == kUnset) {
        EXPECT_EQ(col.intended[c], kUnset);
        continue;
      }
      EXPECT_TRUE(def.domain.contains(col.value[c]));
      EXPECT_TRUE(def.domain.contains(col.intended[c]));
      if (col.value[c] != col.intended[c]) {
        // Only trials, stale leftovers and noise may diverge from intent.
        EXPECT_TRUE(col.cause[c] == Cause::kTrial || col.cause[c] == Cause::kStaleLeftover ||
                    col.cause[c] == Cause::kNoise)
            << cause_name(col.cause[c]);
      } else {
        EXPECT_NE(col.cause[c], Cause::kStaleLeftover);
        EXPECT_NE(col.cause[c], Cause::kNoise);
      }
    }
  }
}

TEST(GroundTruth, FullActivationParamsAreAlwaysConfigured) {
  Fixture f;
  const GroundTruthModel model(f.topo, f.schema, f.catalog);
  const ConfigAssignment assignment = model.assign();
  for (std::size_t si = 0; si < assignment.singular.size(); ++si) {
    const ParamDef& def = f.catalog.at(f.catalog.singular_ids()[si]);
    if (def.activation < 1.0) continue;
    EXPECT_EQ(assignment.singular[si].configured_count(), f.topo.carrier_count()) << def.name;
  }
}

TEST(GroundTruth, PartialActivationLeavesSlotsUnset) {
  Fixture f;
  const GroundTruthModel model(f.topo, f.schema, f.catalog);
  const ConfigAssignment assignment = model.assign();
  bool found_partial = false;
  for (std::size_t si = 0; si < assignment.singular.size(); ++si) {
    const ParamDef& def = f.catalog.at(f.catalog.singular_ids()[si]);
    if (def.activation <= 0.7) {
      const std::size_t configured = assignment.singular[si].configured_count();
      EXPECT_LT(configured, f.topo.carrier_count()) << def.name;
      EXPECT_GT(configured, 0u) << def.name;
      found_partial = true;
    }
  }
  EXPECT_TRUE(found_partial);
}

TEST(GroundTruth, PairwiseRespectsRelationClass) {
  Fixture f;
  const GroundTruthModel model(f.topo, f.schema, f.catalog);
  const ConfigAssignment assignment = model.assign();
  for (std::size_t pi = 0; pi < assignment.pairwise.size(); ++pi) {
    const ParamDef& def = f.catalog.at(f.catalog.pairwise_ids()[pi]);
    const ParamColumn& col = assignment.pairwise[pi];
    for (std::size_t e = 0; e < col.value.size(); ++e) {
      if (col.value[e] == kUnset) continue;
      const auto& edge = f.topo.edges[e];
      const bool intra = f.topo.carrier(edge.from).frequency_mhz ==
                         f.topo.carrier(edge.to).frequency_mhz;
      EXPECT_EQ(intra, def.relation == RelationClass::kIntraFrequency) << def.name;
    }
  }
}

TEST(GroundTruth, PerFrequencyRelationScopeUsesOneRepresentativeNeighbor) {
  Fixture f;
  const GroundTruthModel model(f.topo, f.schema, f.catalog);
  const ConfigAssignment assignment = model.assign();
  for (std::size_t pi = 0; pi < assignment.pairwise.size(); ++pi) {
    const ParamDef& def = f.catalog.at(f.catalog.pairwise_ids()[pi]);
    if (def.scope != PairScope::kPerFrequencyRelation) continue;
    const ParamColumn& col = assignment.pairwise[pi];
    // Per (carrier, neighbor frequency): at most one configured edge.
    for (std::size_t c = 0; c < f.topo.carrier_count(); ++c) {
      std::set<int> seen_freqs;
      for (std::size_t e = f.topo.edge_offsets[c]; e < f.topo.edge_offsets[c + 1]; ++e) {
        if (col.value[e] == kUnset) continue;
        const int freq = f.topo.carrier(f.topo.edges[e].to).frequency_mhz;
        EXPECT_TRUE(seen_freqs.insert(freq).second)
            << def.name << " configured twice for the same frequency relation";
      }
    }
  }
}

TEST(GroundTruth, RulebookValueIsAttributePure) {
  // Two carriers with identical attributes must get identical rule-book
  // values regardless of where they sit.
  Fixture f;
  const GroundTruthModel model(f.topo, f.schema, f.catalog);
  const auto codes = f.schema.encode_all(f.topo);
  for (ParamId p : f.catalog.singular_ids()) {
    for (std::size_t i = 0; i + 1 < f.topo.carrier_count(); ++i) {
      const auto& a = f.topo.carriers[i];
      const auto& b = f.topo.carriers[i + 1];
      bool same = true;
      for (std::size_t attr = 0; attr < f.schema.attribute_count(); ++attr) {
        same &= codes[attr][i] == codes[attr][i + 1];
      }
      if (same) {
        EXPECT_EQ(model.rulebook_value(p, a), model.rulebook_value(p, b));
      }
    }
  }
}

TEST(GroundTruth, TrueDependentAttrsAreExposed) {
  Fixture f;
  const GroundTruthModel model(f.topo, f.schema, f.catalog);
  for (std::size_t p = 0; p < f.catalog.size(); ++p) {
    const auto& deps = model.true_dependent_attrs(static_cast<ParamId>(p));
    EXPECT_GE(deps.size(), 1u);
    EXPECT_LE(deps.size(), 3u);
    for (std::size_t attr : deps) EXPECT_LT(attr, f.schema.attribute_count());
  }
}

TEST(GroundTruth, NoiseRateControlsDivergence) {
  Fixture f;
  GroundTruthParams quiet;
  quiet.noise_rate = 0.0;
  quiet.stale_rate = 0.0;
  quiet.trial_param_prob = 0.0;
  const ConfigAssignment assignment =
      GroundTruthModel(f.topo, f.schema, f.catalog, quiet).assign();
  for (const ParamColumn& col : assignment.singular) {
    for (std::size_t c = 0; c < col.value.size(); ++c) {
      EXPECT_EQ(col.value[c], col.intended[c]);
    }
  }
}

TEST(CauseNames, AllDistinct) {
  EXPECT_STREQ(cause_name(Cause::kLocalPocket), "local-pocket");
  EXPECT_STREQ(cause_name(Cause::kHiddenTerrain), "hidden-terrain");
  EXPECT_STREQ(cause_name(Cause::kStaleLeftover), "stale-leftover");
}

}  // namespace
}  // namespace auric::config
