#include "netsim/attributes.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace auric::netsim {
namespace {

TEST(AttributeSchema, HasTheFourteenTable1Attributes) {
  const Topology topo = test::tiny_topology();
  const AttributeSchema schema = AttributeSchema::standard(topo);
  EXPECT_EQ(schema.attribute_count(), 14u);
  // Spot-check the Table 1 names.
  EXPECT_NO_THROW(schema.index_of("carrier_frequency"));
  EXPECT_NO_THROW(schema.index_of("morphology"));
  EXPECT_NO_THROW(schema.index_of("market"));
  EXPECT_NO_THROW(schema.index_of("tracking_area_code"));
  EXPECT_NO_THROW(schema.index_of("software_version"));
  EXPECT_NO_THROW(schema.index_of("neighbors_same_enodeb"));
  EXPECT_THROW(schema.index_of("terrain"), std::out_of_range);  // hidden by design
}

TEST(AttributeSchema, EncodeMatchesEncodeAll) {
  const Topology topo = test::small_generated_topology();
  const AttributeSchema schema = AttributeSchema::standard(topo);
  const auto all = schema.encode_all(topo);
  ASSERT_EQ(all.size(), schema.attribute_count());
  for (const Carrier& c : topo.carriers) {
    const auto codes = schema.encode(c);
    for (std::size_t a = 0; a < codes.size(); ++a) {
      EXPECT_EQ(codes[a], all[a][static_cast<std::size_t>(c.id)]);
    }
  }
}

TEST(AttributeSchema, CodesAreWithinCardinality) {
  const Topology topo = test::small_generated_topology();
  const AttributeSchema schema = AttributeSchema::standard(topo);
  const auto all = schema.encode_all(topo);
  for (std::size_t a = 0; a < schema.attribute_count(); ++a) {
    EXPECT_GE(schema.cardinality(a), 1u);
    for (AttrCode code : all[a]) {
      ASSERT_GE(code, 0);
      ASSERT_LT(static_cast<std::size_t>(code), schema.cardinality(a));
    }
  }
}

TEST(AttributeSchema, OneHotWidthIsSumOfCardinalities) {
  const Topology topo = test::small_generated_topology();
  const AttributeSchema schema = AttributeSchema::standard(topo);
  std::size_t sum = 0;
  for (std::size_t a = 0; a < schema.attribute_count(); ++a) sum += schema.cardinality(a);
  EXPECT_EQ(schema.one_hot_width(), sum);
}

TEST(AttributeSchema, UnseenValueMapsToSentinel) {
  const Topology topo = test::tiny_topology();
  const AttributeSchema schema = AttributeSchema::standard(topo);
  Carrier alien = topo.carriers[0];
  alien.frequency_mhz = 2600;  // not present in the tiny fixture
  const auto codes = schema.encode(alien);
  EXPECT_EQ(codes[schema.index_of("carrier_frequency")], AttributeSchema::kUnseen);
  EXPECT_EQ(schema.value_label(schema.index_of("carrier_frequency"), AttributeSchema::kUnseen),
            "<unseen>");
}

TEST(AttributeSchema, ValueLabelsAreHumanReadable) {
  const Topology topo = test::tiny_topology();
  const AttributeSchema schema = AttributeSchema::standard(topo);
  const std::size_t freq = schema.index_of("carrier_frequency");
  const auto codes = schema.encode(topo.carriers[0]);
  EXPECT_EQ(schema.value_label(freq, codes[freq]), "700 MHz");
  const std::size_t market = schema.index_of("market");
  EXPECT_EQ(schema.value_label(market, codes[market]), "Market 1");
}

TEST(AttributeSchema, NeighborCountIsBucketed) {
  const Topology topo = test::small_generated_topology();
  const AttributeSchema schema = AttributeSchema::standard(topo);
  const std::size_t attr = schema.index_of("neighbors_same_enodeb");
  // All labels come from the fixed bucket set.
  for (std::size_t code = 0; code < schema.cardinality(attr); ++code) {
    const std::string label = schema.value_label(attr, static_cast<AttrCode>(code));
    EXPECT_TRUE(label == "4" || label == "6" || label == "8" || label == "10" || label == "12+")
        << label;
  }
}

TEST(AttributeSchema, SoftwareVersionLabels) {
  const Topology topo = test::small_generated_topology();
  const AttributeSchema schema = AttributeSchema::standard(topo);
  const std::size_t attr = schema.index_of("software_version");
  const std::string label = schema.value_label(attr, 0);
  EXPECT_EQ(label.substr(0, 3), "RAN");
  EXPECT_NE(label.find('Q'), std::string::npos);
}

}  // namespace
}  // namespace auric::netsim
