#include "eval/variability.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace auric::eval {
namespace {

TEST(Variability, CountsDistinctValuesOverallAndPerMarket) {
  const netsim::Topology topo = test::chain_topology();
  const config::ParamCatalog catalog = test::tiny_catalog();
  config::ConfigAssignment assignment = test::tiny_assignment(topo);
  assignment.singular[0].value[10] = 9;  // extra value only in market 1

  const auto variability = analyze_variability(topo, catalog, assignment);
  ASSERT_EQ(variability.size(), 2u);
  const ParamVariability& singular = variability[0];
  EXPECT_EQ(singular.param, 0);
  EXPECT_EQ(singular.distinct_overall, 3u);  // {3, 7, 9}
  ASSERT_EQ(singular.distinct_per_market.size(), 2u);
  EXPECT_EQ(singular.distinct_per_market[0], 2u);
  EXPECT_EQ(singular.distinct_per_market[1], 3u);
  EXPECT_EQ(singular.configured_values, topo.carrier_count());
}

TEST(Variability, PairwiseCountsConfiguredEdgesOnly) {
  const netsim::Topology topo = test::chain_topology();
  const config::ParamCatalog catalog = test::tiny_catalog();
  const config::ConfigAssignment assignment = test::tiny_assignment(topo);
  const auto variability = analyze_variability(topo, catalog, assignment);
  const ParamVariability& pairwise = variability[1];
  EXPECT_EQ(pairwise.distinct_overall, 1u);  // constant 2
  // Intra-frequency chain edges only: (m0: 4 links + m1: 2 links) x 2
  // frequencies x 2 directions = 24.
  EXPECT_EQ(pairwise.configured_values, 24u);
}

TEST(Variability, SkewnessSeesOneSidedTails) {
  const netsim::Topology topo = test::chain_topology(24, 2);
  const config::ParamCatalog catalog = test::tiny_catalog();
  config::ConfigAssignment assignment = test::tiny_assignment(topo);
  // Constant 3 with a couple of high outliers in market 0 -> right-skewed.
  auto& col = assignment.singular[0];
  for (std::size_t c = 0; c < col.value.size(); ++c) col.value[c] = 3;
  col.value[0] = 10;
  col.value[2] = 10;
  const auto variability = analyze_variability(topo, catalog, assignment);
  EXPECT_GT(variability[0].skewness, 1.0);
}

TEST(SummarizeSkewness, BucketsByBand) {
  std::vector<ParamVariability> variability(4);
  variability[0].skewness = 0.1;
  variability[1].skewness = -0.7;
  variability[2].skewness = 2.5;
  variability[3].skewness = -1.2;
  const SkewnessSummary summary = summarize_skewness(variability);
  EXPECT_EQ(summary.symmetric, 1);
  EXPECT_EQ(summary.moderate, 1);
  EXPECT_EQ(summary.high, 2);
}

}  // namespace
}  // namespace auric::eval
