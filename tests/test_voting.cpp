#include "core/voting.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace auric::core {
namespace {

// chain_topology(5, 3): 16 carriers; even ids are 700 MHz, odd are 1900 MHz;
// ids 10..15 belong to market 1. tiny_assignment labels by band: 3 on low
// band, 7 on mid band.
struct Fixture {
  netsim::Topology topo = test::chain_topology();
  config::ParamCatalog catalog = test::tiny_catalog();
  config::ConfigAssignment assignment = test::tiny_assignment(topo);
  netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  std::vector<std::vector<netsim::AttrCode>> codes = schema.encode_all(topo);
  ParamView view = build_param_view(topo, catalog, assignment, 0);
  std::vector<AttrRef> deps{{false, schema.index_of("carrier_frequency")}};

  void rebuild_view() { view = build_param_view(topo, catalog, assignment, 0); }
};

TEST(VotingModel, GroupsByDependentAttribute) {
  Fixture f;
  const VotingModel model(f.view, f.deps, f.codes);
  EXPECT_EQ(model.group_count(), 2u);  // 700 MHz and 1900 MHz groups
}

TEST(VotingModel, UnanimousGroupVotes) {
  Fixture f;
  const VotingModel model(f.view, f.deps, f.codes);
  const GroupKey key = model.key_for(0, netsim::kInvalidCarrier);
  const auto vote = model.vote(key, 0.75);
  ASSERT_TRUE(vote.has_value());
  EXPECT_EQ(f.view.labels.values[static_cast<std::size_t>(vote->label)], 3);
  EXPECT_EQ(vote->group_size, 8);
  EXPECT_DOUBLE_EQ(vote->support(), 1.0);
}

TEST(VotingModel, UnknownKeyAbstains) {
  Fixture f;
  const VotingModel model(f.view, f.deps, f.codes);
  GroupKey alien{42};
  EXPECT_FALSE(model.vote(alien, 0.5).has_value());
}

TEST(VotingModel, ThresholdGatesTheWinner) {
  Fixture f;
  for (netsim::CarrierId c : {0, 2, 4}) {
    f.assignment.singular[0].value[static_cast<std::size_t>(c)] = 9;
  }
  f.rebuild_view();
  const VotingModel model(f.view, f.deps, f.codes);
  const GroupKey key = model.key_for(0, netsim::kInvalidCarrier);
  const auto loose = model.vote(key, 0.60);  // 5/8 = 62.5%
  ASSERT_TRUE(loose.has_value());
  EXPECT_EQ(f.view.labels.values[static_cast<std::size_t>(loose->label)], 3);
  EXPECT_FALSE(model.vote(key, 0.75).has_value());
}

TEST(VotingModel, MarginSeparatesUnanimousFromContestedWins) {
  Fixture f;
  const VotingModel unanimous_model(f.view, f.deps, f.codes);
  const GroupKey key = unanimous_model.key_for(0, netsim::kInvalidCarrier);
  const auto unanimous = unanimous_model.vote(key, 0.75);
  ASSERT_TRUE(unanimous.has_value());
  EXPECT_EQ(unanimous->runner_up, 0);
  EXPECT_DOUBLE_EQ(unanimous->margin(), 1.0);

  // 5-vs-3 in the 700 MHz group: support 62.5%, margin (5-3)/8 = 25%.
  for (netsim::CarrierId c : {0, 2, 4}) {
    f.assignment.singular[0].value[static_cast<std::size_t>(c)] = 9;
  }
  f.rebuild_view();
  const VotingModel model(f.view, f.deps, f.codes);
  const auto contested = model.vote(model.key_for(0, netsim::kInvalidCarrier), 0.60);
  ASSERT_TRUE(contested.has_value());
  EXPECT_EQ(contested->count, 5);
  EXPECT_EQ(contested->runner_up, 3);
  EXPECT_DOUBLE_EQ(contested->margin(), 0.25);
  EXPECT_GT(contested->support(), contested->margin());
}

TEST(LocalVote, MarginReflectsTheRunnerUp) {
  Fixture f;
  f.assignment.singular[0].value[2] = 9;  // one deviant among the candidates
  f.rebuild_view();
  const VotingModel model(f.view, f.deps, f.codes);
  const GroupKey key = model.key_for(0, netsim::kInvalidCarrier);
  const std::vector<netsim::CarrierId> candidates{0, 2, 4};
  const auto vote = local_vote(f.view, f.deps, f.codes, key, candidates, -1, 0.60);
  ASSERT_TRUE(vote.has_value());
  EXPECT_EQ(vote->count, 2);
  EXPECT_EQ(vote->runner_up, 1);
  EXPECT_NEAR(vote->margin(), 1.0 / 3.0, 1e-9);

  // Weighted: the deviant's weight shrinks, and so does the runner-up count
  // after the weighted tally is re-expressed in voter units.
  std::vector<double> weights(f.topo.carrier_count(), 1.0);
  weights[2] = 0.1;
  const auto weighted = local_vote(f.view, f.deps, f.codes, key, candidates, -1, 0.60, weights);
  ASSERT_TRUE(weighted.has_value());
  EXPECT_LE(weighted->runner_up, vote->runner_up);
  EXPECT_GE(weighted->margin(), vote->margin());
}

TEST(VotingModel, LeaveOneOutExcludesOwnObservation) {
  Fixture f;
  f.assignment.singular[0].value[4] = 9;  // lone deviant in the 700 group
  f.rebuild_view();
  const VotingModel model(f.view, f.deps, f.codes);
  const GroupKey key = model.key_for(4, netsim::kInvalidCarrier);
  const ml::ClassLabel own = f.view.labels.code_of(9);
  const auto vote = model.vote_excluding(key, own, 0.75);
  ASSERT_TRUE(vote.has_value());
  EXPECT_EQ(f.view.labels.values[static_cast<std::size_t>(vote->label)], 3);
  EXPECT_EQ(vote->group_size, 7);
  EXPECT_DOUBLE_EQ(vote->support(), 1.0);
}

TEST(LocalVote, RestrictsToCandidates) {
  Fixture f;
  const VotingModel model(f.view, f.deps, f.codes);
  const GroupKey key = model.key_for(0, netsim::kInvalidCarrier);
  const std::vector<netsim::CarrierId> candidates{2};
  const auto vote = local_vote(f.view, f.deps, f.codes, key, candidates, -1, 0.75);
  ASSERT_TRUE(vote.has_value());
  EXPECT_EQ(vote->group_size, 1);
  const std::vector<netsim::CarrierId> wrong{1};  // 1900 MHz: no matching rows
  EXPECT_FALSE(local_vote(f.view, f.deps, f.codes, key, wrong, -1, 0.75).has_value());
}

TEST(LocalVote, ExcludeRowSkipsSelf) {
  Fixture f;
  const VotingModel model(f.view, f.deps, f.codes);
  const GroupKey key = model.key_for(0, netsim::kInvalidCarrier);
  const std::int64_t self_row = static_cast<std::int64_t>(f.view.rows_of(0)[0]);
  const std::vector<netsim::CarrierId> candidates{0, 2};
  const auto vote = local_vote(f.view, f.deps, f.codes, key, candidates, self_row, 0.75);
  ASSERT_TRUE(vote.has_value());
  EXPECT_EQ(vote->group_size, 1);  // only carrier 2 remains
}

TEST(LocalVote, CarrierWeightsShiftTheWinner) {
  Fixture f;
  f.assignment.singular[0].value[2] = 9;
  f.rebuild_view();
  const std::vector<netsim::CarrierId> candidates{0, 2, 4};
  const VotingModel model(f.view, f.deps, f.codes);
  const GroupKey key = model.key_for(0, netsim::kInvalidCarrier);
  // Unweighted: 2-vs-1 -> 66% < 75% -> abstain.
  EXPECT_FALSE(local_vote(f.view, f.deps, f.codes, key, candidates, -1, 0.75).has_value());
  // The deviating carrier's vote weighted down (poor KPI history): 3 wins.
  std::vector<double> weights(f.topo.carrier_count(), 1.0);
  weights[2] = 0.1;
  const auto vote = local_vote(f.view, f.deps, f.codes, key, candidates, -1, 0.75, weights);
  ASSERT_TRUE(vote.has_value());
  EXPECT_EQ(f.view.labels.values[static_cast<std::size_t>(vote->label)], 3);
}

TEST(BackoffVoting, FallsBackWhenQuorumFailsAtFullMatch) {
  Fixture f;
  std::vector<AttrRef> deps{{false, f.schema.index_of("carrier_frequency")},
                            {false, f.schema.index_of("market")}};
  // Carrier 10 (market 1, 700 MHz): the (freq, market) group has 3 members;
  // leave-one-out shrinks it under the quorum of 3, so level 1 (frequency
  // only) decides.
  const BackoffVoting backoff(f.view, deps, f.codes, /*levels=*/2, /*min_voters=*/3);
  const auto decision = backoff.vote_excluding(10, netsim::kInvalidCarrier,
                                               f.view.label[f.view.rows_of(10)[0]], 0.75);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->level, 1);
  EXPECT_EQ(f.view.labels.values[static_cast<std::size_t>(decision->vote.label)], 3);
  EXPECT_EQ(decision->vote.group_size, 7);
}

TEST(BackoffVoting, QuorumSendsThinGroupsToCoarserLevels) {
  Fixture f;
  std::vector<AttrRef> deps{{false, f.schema.index_of("carrier_frequency")},
                            {false, f.schema.index_of("market")}};
  const BackoffVoting backoff(f.view, deps, f.codes, 2, /*min_voters=*/4);
  const auto decision = backoff.vote(10, netsim::kInvalidCarrier, 0.75);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->level, 1);
  EXPECT_EQ(decision->vote.group_size, 8);
}

TEST(BackoffVoting, LevelZeroWinsWhenStrong) {
  Fixture f;
  const BackoffVoting backoff(f.view, f.deps, f.codes, 3, 1);
  const auto decision = backoff.vote(0, netsim::kInvalidCarrier, 0.75);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->level, 0);
  EXPECT_EQ(decision->vote.group_size, 8);
}

TEST(BackoffVoting, DepsAtShrinksByLevel) {
  Fixture f;
  std::vector<AttrRef> deps{{false, 0}, {false, 1}, {false, 2}};
  const BackoffVoting backoff(f.view, deps, f.codes, 3);
  EXPECT_EQ(backoff.level_count(), 3);
  EXPECT_EQ(backoff.deps_at(0).size(), 3u);
  EXPECT_EQ(backoff.deps_at(2).size(), 1u);
  EXPECT_THROW(BackoffVoting(f.view, deps, f.codes, 0), std::invalid_argument);
}

TEST(BackoffVoting, EmptyDepsVoteOverWholePopulation) {
  Fixture f;
  const BackoffVoting backoff(f.view, {}, f.codes, 3);
  EXPECT_EQ(backoff.level_count(), 1);
  // 8-vs-8 between values 3 and 7: no 75% winner.
  EXPECT_FALSE(backoff.vote(0, netsim::kInvalidCarrier, 0.75).has_value());
  EXPECT_TRUE(backoff.vote(0, netsim::kInvalidCarrier, 0.5).has_value());
}

TEST(BackoffVoting, LocalBackoffUsesCandidateRows) {
  Fixture f;
  std::vector<AttrRef> deps{{false, f.schema.index_of("carrier_frequency")},
                            {false, f.schema.index_of("market")}};
  const BackoffVoting backoff(f.view, deps, f.codes, 2, /*min_voters=*/2);
  // Neighborhood of carrier 4 (site 2, 700): carriers 5, 2, 6 -> matching
  // rows at level 0: carriers 2 and 6 (same freq AND market) = quorum 2.
  const auto decision = backoff.local(f.view, f.topo.neighborhood(4), 4,
                                      netsim::kInvalidCarrier, -1, 0.75);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->level, 0);
  EXPECT_EQ(decision->vote.group_size, 2);
}

}  // namespace
}  // namespace auric::core
