#include "io/inventory.h"

#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

#include <gtest/gtest.h>

#include "config/ground_truth.h"
#include "obs/metrics.h"
#include "test_helpers.h"
#include "util/csv_reader.h"

namespace auric {
namespace {

std::string temp_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() / ("auric_io_" + std::string(tag));
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(CsvParseLine, HandlesQuotingAndEscapes) {
  using util::parse_csv_line;
  EXPECT_EQ(parse_csv_line("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(parse_csv_line("\"a,b\",c"), (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(parse_csv_line("\"say \"\"hi\"\"\""), (std::vector<std::string>{"say \"hi\""}));
  EXPECT_EQ(parse_csv_line(""), (std::vector<std::string>{""}));
  EXPECT_EQ(parse_csv_line("x,"), (std::vector<std::string>{"x", ""}));
  EXPECT_THROW(parse_csv_line("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(parse_csv_line("mid\"quote"), std::invalid_argument);
}

TEST(CsvTable, ParsesHeaderAndTypedFields) {
  std::istringstream in("id,name,score\n1,alpha,2.5\n2,\"b,eta\",3\n");
  const util::CsvTable table = util::CsvTable::parse(in);
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.field(0, "name"), "alpha");
  EXPECT_EQ(table.field(1, "name"), "b,eta");
  EXPECT_EQ(table.field_int(1, "id"), 2);
  EXPECT_DOUBLE_EQ(table.field_double(0, "score"), 2.5);
  EXPECT_TRUE(table.has_column("score"));
  EXPECT_FALSE(table.has_column("missing"));
  EXPECT_THROW(table.field(0, "missing"), std::out_of_range);
  EXPECT_THROW(table.field_int(0, "name"), std::invalid_argument);
}

TEST(CsvTable, RejectsMalformedInput) {
  std::istringstream arity("a,b\n1\n");
  EXPECT_THROW(util::CsvTable::parse(arity), std::invalid_argument);
  std::istringstream empty("");
  EXPECT_THROW(util::CsvTable::parse(empty), std::invalid_argument);
  EXPECT_THROW(util::CsvTable::load("/nonexistent/file.csv"), std::runtime_error);
}

std::string thrown_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

TEST(CsvTable, ErrorsNameSourceAndLineNumber) {
  // Arity mismatch on the 4th file line (header + blank + good row + bad).
  std::istringstream arity("a,b\n\n1,2\n3\n");
  const std::string arity_msg =
      thrown_message([&] { util::CsvTable::parse(arity, "feed.csv"); });
  EXPECT_NE(arity_msg.find("feed.csv line 4"), std::string::npos) << arity_msg;

  std::istringstream ok("id,score\n1,2.5\n\nx,oops\n");
  const util::CsvTable table = util::CsvTable::parse(ok, "scores.csv");
  EXPECT_EQ(table.source(), "scores.csv");
  ASSERT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.line(0), 2u);
  EXPECT_EQ(table.line(1), 4u);  // the blank line is counted, not stored

  const std::string int_msg = thrown_message([&] { (void)table.field_int(1, "id"); });
  EXPECT_NE(int_msg.find("scores.csv line 4"), std::string::npos) << int_msg;
  EXPECT_NE(int_msg.find("column id"), std::string::npos) << int_msg;
  const std::string dbl_msg = thrown_message([&] { (void)table.field_double(1, "score"); });
  EXPECT_NE(dbl_msg.find("scores.csv line 4"), std::string::npos) << dbl_msg;
}

TEST(CsvTable, TornFinalLineParsesAsDataByDefault) {
  // Backward-compatible default: a final line without its newline is still
  // a row. Only opt-in loaders (checkpoint recovery) treat it as torn.
  std::istringstream in("carrier,applied\n3,17\n9,4");
  const util::CsvTable table = util::CsvTable::parse(in, "journal.csv");
  ASSERT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.field(1, "applied"), "4");
}

TEST(CsvTable, TornFinalLineDroppedWhenTolerated) {
  const std::uint64_t before =
      obs::MetricsRegistry::global().counter("auric_csv_torn_tail_dropped_total").value();
  // The final record lost its terminator mid-field (crash during append);
  // the tolerant parse drops it instead of failing the whole load -- even
  // when the torn bytes are not parseable CSV at all.
  const util::CsvParseOptions tolerant{.tolerate_torn_tail = true};
  std::istringstream torn("carrier,applied\n3,17\n9,\"unbal");
  const util::CsvTable table = util::CsvTable::parse(torn, "journal.csv", tolerant);
  ASSERT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.field(0, "carrier"), "3");
  EXPECT_EQ(
      obs::MetricsRegistry::global().counter("auric_csv_torn_tail_dropped_total").value(),
      before + 1);

  // A properly terminated file loses nothing under the same options.
  std::istringstream whole("carrier,applied\n3,17\n9,4\n");
  EXPECT_EQ(util::CsvTable::parse(whole, "journal.csv", tolerant).row_count(), 2u);

  // The header is exempt: without it nothing is loadable, so a torn header
  // still fails loudly rather than yielding a silently empty table.
  std::istringstream header_only("carrier,app");
  EXPECT_THROW(util::CsvTable::parse(header_only, "journal.csv", tolerant),
               std::invalid_argument);
}

TEST(CsvTable, TypedAccessorsRejectTrailingGarbage) {
  std::istringstream in("n,x\n12x,3.5oops\n");
  const util::CsvTable table = util::CsvTable::parse(in, "t.csv");
  EXPECT_THROW((void)table.field_int(0, "n"), std::invalid_argument);
  EXPECT_THROW((void)table.field_double(0, "x"), std::invalid_argument);
}

TEST(InventoryIo, TopologyRoundTripsExactly) {
  const std::string dir = temp_dir("topo");
  const netsim::Topology original = test::small_generated_topology(9, 2, 12);
  io::save_topology(original, dir);
  const netsim::Topology loaded = io::load_topology(dir);

  ASSERT_EQ(loaded.carrier_count(), original.carrier_count());
  ASSERT_EQ(loaded.enodebs.size(), original.enodebs.size());
  ASSERT_EQ(loaded.markets.size(), original.markets.size());
  for (std::size_t c = 0; c < original.carrier_count(); ++c) {
    const netsim::Carrier& a = original.carriers[c];
    const netsim::Carrier& b = loaded.carriers[c];
    EXPECT_EQ(a.enodeb, b.enodeb);
    EXPECT_EQ(a.frequency_mhz, b.frequency_mhz);
    EXPECT_EQ(a.band, b.band);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.bandwidth_mhz, b.bandwidth_mhz);
    EXPECT_EQ(a.mimo, b.mimo);
    EXPECT_EQ(a.hardware, b.hardware);
    EXPECT_EQ(a.tracking_area_code, b.tracking_area_code);
    EXPECT_EQ(a.vendor, b.vendor);
    EXPECT_EQ(a.software_version, b.software_version);
    EXPECT_EQ(a.neighbors_same_enodeb, b.neighbors_same_enodeb);
    EXPECT_EQ(original.neighborhood(a.id), loaded.neighborhood(a.id));
  }
  for (std::size_t m = 0; m < original.markets.size(); ++m) {
    EXPECT_EQ(original.markets[m].name, loaded.markets[m].name);
    EXPECT_EQ(original.markets[m].timezone, loaded.markets[m].timezone);
  }
  EXPECT_NO_THROW(loaded.check_invariants());
  std::filesystem::remove_all(dir);
}

TEST(InventoryIo, AssignmentRoundTripsWithGroundTruth) {
  const std::string dir = temp_dir("assign");
  const netsim::Topology topo = test::small_generated_topology(4, 2, 10);
  const auto schema = netsim::AttributeSchema::standard(topo);
  const auto catalog = config::ParamCatalog::standard();
  const config::ConfigAssignment original =
      config::GroundTruthModel(topo, schema, catalog).assign();

  io::save_topology(topo, dir);
  io::save_assignment(topo, catalog, original, dir);
  const config::ConfigAssignment loaded = io::load_assignment(topo, catalog, dir);

  ASSERT_EQ(loaded.singular.size(), original.singular.size());
  for (std::size_t si = 0; si < original.singular.size(); ++si) {
    EXPECT_EQ(loaded.singular[si].value, original.singular[si].value);
    EXPECT_EQ(loaded.singular[si].intended, original.singular[si].intended);
    EXPECT_EQ(loaded.singular[si].cause, original.singular[si].cause);
  }
  for (std::size_t pi = 0; pi < original.pairwise.size(); ++pi) {
    EXPECT_EQ(loaded.pairwise[pi].value, original.pairwise[pi].value);
    EXPECT_EQ(loaded.pairwise[pi].intended, original.pairwise[pi].intended);
  }
  EXPECT_EQ(loaded.total_configured(), original.total_configured());
  std::filesystem::remove_all(dir);
}

TEST(InventoryIo, LoadRejectsDanglingReferences) {
  const std::string dir = temp_dir("bad");
  const netsim::Topology topo = test::tiny_topology();
  io::save_topology(topo, dir);
  // Corrupt x2.csv with an edge to a carrier that does not exist.
  {
    std::ofstream x2(std::filesystem::path(dir) / "x2.csv", std::ios::app);
    x2 << "0,999\n";
  }
  EXPECT_THROW(io::load_topology(dir), std::invalid_argument);
  std::filesystem::remove_all(dir);
}

TEST(InventoryIo, AssignmentWithoutGroundTruthColumnsDefaults) {
  const std::string dir = temp_dir("plain");
  const netsim::Topology topo = test::tiny_topology();
  const auto catalog = config::ParamCatalog::standard();
  io::save_topology(topo, dir);
  {
    std::ofstream cfg(std::filesystem::path(dir) / "config.csv");
    cfg << "parameter,from,to,value\n";
    cfg << "pMax,0,,30\n";
    cfg << "hysA3Offset,0,2,2.5\n";  // edge 0 -> 2 exists (same frequency)
  }
  const config::ConfigAssignment loaded = io::load_assignment(topo, catalog, dir);
  const config::ParamId pmax = catalog.id_of("pMax");
  const auto& ids = catalog.singular_ids();
  const std::size_t pos = static_cast<std::size_t>(
      std::find(ids.begin(), ids.end(), pmax) - ids.begin());
  EXPECT_EQ(loaded.singular[pos].value[0], catalog.at(pmax).domain.nearest_index(30.0));
  EXPECT_EQ(loaded.singular[pos].intended[0], loaded.singular[pos].value[0]);
  EXPECT_EQ(loaded.singular[pos].cause[0], config::Cause::kDefault);
  EXPECT_EQ(loaded.total_configured(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(InventoryIo, MissingColumnErrorNamesFileAndColumn) {
  const std::string dir = temp_dir("nocol");
  const netsim::Topology topo = test::tiny_topology();
  io::save_topology(topo, dir);
  {
    std::ofstream markets(std::filesystem::path(dir) / "markets.csv");
    markets << "id,name,lat,lon,size_multiplier\n";  // timezone dropped
    markets << "0,M,40,-75,1\n0,N,41,-90,1\n";
  }
  const std::string msg = thrown_message([&] { io::load_topology(dir); });
  EXPECT_NE(msg.find("markets.csv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("timezone"), std::string::npos) << msg;
  std::filesystem::remove_all(dir);
}

TEST(InventoryIo, OutOfDomainValueErrorNamesFileAndLine) {
  const std::string dir = temp_dir("badlat");
  netsim::Topology topo = test::tiny_topology();
  io::save_topology(topo, dir);
  {
    std::ofstream enodebs(std::filesystem::path(dir) / "enodebs.csv");
    enodebs << "id,market,lat,lon,morphology,terrain\n";
    enodebs << "0,0,40.0,-75.0,urban,flat\n";
    enodebs << "1,0,140.0,-75.0,urban,flat\n";  // latitude out of range
    enodebs << "2,1,41.0,-90.0,urban,flat\n";
  }
  const std::string msg = thrown_message([&] { io::load_topology(dir); });
  EXPECT_NE(msg.find("enodebs.csv line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("lat"), std::string::npos) << msg;
  std::filesystem::remove_all(dir);
}

TEST(InventoryIo, UnknownEnumValueErrorNamesFileAndLine) {
  const std::string dir = temp_dir("badenum");
  const netsim::Topology topo = test::tiny_topology();
  io::save_topology(topo, dir);
  {
    std::ofstream enodebs(std::filesystem::path(dir) / "enodebs.csv");
    enodebs << "id,market,lat,lon,morphology,terrain\n";
    enodebs << "0,0,40.0,-75.0,urbane,flat\n";  // typo'd morphology
    enodebs << "1,0,40.2,-75.0,urban,flat\n";
    enodebs << "2,1,41.0,-90.0,urban,flat\n";
  }
  const std::string msg = thrown_message([&] { io::load_topology(dir); });
  EXPECT_NE(msg.find("enodebs.csv line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("urbane"), std::string::npos) << msg;
  std::filesystem::remove_all(dir);
}

TEST(InventoryIo, SelfLoopEdgesAreSkippedWithWarning) {
  const std::string dir = temp_dir("selfloop");
  const netsim::Topology original = test::tiny_topology();
  io::save_topology(original, dir);
  {
    std::ofstream x2(std::filesystem::path(dir) / "x2.csv", std::ios::app);
    x2 << "3,3\n";  // meaningless self-relation: skip, don't reject
  }
  const netsim::Topology loaded = io::load_topology(dir);
  EXPECT_EQ(loaded.edge_count(), original.edge_count());
  std::filesystem::remove_all(dir);
}

TEST(InventoryIo, UnknownConfigParameterIsSkippedWithWarning) {
  const std::string dir = temp_dir("unkparam");
  const netsim::Topology topo = test::tiny_topology();
  const auto catalog = config::ParamCatalog::standard();
  io::save_topology(topo, dir);
  {
    std::ofstream cfg(std::filesystem::path(dir) / "config.csv");
    cfg << "parameter,from,to,value\n";
    cfg << "vendorSecretKnob,0,,17\n";  // not in the catalog: skipped
    cfg << "pMax,0,,30\n";
  }
  const config::ConfigAssignment loaded = io::load_assignment(topo, catalog, dir);
  EXPECT_EQ(loaded.total_configured(), 1u);  // only the pMax row landed
  std::filesystem::remove_all(dir);
}

TEST(InventoryIo, AssignmentRejectsUnknownEntities) {
  const std::string dir = temp_dir("badcfg");
  const netsim::Topology topo = test::tiny_topology();
  const auto catalog = config::ParamCatalog::standard();
  io::save_topology(topo, dir);
  {
    std::ofstream cfg(std::filesystem::path(dir) / "config.csv");
    cfg << "parameter,from,to,value\n";
    cfg << "hysA3Offset,0,5,2.0\n";  // 0 -> 5 is not an X2 relation
  }
  EXPECT_THROW(io::load_assignment(topo, catalog, dir), std::invalid_argument);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace auric
