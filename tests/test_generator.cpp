#include "netsim/generator.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

namespace auric::netsim {
namespace {

class GeneratorSeedTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Topology generate(std::uint64_t seed, int markets = 4, int scale = 15) {
    TopologyParams params;
    params.seed = seed;
    params.num_markets = markets;
    params.base_enodebs_per_market = scale;
    return generate_topology(params);
  }
};

TEST_P(GeneratorSeedTest, InvariantsHold) {
  const Topology topo = generate(GetParam());
  EXPECT_NO_THROW(topo.check_invariants());
  EXPECT_GT(topo.carrier_count(), 0u);
}

TEST_P(GeneratorSeedTest, DeterministicInSeed) {
  const Topology a = generate(GetParam());
  const Topology b = generate(GetParam());
  ASSERT_EQ(a.carrier_count(), b.carrier_count());
  for (std::size_t i = 0; i < a.carrier_count(); ++i) {
    EXPECT_EQ(a.carriers[i].frequency_mhz, b.carriers[i].frequency_mhz);
    EXPECT_EQ(a.carriers[i].tracking_area_code, b.carriers[i].tracking_area_code);
    EXPECT_EQ(a.carriers[i].vendor, b.carriers[i].vendor);
  }
  EXPECT_EQ(a.edges.size(), b.edges.size());
}

TEST_P(GeneratorSeedTest, EveryCarrierHasANeighbor) {
  const Topology topo = generate(GetParam());
  for (const Carrier& c : topo.carriers) {
    EXPECT_FALSE(topo.neighborhood(c.id).empty()) << "carrier " << c.id;
  }
}

TEST_P(GeneratorSeedTest, InterSiteEdgesAreSameFrequency) {
  const Topology topo = generate(GetParam());
  for (const X2Edge& edge : topo.edges) {
    const Carrier& from = topo.carrier(edge.from);
    const Carrier& to = topo.carrier(edge.to);
    if (from.enodeb != to.enodeb) {
      EXPECT_EQ(from.frequency_mhz, to.frequency_mhz);
      EXPECT_EQ(from.market, to.market) << "X2 must stay within a market";
    }
  }
}

TEST_P(GeneratorSeedTest, BandMatchesFrequency) {
  const Topology topo = generate(GetParam());
  for (const Carrier& c : topo.carriers) {
    if (c.frequency_mhz <= 850) {
      EXPECT_EQ(c.band, Band::kLow);
    } else if (c.frequency_mhz <= 2100) {
      EXPECT_EQ(c.band, Band::kMid);
    } else {
      EXPECT_EQ(c.band, Band::kHigh);
    }
  }
}

TEST_P(GeneratorSeedTest, EveryFaceHasCoverageLayer) {
  const Topology topo = generate(GetParam());
  for (const ENodeB& e : topo.enodebs) {
    for (const auto& face : e.faces) {
      bool has_low = false;
      for (CarrierId id : face) has_low |= topo.carrier(id).band == Band::kLow;
      EXPECT_TRUE(has_low);
    }
  }
}

TEST_P(GeneratorSeedTest, TrackingAreasNestInMarkets) {
  const Topology topo = generate(GetParam());
  for (const Carrier& c : topo.carriers) {
    EXPECT_EQ(c.tracking_area_code / 8, c.market);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest, ::testing::Values(1u, 2u, 99u));

TEST(Generator, DeepDiveMarketTimezonesMatchTable3) {
  TopologyParams params;
  params.num_markets = 6;
  params.base_enodebs_per_market = 10;
  const Topology topo = generate_topology(params);
  EXPECT_EQ(topo.markets[0].timezone, Timezone::kMountain);
  EXPECT_EQ(topo.markets[1].timezone, Timezone::kCentral);
  EXPECT_EQ(topo.markets[2].timezone, Timezone::kEastern);
  EXPECT_EQ(topo.markets[3].timezone, Timezone::kPacific);
}

TEST(Generator, Market3IsLargestDeepDiveMarket) {
  TopologyParams params;
  params.num_markets = 4;
  params.base_enodebs_per_market = 40;
  const Topology topo = generate_topology(params);
  const std::size_t m3 = topo.enodeb_count_in_market(2);
  for (MarketId m : {0, 1, 3}) {
    EXPECT_GT(static_cast<double>(m3),
              1.3 * static_cast<double>(topo.enodeb_count_in_market(m)));
  }
}

TEST(Generator, DominantVendorHoldsMostSites) {
  TopologyParams params;
  params.num_markets = 2;
  params.base_enodebs_per_market = 60;
  const Topology topo = generate_topology(params);
  for (const Market& market : topo.markets) {
    std::map<int, int> vendor_count;
    for (CarrierId id : topo.carriers_in_market(market.id)) {
      ++vendor_count[topo.carrier(id).vendor];
    }
    int total = 0;
    int best = 0;
    for (const auto& [vendor, count] : vendor_count) {
      total += count;
      best = std::max(best, count);
    }
    EXPECT_GT(best, total * 6 / 10);
  }
}

TEST(Generator, ScaleKnobScalesCarrierCount) {
  TopologyParams small;
  small.num_markets = 2;
  small.base_enodebs_per_market = 10;
  TopologyParams big = small;
  big.base_enodebs_per_market = 40;
  const auto n_small = generate_topology(small).carrier_count();
  const auto n_big = generate_topology(big).carrier_count();
  EXPECT_NEAR(static_cast<double>(n_big) / static_cast<double>(n_small), 4.0, 0.8);
}

TEST(Generator, RejectsBadParams) {
  TopologyParams params;
  params.num_markets = 0;
  EXPECT_THROW(generate_topology(params), std::invalid_argument);
  params.num_markets = 1;
  params.base_enodebs_per_market = 0;
  EXPECT_THROW(generate_topology(params), std::invalid_argument);
}

}  // namespace
}  // namespace auric::netsim
